"""Tests for the parallel portfolio driver and the batch API."""

import multiprocessing
import time

import pytest

from repro.core.status import Status
from repro.engine import registry
from repro.engine.base import Engine, EngineCapabilities
from repro.engine.contract import SolveOutcome, SolveRequest
from repro.engine.portfolio import (
    default_members,
    solve_batch,
    solve_portfolio,
)
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate

VALID_F = "(=> (and (< x y) (< y z)) (< x z))"
INVALID_F = "(= x y)"
UF_VALID_F = "(=> (= a b) (= (f a) (f b)))"

FORMULAS = [VALID_F, INVALID_F, UF_VALID_F, "(< x (+ x 1))", "(< (+ x 1) x)"]
EXPECTED = [True, False, True, True, False]


class SleepyEngine(Engine):
    """Decides nothing for 30 s — the designated race loser."""

    name = "sleepy-test"
    capabilities = EngineCapabilities(description="sleeps", complete=False)

    def solve(self, request):
        deadline = time.time() + 30.0
        while time.time() < deadline:
            time.sleep(0.05)
        return SolveOutcome(engine=self.name, status=Status.UNKNOWN)


class CrashyEngine(Engine):
    name = "crashy-test"
    capabilities = EngineCapabilities(description="raises", complete=False)

    def solve(self, request):
        raise RuntimeError("intentional test crash")


@pytest.fixture
def sleepy():
    registry.register(SleepyEngine())
    try:
        yield
    finally:
        registry.unregister("sleepy-test")


@pytest.fixture
def crashy():
    registry.register(CrashyEngine())
    try:
        yield
    finally:
        registry.unregister("crashy-test")


def request_for(text, **kw):
    return SolveRequest(formula=parse_formula(text), **kw)


class TestSequentialPortfolio:
    @pytest.mark.parametrize(
        "text,expected", list(zip(FORMULAS, EXPECTED))
    )
    def test_agreement_with_hybrid(self, text, expected):
        request = request_for(text)
        single = registry.get("hybrid").solve(request)
        combined = solve_portfolio(request, parallel=False)
        assert combined.valid == expected
        assert combined.valid == single.valid
        assert combined.engine == "portfolio"
        assert combined.winner in default_members()

    def test_priority_order_decides_winner(self):
        request = request_for(VALID_F)
        first = solve_portfolio(
            request, engines=["eij", "hybrid"], parallel=False
        )
        second = solve_portfolio(
            request, engines=["hybrid", "eij"], parallel=False
        )
        assert first.winner == "eij"
        assert second.winner == "hybrid"

    def test_adopts_winner_stats_and_countermodel(self):
        formula = parse_formula(INVALID_F)
        outcome = solve_portfolio(
            SolveRequest(formula=formula), parallel=False
        )
        assert outcome.status == Status.INVALID
        assert outcome.counterexample is not None
        assert not evaluate(formula, outcome.counterexample)
        assert outcome.stats.stages  # winner's telemetry adopted

    def test_crash_falls_through_to_next_member(self, crashy):
        outcome = solve_portfolio(
            request_for(VALID_F),
            engines=["crashy-test", "hybrid"],
            parallel=False,
        )
        assert outcome.status == Status.VALID
        assert outcome.winner == "hybrid"

    def test_nothing_decided(self):
        # brute alone on a formula far beyond its enumeration budget.
        outcome = solve_portfolio(
            request_for(VALID_F, options={"limit": 1}),
            engines=["brute"],
            parallel=False,
        )
        assert outcome.status == Status.UNKNOWN
        assert "no engine decided" in outcome.detail

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            solve_portfolio(request_for(VALID_F), engines=[])


class TestParallelPortfolio:
    def test_race_decides_and_reports_winner(self):
        outcome = solve_portfolio(
            request_for(VALID_F), engines=["hybrid", "eij", "sd"]
        )
        assert outcome.status == Status.VALID
        assert outcome.winner in ("hybrid", "eij", "sd")

    def test_invalid_countermodel_survives_process_hop(self):
        formula = parse_formula(INVALID_F)
        outcome = solve_portfolio(
            SolveRequest(formula=formula), engines=["hybrid", "sd"]
        )
        assert outcome.status == Status.INVALID
        assert outcome.counterexample is not None
        assert not evaluate(formula, outcome.counterexample)

    def test_first_win_cancels_losers(self, sleepy):
        started = time.perf_counter()
        outcome = solve_portfolio(
            request_for(VALID_F), engines=["sleepy-test", "hybrid"]
        )
        elapsed = time.perf_counter() - started
        assert outcome.status == Status.VALID
        assert outcome.winner == "hybrid"
        # The 30 s sleeper must have been terminated, not awaited.
        assert elapsed < 15.0
        assert "cancelled: sleepy-test" in outcome.detail
        # No portfolio worker is left running after the call returns.
        leftovers = [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith("portfolio-")
        ]
        assert leftovers == []

    def test_deadline_terminates_everything(self, sleepy):
        started = time.perf_counter()
        outcome = solve_portfolio(
            request_for(VALID_F),
            engines=["sleepy-test"],
            deadline=1.0,
            # single-member portfolios normally fall back to sequential;
            # force the parallel path to exercise deadline cancellation
            parallel=True,
        )
        elapsed = time.perf_counter() - started
        assert outcome.status == Status.UNKNOWN
        assert elapsed < 15.0

    def test_deterministic_priority_tie_break(self, sleepy):
        # wait_all waits for every member, then the fixed priority order
        # decides — the same winner on every run, regardless of timing.
        winners = set()
        for _ in range(3):
            outcome = solve_portfolio(
                request_for(VALID_F),
                engines=["sd", "hybrid", "eij"],
                wait_all=True,
            )
            winners.add(outcome.winner)
        assert winners == {"sd"}

    def test_crashed_member_does_not_poison_race(self, crashy):
        outcome = solve_portfolio(
            request_for(VALID_F), engines=["crashy-test", "hybrid"]
        )
        assert outcome.status == Status.VALID
        assert outcome.winner == "hybrid"

    def test_registered_as_engine(self):
        outcome = registry.get("portfolio").solve(
            request_for(VALID_F, options={"engines": ["hybrid", "eij"]})
        )
        assert outcome.status == Status.VALID
        assert outcome.engine == "portfolio"


class TestBatch:
    def test_batch_preserves_order_and_verdicts(self):
        formulas = [parse_formula(t) for t in FORMULAS]
        outcomes = solve_batch(formulas, jobs=2)
        assert len(outcomes) == len(formulas)
        assert [o.valid for o in outcomes] == EXPECTED
        for outcome in outcomes:
            assert outcome.engine == "portfolio"
            assert outcome.winner is not None

    def test_batch_single_job_inline(self):
        outcomes = solve_batch(
            [parse_formula(VALID_F)], engines=["hybrid"], jobs=1
        )
        assert [o.valid for o in outcomes] == [True]

    def test_batch_empty(self):
        assert solve_batch([]) == []

    def test_intra_batch_dedupe_canonicalizes_once_per_class(
        self, monkeypatch
    ):
        # Hash-consing makes repeated formulas identical objects, so the
        # batch must canonicalize each isomorphism class exactly once,
        # not once per batch element.
        import repro.logic.canonical as canonical_mod

        real = canonical_mod.canonicalize
        calls = []

        def counting(formula):
            calls.append(formula)
            return real(formula)

        monkeypatch.setattr(canonical_mod, "canonicalize", counting)
        f = parse_formula(VALID_F)
        g = parse_formula(INVALID_F)
        outcomes = solve_batch(
            [f, f, g, f, g], engines=["hybrid"], jobs=1
        )
        assert len(calls) == 2
        assert [o.valid for o in outcomes] == [
            True,
            True,
            False,
            True,
            False,
        ]
        dedupes = sum(
            o.stats.cache.dedupes
            for o in outcomes
            if o.stats.cache is not None
        )
        assert dedupes == 3


class UndecidedEngine(Engine):
    """Returns UNKNOWN instantly — forces the cube escalation path."""

    name = "undecided-test"
    capabilities = EngineCapabilities(description="abstains", complete=False)

    def solve(self, request):
        return SolveOutcome(engine=self.name, status=Status.UNKNOWN)


@pytest.fixture
def undecided():
    registry.register(UndecidedEngine())
    try:
        yield
    finally:
        registry.unregister("undecided-test")


class TestRaceTelemetry:
    def test_cancellation_recorded_and_losers_terminated(self, sleepy):
        outcome = solve_portfolio(
            request_for(VALID_F), engines=["sleepy-test", "hybrid"]
        )
        assert outcome.status == Status.VALID
        # The loser must be gone from the process table...
        leftovers = [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith("portfolio-")
        ]
        assert leftovers == []
        # ...and the race StageRecord must say so: telemetry records the
        # cancellation, not just the detail string.
        races = [s for s in outcome.stats.stages if s.name == "race"]
        assert len(races) == 1
        assert races[0].counters["members"] == 2
        assert races[0].counters["cancelled"] >= 1
        assert (
            races[0].counters["finished"]
            + races[0].counters["cancelled"]
            <= 2
        )

    def test_race_record_present_without_cancellation(self):
        outcome = solve_portfolio(
            request_for(VALID_F), engines=["hybrid"], parallel=False
        )
        races = [s for s in outcome.stats.stages if s.name == "race"]
        assert len(races) == 1
        assert races[0].counters["cancelled"] == 0


class TestCubeFallback:
    def test_batch_escalates_undecided_to_cube(self, undecided):
        formulas = [parse_formula(VALID_F), parse_formula(INVALID_F)]
        outcomes = solve_batch(
            formulas, engines=["undecided-test"], jobs=1
        )
        assert [o.valid for o in outcomes] == [True, False]
        assert all(o.engine == "cube" for o in outcomes)
        assert any(
            "cube escalation" in (o.detail or "") for o in outcomes
        )

    def test_batch_no_fallback_stays_undecided(self, undecided):
        outcomes = solve_batch(
            [parse_formula(VALID_F)],
            engines=["undecided-test"],
            jobs=1,
            cube_fallback=False,
        )
        assert outcomes[0].valid is None

    def test_escalated_countermodel_lifted_through_dedupe(self, undecided):
        formula = parse_formula(INVALID_F)
        outcomes = solve_batch(
            [formula], engines=["undecided-test"], jobs=1
        )
        assert outcomes[0].status == Status.INVALID
        assert outcomes[0].counterexample is not None
        assert not evaluate(formula, outcomes[0].counterexample)

    def test_decided_outcomes_not_escalated(self):
        # A decided batch must never pay for cube escalation.
        outcomes = solve_batch(
            [parse_formula(VALID_F)], engines=["hybrid"], jobs=1
        )
        assert outcomes[0].valid is True
        assert outcomes[0].engine == "portfolio"

    def test_cube_excluded_from_default_members(self):
        members = default_members()
        assert "cube" not in members
        assert "portfolio" not in members
