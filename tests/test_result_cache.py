"""The two-tier result cache and its engine/batch integration.

Covers the cache data plane (LRU, disk tier, fingerprint invalidation,
countermodel policy), the ``cached`` registry engine, and the
``solve_batch`` intra-batch dedupe — including the property the whole
layer exists to uphold: a cache hit returns exactly the verdict the
engine would have produced, with a countermodel valid for the formula
actually submitted.
"""

import json
import os

import pytest

from repro.core.result import CacheStats
from repro.core.status import Status
from repro.engine import registry
from repro.engine.contract import SolveRequest
from repro.engine.portfolio import default_members, solve_batch
from repro.logic.canonical import canonical_key, rename_symbols
from repro.logic.parser import parse_formula
from repro.logic.semantics import Interpretation, evaluate
from repro.service.cache import (
    CACHE_SCHEMA_VERSION,
    CacheEntry,
    CachedEngine,
    ResultCache,
    config_fingerprint,
    interp_from_jsonable,
    interp_to_jsonable,
)

VALID_F = "(=> (= x y) (= (f x) (f y)))"
INVALID_F = "(= (f x) (f y))"


def _interp():
    return Interpretation(
        vars={"x": 0, "y": 1},
        bools={"B0": True},
        funcs={"f": {(0,): 3, (1,): 4}},
        preds={"P": {(0,): True}},
        func_default=7,
        pred_default=True,
    )


class TestInterpSerialization:
    def test_round_trip(self):
        interp = _interp()
        data = interp_to_jsonable(interp)
        # Must be genuinely JSON-safe, not just dict-shaped.
        restored = interp_from_jsonable(json.loads(json.dumps(data)))
        assert restored == interp

    def test_empty_round_trip(self):
        interp = Interpretation()
        assert interp_from_jsonable(interp_to_jsonable(interp)) == interp


class TestConfigFingerprint:
    def _request(self, **kwargs):
        return SolveRequest(formula=parse_formula(VALID_F), **kwargs)

    def test_same_config_same_fingerprint(self):
        assert config_fingerprint("hybrid", self._request()) == (
            config_fingerprint("hybrid", self._request())
        )

    def test_engine_name_scopes_entries(self):
        req = self._request()
        assert config_fingerprint("hybrid", req) != config_fingerprint(
            "sd", req
        )

    def test_encoding_knobs_scope_entries(self):
        base = config_fingerprint("hybrid", self._request())
        assert base != config_fingerprint(
            "hybrid", self._request(sep_thold=3)
        )
        assert base != config_fingerprint(
            "hybrid", self._request(preprocess=False)
        )
        assert base != config_fingerprint(
            "hybrid", self._request(sd_ranges="ascending")
        )
        assert base != config_fingerprint(
            "hybrid", self._request(trans_budget=10)
        )
        assert base != config_fingerprint(
            "hybrid", self._request(options={"max_iterations": 5})
        )

    def test_resource_limits_do_not_scope(self):
        # Only decided verdicts are cached, and a decided verdict is
        # limit-independent — a cache warmed under one timeout must
        # serve a run under another.
        base = config_fingerprint("hybrid", self._request())
        assert base == config_fingerprint(
            "hybrid", self._request(time_limit=1.5, conflict_limit=10)
        )

    def test_volatile_options_do_not_scope(self):
        base = config_fingerprint("hybrid", self._request())
        assert base == config_fingerprint(
            "hybrid",
            self._request(options={"engine": "sd", "cache_dir": "/tmp/x"}),
        )


class TestResultCacheMemory:
    def test_miss_then_store_then_hit(self):
        cache = ResultCache()
        entry, tier = cache.lookup("k1", "fp")
        assert entry is None and tier == ""
        assert cache.store("k1", "fp", CacheEntry(status="VALID"))
        entry, tier = cache.lookup("k1", "fp")
        assert entry is not None and tier == "memory"
        assert entry.status == "VALID"
        assert cache.stats.misses == 1
        assert cache.stats.hits_memory == 1
        assert cache.stats.stores == 1

    def test_fingerprint_scopes_lookup(self):
        cache = ResultCache()
        cache.store("k1", "fp-a", CacheEntry(status="VALID"))
        entry, _ = cache.lookup("k1", "fp-b")
        assert entry is None

    def test_undecided_statuses_are_refused(self):
        cache = ResultCache()
        assert not cache.store("k", "fp", CacheEntry(status="UNKNOWN"))
        assert not cache.store(
            "k", "fp", CacheEntry(status="TRANSLATION_LIMIT")
        )
        assert len(cache) == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.store("a", "fp", CacheEntry(status="VALID"))
        cache.store("b", "fp", CacheEntry(status="VALID"))
        cache.lookup("a", "fp")  # refresh a; b is now least recent
        cache.store("c", "fp", CacheEntry(status="VALID"))
        assert cache.lookup("a", "fp")[0] is not None
        assert cache.lookup("c", "fp")[0] is not None
        assert cache.lookup("b", "fp")[0] is None

    def test_invalid_without_model_misses_when_model_wanted(self):
        cache = ResultCache()
        cache.store("k", "fp", CacheEntry(status="INVALID"))
        assert cache.lookup("k", "fp", want_countermodel=True)[0] is None
        entry, _ = cache.lookup("k", "fp", want_countermodel=False)
        assert entry is not None
        # A later, richer entry replaces the thin one and satisfies both.
        cache.store(
            "k", "fp", CacheEntry(status="INVALID", countermodel=_interp())
        )
        assert cache.lookup("k", "fp", want_countermodel=True)[0] is not None


class TestResultCacheDisk:
    def test_disk_survives_new_cache_instance(self, tmp_path):
        disk = str(tmp_path / "cache")
        first = ResultCache(disk_dir=disk)
        first.store(
            "k", "fp", CacheEntry(status="INVALID", countermodel=_interp())
        )
        # Fresh instance = process restart: memory empty, disk warm.
        second = ResultCache(disk_dir=disk)
        entry, tier = second.lookup("k", "fp")
        assert tier == "disk"
        assert entry.countermodel == _interp()
        # The disk hit is promoted to memory.
        assert second.lookup("k", "fp")[1] == "memory"

    def test_disk_fingerprint_mismatch_is_a_miss(self, tmp_path):
        disk = str(tmp_path / "cache")
        first = ResultCache(disk_dir=disk)
        first.store("k", "fp-old", CacheEntry(status="VALID"))
        second = ResultCache(disk_dir=disk)
        assert second.lookup("k", "fp-new")[0] is None

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ResultCache(disk_dir=disk)
        cache.store("k", "fp", CacheEntry(status="VALID"))
        (path,) = [
            os.path.join(disk, name)
            for name in os.listdir(disk)
            if name.endswith(".json")
        ]
        with open(path, "w") as fp:
            fp.write("{not json")
        fresh = ResultCache(disk_dir=disk)
        assert fresh.lookup("k", "fp")[0] is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ResultCache(disk_dir=disk)
        cache.store("k", "fp", CacheEntry(status="VALID"))
        (path,) = [
            os.path.join(disk, name)
            for name in os.listdir(disk)
            if name.endswith(".json")
        ]
        with open(path) as fp:
            data = json.load(fp)
        data["schema"] = CACHE_SCHEMA_VERSION + 1
        with open(path, "w") as fp:
            json.dump(data, fp)
        fresh = ResultCache(disk_dir=disk)
        assert fresh.lookup("k", "fp")[0] is None

    def test_clear_disk(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ResultCache(disk_dir=disk)
        cache.store("k", "fp", CacheEntry(status="VALID"))
        cache.clear(disk=True)
        assert len(cache) == 0
        assert ResultCache(disk_dir=disk).lookup("k", "fp")[0] is None


class TestCachedEngine:
    def test_registered_and_excluded_from_portfolio(self):
        assert "cached" in registry.list_engines()
        assert "cached" not in default_members()

    def test_miss_then_hit_same_verdict(self):
        engine = CachedEngine(cache=ResultCache())
        f = parse_formula(VALID_F)
        cold = engine.decide(f)
        warm = engine.decide(f)
        assert cold.status == Status.VALID
        assert warm.status == Status.VALID
        assert cold.stats.cache.misses == 1
        assert cold.stats.cache.stores == 1
        assert warm.stats.cache.hits_memory == 1
        assert any(s.name == "cache" for s in cold.stats.stages)
        assert any(s.name == "cache" for s in warm.stats.stages)

    def test_alpha_renamed_hit_lifts_countermodel(self):
        engine = CachedEngine(cache=ResultCache())
        f = parse_formula(INVALID_F)
        g = rename_symbols(f, vars={"x": "p", "y": "q"}, funcs={"f": "h"})
        cold = engine.decide(f)
        warm = engine.decide(g)
        assert cold.status == Status.INVALID
        assert warm.status == Status.INVALID
        assert warm.stats.cache.hits == 1
        # Each countermodel must falsify the formula it was returned for.
        assert evaluate(f, cold.counterexample) is False
        assert evaluate(g, warm.counterexample) is False
        # The lifted model speaks the second formula's vocabulary.
        assert set(warm.counterexample.funcs) == {"h"}

    def test_inner_engine_option(self):
        engine = CachedEngine(cache=ResultCache())
        out = engine.decide(
            parse_formula(VALID_F), options={"engine": "sd"}
        )
        assert out.status == Status.VALID
        assert out.winner == "sd"

    def test_inner_engines_do_not_share_entries(self):
        cache = ResultCache()
        engine = CachedEngine(cache=cache)
        f = parse_formula(VALID_F)
        first = engine.decide(f, options={"engine": "hybrid"})
        second = engine.decide(f, options={"engine": "sd"})
        assert first.stats.cache.misses == 1
        assert second.stats.cache.misses == 1
        assert cache.stats.stores == 2

    def test_disk_tier_via_cache_dir_option(self, tmp_path):
        disk = str(tmp_path / "cache")
        f = parse_formula(VALID_F)
        cold = CachedEngine().decide(f, options={"cache_dir": disk})
        assert cold.status == Status.VALID
        assert os.listdir(disk)
        # A brand-new engine + fresh default cache would miss in memory;
        # pin the disk hit through an explicit fresh ResultCache.
        warm = CachedEngine(cache=ResultCache(disk_dir=disk)).decide(f)
        assert warm.status == Status.VALID
        assert warm.stats.cache.hits_disk == 1


class TestSolveBatchDedupe:
    def _formulas(self):
        f = parse_formula(VALID_F)
        f_renamed = rename_symbols(
            f, vars={"x": "a", "y": "b"}, funcs={"f": "g"}
        )
        g = parse_formula(INVALID_F)
        g_renamed = rename_symbols(g, vars={"x": "s", "y": "t"})
        return [f, g, f_renamed, g_renamed]

    def test_dedupe_preserves_order_and_verdicts(self):
        outcomes = solve_batch(
            self._formulas(), engines=["hybrid"], jobs=1
        )
        statuses = [o.status for o in outcomes]
        assert statuses == [
            Status.VALID,
            Status.INVALID,
            Status.VALID,
            Status.INVALID,
        ]
        assert outcomes[2].stats.cache.dedupes == 1
        assert outcomes[3].stats.cache.dedupes == 1
        assert (outcomes[0].stats.cache or CacheStats()).dedupes == 0

    def test_deduped_countermodels_are_lifted(self):
        formulas = self._formulas()
        outcomes = solve_batch(formulas, engines=["hybrid"], jobs=1)
        for formula, outcome in zip(formulas, outcomes):
            if outcome.status == Status.INVALID:
                assert outcome.counterexample is not None
                assert evaluate(formula, outcome.counterexample) is False

    def test_dedupe_false_matches_dedupe_true(self):
        formulas = self._formulas()
        plain = solve_batch(
            formulas, engines=["hybrid"], jobs=1, dedupe=False
        )
        deduped = solve_batch(formulas, engines=["hybrid"], jobs=1)
        assert [o.status for o in plain] == [o.status for o in deduped]

    def test_batch_cache_warm_run_hits(self):
        cache = ResultCache()
        formulas = self._formulas()
        cold = solve_batch(formulas, engines=["hybrid"], jobs=1, cache=cache)
        warm = solve_batch(formulas, engines=["hybrid"], jobs=1, cache=cache)
        assert [o.status for o in cold] == [o.status for o in warm]
        # Two isomorphism classes: 2 misses+stores cold, 2 hits warm.
        assert cache.stats.stores == 2
        assert cache.stats.hits_memory == 2
        assert warm[0].stats.cache.hits_memory == 1
        assert warm[1].stats.cache.hits_memory == 1
        for formula, outcome in zip(formulas, warm):
            if outcome.status == Status.INVALID:
                assert evaluate(formula, outcome.counterexample) is False

    def test_empty_batch(self):
        assert solve_batch([], engines=["hybrid"]) == []


class TestCacheNeverChangesVerdict:
    def test_on_suite_slice(self):
        from repro.benchgen.suite import suite

        engine = CachedEngine(cache=ResultCache())
        hybrid = registry.get("hybrid")
        for bench in suite()[:6]:
            bare = hybrid.decide(bench.formula)
            cold = engine.decide(bench.formula)
            warm = engine.decide(bench.formula)
            assert bare.status == cold.status == warm.status
            assert warm.stats.cache.hits == 1
            assert canonical_key(bench.formula) == bench.canonical_key
