"""Unit tests for the SD / EIJ / HYBRID / STATIC encoders."""

import pytest

from repro.encodings.hybrid import (
    Encoding,
    encode_eij,
    encode_hybrid,
    encode_sd,
    encode_static_hybrid,
)
from repro.logic import builders as b
from repro.sat.solver import solve_cnf
from repro.sat.tseitin import to_cnf
from repro.separation.analysis import analyze_separation
from repro.transform.func_elim import eliminate_applications


def is_valid(encoding: Encoding) -> bool:
    return solve_cnf(to_cnf(encoding.check_formula)).is_unsat


def sep(formula):
    f_sep, _ = eliminate_applications(formula)
    return f_sep


class TestMethodSelection:
    def setup_method(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        self.formula = b.implies(
            b.band(b.lt(x, y), b.lt(y, z)), b.lt(x, z)
        )

    def test_sd_uses_sd_everywhere(self):
        encoding = encode_sd(self.formula)
        assert set(encoding.method_of_class.values()) == {"SD"}
        assert encoding.stats.method == "SD"

    def test_eij_uses_eij_everywhere(self):
        encoding = encode_eij(self.formula)
        assert set(encoding.method_of_class.values()) == {"EIJ"}

    def test_hybrid_threshold_zero_is_sd(self):
        encoding = encode_hybrid(self.formula, sep_thold=0)
        assert set(encoding.method_of_class.values()) == {"SD"}

    def test_hybrid_large_threshold_is_eij(self):
        encoding = encode_hybrid(self.formula, sep_thold=10**9)
        assert set(encoding.method_of_class.values()) == {"EIJ"}

    def test_hybrid_mixes_by_class(self):
        # Two independent classes with different SepCnt.
        x, y, z, w = (b.const(n) for n in "xyzw")
        small = b.lt(x, y)
        big = b.band(*[
            b.lt(b.offset(z, -i), b.offset(w, i)) for i in range(4)
        ])
        formula = b.bnot(b.band(small, big))
        analysis = analyze_separation(formula)
        counts = sorted(c.sep_count for c in analysis.classes)
        threshold = counts[0]  # split the two classes
        encoding = encode_hybrid(formula, sep_thold=threshold)
        methods = set(encoding.method_of_class.values())
        assert methods == {"SD", "EIJ"}


class TestCorrectnessOnKnownFormulas:
    CASES = [
        # (formula factory, expected validity)
        (lambda: b.implies(b.eq(b.const("x"), b.const("y")),
                           b.eq(b.func("f")(b.const("x")),
                                b.func("f")(b.const("y")))), True),
        (lambda: b.implies(b.band(b.le(b.const("x"), b.const("y")),
                                  b.le(b.const("y"), b.const("x"))),
                           b.eq(b.const("x"), b.const("y"))), True),
        (lambda: b.lt(b.const("x"), b.succ(b.const("x"))), True),
        (lambda: b.eq(b.const("x"), b.const("y")), False),
        (lambda: b.implies(b.lt(b.const("x"), b.const("y")),
                           b.lt(b.const("y"), b.const("x"))), False),
    ]

    @pytest.mark.parametrize("case_index", range(len(CASES)))
    @pytest.mark.parametrize(
        "encoder",
        [encode_sd, encode_eij, encode_hybrid, encode_static_hybrid],
    )
    def test_all_encoders_agree(self, case_index, encoder):
        factory, expected = self.CASES[case_index]
        encoding = encoder(sep(factory()))
        assert is_valid(encoding) == expected


class TestEncodingStructure:
    def test_f_bool_shape(self):
        x, y = b.const("x"), b.const("y")
        encoding = encode_eij(b.bnot(b.lt(b.succ(x), y)))
        # F_bool is F_trans => F_bvar; check_formula its negation.
        assert encoding.f_bool is not None
        assert encoding.check_formula is not None

    def test_eij_equality_split_into_bounds(self):
        x, y = b.const("x"), b.const("y")
        encoding = encode_eij(b.bnot(b.eq(b.succ(x), y)))
        # One equality with an offset: two bound variables.
        assert encoding.registry.var_count() == 2

    def test_equality_only_class_uses_eq_vars(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.bnot(b.band(b.eq(x, y), b.eq(y, z)))
        encoding = encode_eij(formula)
        assert len(encoding.registry.all_eq_vars()) >= 2
        assert encoding.registry.var_count() == 0  # no bound splitting

    def test_sd_bits_allocated_per_class_var(self):
        x, y = b.const("x"), b.const("y")
        encoding = encode_sd(b.bnot(b.lt(x, y)))
        assert set(encoding.var_bits) == {x, y}
        widths = {len(bits) for bits in encoding.var_bits.values()}
        assert len(widths) == 1  # same class, same width

    def test_stats_counters(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.implies(b.band(b.lt(x, y), b.lt(y, z)), b.lt(x, z))
        encoding = encode_eij(formula)
        assert encoding.stats.eij_classes == 1
        assert encoding.stats.sep_vars > 0
        assert encoding.stats.trans_clauses > 0
        sd_encoding = encode_sd(formula)
        assert sd_encoding.stats.sd_classes == 1
        assert sd_encoding.stats.sd_bits > 0
        assert sd_encoding.stats.max_width > 0

    def test_static_hybrid_choice(self):
        # Equality-only class -> EIJ; inequality class -> SD.
        x, y, u, v = (b.const(n) for n in "xyuv")
        formula = b.bnot(b.band(b.eq(x, y), b.lt(u, v)))
        encoding = encode_static_hybrid(formula)
        methods = set(encoding.method_of_class.values())
        assert methods == {"SD", "EIJ"}


class TestPositiveEqualityInEncodings:
    def test_pure_p_formula_encodes_constant(self):
        # x = y appears only positively: under maximal diversity the
        # equation is false, so the formula is invalid, quickly.
        x, y = b.const("x"), b.const("y")
        encoding = encode_hybrid(b.eq(x, y))
        assert not is_valid(encoding)
        assert encoding.analysis.classes == []

    def test_p_vars_have_no_bits_or_bounds(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        # z = x positive; x < y makes x, y general.
        formula = b.band(b.eq(z, x), b.bnot(b.lt(x, y)))
        encoding = encode_sd(formula)
        assert z not in encoding.var_bits
        assert x in encoding.var_bits
