"""Concurrency and protocol tests for ``repro serve``.

Component-level tests drive the reader/worker internals directly with
deterministic state (a pre-filled queue for backpressure, a back-dated
receipt time for queue-wait deadlines); integration tests run the whole
loop in-process over StringIO; end-to-end tests drive the real CLI in a
subprocess, including graceful SIGTERM drain.
"""

import io
import json
import os
import queue
import signal
import subprocess
import sys
import time

from repro.service.cache import ResultCache
from repro.service.server import (
    ServeConfig,
    _reader,
    _ServerState,
    _solve_one,
    run_server,
)

VALID_F = "(=> (= x y) (= (f x) (f y)))"
VALID_F_RENAMED = "(=> (= a b) (= (h a) (h b)))"
INVALID_F = "(= (f x) (f y))"
#: Valid, but brute-force enumeration over two nested function tables
#: takes tens of seconds — the anvil for hard-deadline tests.
SLOW_F = "(=> (and (= a b) (= b c)) (= (f (g a)) (f (g c))))"


def _state(config=None, queue_size=16, cache=True):
    config = config or ServeConfig(install_signal_handlers=False, fork=False)
    return _ServerState(
        config=config,
        out=io.StringIO(),
        cache=ResultCache() if cache else None,
        jobs=queue.Queue(maxsize=queue_size),
    )


def _responses(state):
    return [json.loads(line) for line in state.out.getvalue().splitlines()]


def _run_inline(requests, config=None):
    lines = [
        r if isinstance(r, str) else json.dumps(r) for r in requests
    ]
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    rc = run_server(
        config
        or ServeConfig(
            workers=2, fork=False, install_signal_handlers=False
        ),
        stdin=stdin,
        stdout=stdout,
    )
    return rc, [json.loads(line) for line in stdout.getvalue().splitlines()]


class TestBackpressure:
    def test_full_queue_rejects_instead_of_buffering(self):
        state = _state(queue_size=1)
        state.jobs.put_nowait(({"id": 0}, time.monotonic()))  # occupy
        lines = "\n".join(
            json.dumps({"id": i, "formula": VALID_F}) for i in (1, 2, 3)
        )
        _reader(state, io.StringIO(lines + "\n"))
        responses = _responses(state)
        assert [r["id"] for r in responses] == [1, 2, 3]
        for response in responses:
            assert response["ok"] is False
            assert response["error"]["kind"] == "overloaded"
        assert state.rejected == 3
        # The occupied slot was untouched: rejected requests never queue.
        assert state.jobs.qsize() == 1

    def test_shutdown_rejects_new_requests(self):
        state = _state()
        state.stop.set()
        _reader(
            state,
            io.StringIO(json.dumps({"id": 9, "formula": VALID_F}) + "\n"),
        )
        (response,) = _responses(state)
        assert response["id"] == 9
        assert response["error"]["kind"] == "shutdown"
        assert state.jobs.qsize() == 0

    def test_reader_parse_and_shape_errors(self):
        state = _state()
        _reader(state, io.StringIO('{"broken\n[1, 2]\n'))
        kinds = [r["error"]["kind"] for r in _responses(state)]
        assert kinds == ["parse", "bad-request"]


class TestDeadlines:
    def test_deadline_expired_while_queued(self):
        state = _state()
        response = _solve_one(
            state,
            {"id": 4, "formula": VALID_F, "timeout": 0.05},
            received=time.monotonic() - 10.0,
        )
        assert response["ok"] is False
        assert response["error"]["kind"] == "deadline"
        assert "queued" in response["error"]["message"]
        assert response["wall_seconds"] >= 0.05

    def test_hard_deadline_kills_stuck_solve(self):
        # fork=True runs the solve as a raceable child process, so the
        # deadline interrupts brute mid-enumeration (in-process it would
        # run for tens of seconds; see SLOW_F).
        state = _state(
            config=ServeConfig(install_signal_handlers=False, fork=True)
        )
        started = time.monotonic()
        response = _solve_one(
            state,
            {
                "id": 5,
                "formula": SLOW_F,
                "engine": "brute",
                "timeout": 1.0,
                "options": {"limit": 10**9},
            },
            received=started,
        )
        elapsed = time.monotonic() - started
        assert response["ok"] is False
        assert response["error"]["kind"] == "deadline"
        assert elapsed < 10.0


class TestRequestValidation:
    def test_unknown_engine(self):
        state = _state()
        response = _solve_one(
            state,
            {"id": 1, "formula": VALID_F, "engine": "nosuch"},
            received=time.monotonic(),
        )
        assert response["error"]["kind"] == "bad-request"
        assert "nosuch" in response["error"]["message"]

    def test_missing_formula(self):
        state = _state()
        response = _solve_one(
            state, {"id": 2}, received=time.monotonic()
        )
        assert response["error"]["kind"] == "bad-request"

    def test_unparsable_formula(self):
        state = _state()
        response = _solve_one(
            state,
            {"id": 3, "formula": "(= x"},
            received=time.monotonic(),
        )
        assert response["error"]["kind"] == "parse"

    def test_bad_timeout(self):
        state = _state()
        response = _solve_one(
            state,
            {"id": 4, "formula": VALID_F, "timeout": -1},
            received=time.monotonic(),
        )
        assert response["error"]["kind"] == "bad-request"


class TestInlineServe:
    def test_verdicts_cache_and_countermodels(self):
        rc, responses = _run_inline(
            [
                {"id": 1, "formula": VALID_F},
                {"id": 2, "formula": INVALID_F},
            ]
        )
        assert rc == 0
        assert responses[0]["event"] == "ready"
        assert responses[-1]["event"] == "bye"
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[1]["ok"] and by_id[1]["status"] == "VALID"
        assert by_id[2]["ok"] and by_id[2]["status"] == "INVALID"
        model = by_id[2]["countermodel"]
        assert model["funcs"]["f"]  # table present and JSON-shaped
        assert responses[-1]["served"] == 2

    def test_isomorphic_requests_share_cache_entry(self):
        # Single worker: deterministic order, so the renamed formula is
        # always the warm request.
        rc, responses = _run_inline(
            [
                {"id": 1, "formula": VALID_F},
                {"id": 2, "formula": VALID_F_RENAMED},
            ],
            config=ServeConfig(
                workers=1, fork=False, install_signal_handlers=False
            ),
        )
        assert rc == 0
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[1]["status"] == by_id[2]["status"] == "VALID"
        assert by_id[1]["cache"]["misses"] == 1
        assert by_id[2]["cache"]["hits_memory"] == 1
        assert responses[-1]["cache"]["hits_memory"] == 1

    def test_no_cache_flag(self):
        rc, responses = _run_inline(
            [{"id": 1, "formula": VALID_F}],
            config=ServeConfig(
                workers=1,
                fork=False,
                use_cache=False,
                install_signal_handlers=False,
            ),
        )
        assert rc == 0
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[1]["status"] == "VALID"
        assert "cache" not in by_id[1]
        assert "cache" not in responses[-1]


class TestSessions:
    """Stateful session ids on the wire protocol."""

    def test_session_lifecycle(self):
        rc, responses = _run_inline(
            [
                {"id": 1, "kind": "open", "engine": "hybrid"},
                {
                    "id": 2,
                    "kind": "assert",
                    "session": "s1",
                    "formula": "(< x y)",
                },
                {"id": 3, "kind": "check", "session": "s1"},
                {"id": 4, "kind": "push", "session": "s1"},
                {
                    "id": 5,
                    "kind": "assert",
                    "session": "s1",
                    "formula": "(< y x)",
                },
                {"id": 6, "kind": "check", "session": "s1"},
                {"id": 7, "kind": "pop", "session": "s1"},
                {"id": 8, "kind": "check", "session": "s1"},
                {"id": 9, "kind": "close", "session": "s1"},
            ]
        )
        assert rc == 0
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[1]["ok"] and by_id[1]["session"] == "s1"
        assert by_id[2]["index"] == 0 and by_id[2]["depth"] == 0
        assert by_id[3]["status"] == "sat"
        assert by_id[3]["model"]["vars"]["x"] < by_id[3]["model"]["vars"]["y"]
        assert by_id[4]["depth"] == 1
        assert by_id[6]["status"] == "unsat"
        assert sorted(by_id[6]["core"]) == ["(< x y)", "(< y x)"]
        assert by_id[7]["depth"] == 0
        assert by_id[8]["status"] == "sat"
        assert by_id[9]["ok"] and by_id[9]["checks"] == 3
        # An explicitly closed session does not count as evicted.
        assert responses[-1]["sessions"] == {"opened": 1, "evicted": 0}

    def test_interleaved_multi_client_sessions(self):
        # Two independent sessions interleaved on one wire: ops stay
        # ordered per session and the states never bleed together.
        rc, responses = _run_inline(
            [
                {"id": 1, "kind": "open"},
                {"id": 2, "kind": "open"},
                {
                    "id": 3,
                    "kind": "assert",
                    "session": "s1",
                    "formula": "(< x y)",
                },
                {
                    "id": 4,
                    "kind": "assert",
                    "session": "s2",
                    "formula": "(< x y)",
                },
                {
                    "id": 5,
                    "kind": "assert",
                    "session": "s1",
                    "formula": "(< y x)",
                },
                {"id": 6, "kind": "check", "session": "s1"},
                {"id": 7, "kind": "check", "session": "s2"},
            ],
            config=ServeConfig(
                workers=4, fork=False, install_signal_handlers=False
            ),
        )
        assert rc == 0
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[6]["status"] == "unsat"
        assert by_id[7]["status"] == "sat"
        assert responses[-1]["sessions"]["opened"] == 2

    def test_unknown_session_id_error_kind(self):
        rc, responses = _run_inline(
            [{"id": 1, "kind": "check", "session": "nosuch"}]
        )
        assert rc == 0
        (response,) = [r for r in responses if "id" in r]
        assert response["ok"] is False
        assert response["error"]["kind"] == "unknown-session-id"

    def test_pop_below_zero_error_kind(self):
        rc, responses = _run_inline(
            [
                {"id": 1, "kind": "open"},
                {"id": 2, "kind": "push", "session": "s1"},
                {"id": 3, "kind": "pop", "session": "s1"},
                {"id": 4, "kind": "pop", "session": "s1"},
                {"id": 5, "kind": "check", "session": "s1"},
            ]
        )
        assert rc == 0
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[3]["ok"] and by_id[3]["depth"] == 0
        assert by_id[4]["ok"] is False
        assert by_id[4]["error"]["kind"] == "pop-below-zero"
        # The session survives the failed pop.
        assert by_id[5]["status"] == "sat"

    def test_ops_after_close_rejected(self):
        rc, responses = _run_inline(
            [
                {"id": 1, "kind": "open"},
                {"id": 2, "kind": "close", "session": "s1"},
                {"id": 3, "kind": "push", "session": "s1"},
            ]
        )
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[2]["ok"] is True
        assert by_id[3]["ok"] is False
        assert by_id[3]["error"]["kind"] == "unknown-session-id"

    def test_session_request_validation(self):
        rc, responses = _run_inline(
            [
                {"id": 1, "kind": "open", "engine": "nosuch"},
                {"id": 2, "kind": "open", "timeout": -1},
                {"id": 3, "kind": "open"},
                {"id": 4, "kind": "assert", "session": "s1"},
                {
                    "id": 5,
                    "kind": "assert",
                    "session": "s1",
                    "formula": "(= x",
                },
                {"id": 6, "kind": "pop", "session": "s1", "levels": "x"},
                {"id": 7, "kind": "wibble"},
            ]
        )
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[1]["error"]["kind"] == "bad-request"
        assert by_id[2]["error"]["kind"] == "bad-request"
        assert by_id[3]["ok"] is True
        assert by_id[4]["error"]["kind"] == "bad-request"
        assert by_id[5]["error"]["kind"] == "parse"
        assert by_id[6]["error"]["kind"] == "bad-request"
        assert by_id[7]["error"]["kind"] == "bad-request"

    def test_check_deadline_expired_while_queued(self):
        # Drive the turn path directly with a back-dated receipt time.
        from repro.service.server import (
            _enqueue_session_op,
            _open_session,
            _session_turn,
        )

        state = _state()
        opened = _open_session(state, {"id": 1, "kind": "open"})
        sid = opened["session"]
        _enqueue_session_op(
            state,
            {
                "id": 2,
                "kind": "check",
                "session": sid,
                "timeout": 0.05,
            },
            time.monotonic() - 10.0,
        )
        _session_turn(state, sid)
        responses = _responses(state)
        check = next(r for r in responses if r.get("id") == 2)
        assert check["ok"] is False
        assert check["error"]["kind"] == "deadline"
        assert "queued" in check["error"]["message"]

    def test_session_checks_share_server_cache_with_one_shot(self):
        # A session's UNSAT check stores a validity entry that a later
        # one-shot request for the negated conjunction hits directly.
        rc, responses = _run_inline(
            [
                {"id": 1, "kind": "open", "engine": "hybrid"},
                {
                    "id": 2,
                    "kind": "assert",
                    "session": "s1",
                    "formula": "(< x y)",
                },
                {
                    "id": 3,
                    "kind": "assert",
                    "session": "s1",
                    "formula": "(< y x)",
                },
                {"id": 4, "kind": "check", "session": "s1"},
                {
                    "id": 5,
                    "formula": "(not (and (< x y) (< y x)))",
                    "engine": "hybrid",
                },
            ],
            config=ServeConfig(
                workers=1, fork=False, install_signal_handlers=False
            ),
        )
        assert rc == 0
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[4]["status"] == "unsat"
        assert by_id[5]["status"] == "VALID"
        assert by_id[5]["cache"]["hits_memory"] == 1


def _spawn_serve(*extra_args):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--no-fork"]
        + list(extra_args),
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


class TestSubprocessEndToEnd:
    def test_smoke_over_real_pipes(self):
        proc = _spawn_serve("--workers", "2")
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            requests = [
                {"id": 1, "formula": VALID_F},
                {"id": 2, "formula": VALID_F_RENAMED},
                {"id": 3, "formula": INVALID_F},
                {"id": 4, "formula": "(= x"},
            ]
            for request in requests:
                proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.close()
            responses = [
                json.loads(line) for line in proc.stdout.readlines()
            ]
            assert proc.wait(timeout=60) == 0
        finally:
            proc.kill()
        assert responses[-1]["event"] == "bye"
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[1]["status"] == "VALID"
        assert by_id[2]["status"] == "VALID"
        assert by_id[3]["status"] == "INVALID"
        assert by_id[4]["error"]["kind"] == "parse"
        assert responses[-1]["served"] == 4

    def test_sigterm_drains_in_flight_requests(self):
        proc = _spawn_serve("--workers", "1")
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            proc.stdin.write(json.dumps({"id": 1, "formula": VALID_F}) + "\n")
            proc.stdin.write(
                json.dumps({"id": 2, "formula": INVALID_F}) + "\n"
            )
            proc.stdin.flush()
            # Give the reader a moment to accept both requests, then ask
            # for shutdown while they are queued/in flight.
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            responses = [
                json.loads(line) for line in proc.stdout.readlines()
            ]
            rc = proc.wait(timeout=60)
        finally:
            proc.kill()
        assert rc == 0
        assert responses[-1]["event"] == "bye"
        by_id = {r["id"]: r for r in responses if "id" in r}
        # Both accepted requests were answered despite the signal.
        assert by_id[1]["status"] == "VALID"
        assert by_id[2]["status"] == "INVALID"

    def test_sigterm_drains_and_evicts_open_sessions(self):
        proc = _spawn_serve("--workers", "1")
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            proc.stdin.write(json.dumps({"id": 1, "kind": "open"}) + "\n")
            proc.stdin.flush()
            opened = json.loads(proc.stdout.readline())
            assert opened["ok"] and opened["session"] == "s1"
            requests = [
                {
                    "id": 2,
                    "kind": "assert",
                    "session": "s1",
                    "formula": "(< x y)",
                },
                {"id": 3, "kind": "check", "session": "s1"},
            ]
            for request in requests:
                proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            time.sleep(0.3)
            # No close: the still-open session must be evicted on drain,
            # after its accepted ops are answered.
            proc.send_signal(signal.SIGTERM)
            responses = [
                json.loads(line) for line in proc.stdout.readlines()
            ]
            rc = proc.wait(timeout=60)
        finally:
            proc.kill()
        assert rc == 0
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id[2]["ok"] is True
        assert by_id[3]["status"] == "sat"
        bye = responses[-1]
        assert bye["event"] == "bye"
        assert bye["sessions"] == {"opened": 1, "evicted": 1}

    def test_cache_dir_persists_across_server_runs(self, tmp_path):
        disk = str(tmp_path / "cache")
        for expect_tier in ("misses", "hits_disk"):
            proc = _spawn_serve("--workers", "1", "--cache-dir", disk)
            try:
                json.loads(proc.stdout.readline())  # ready
                proc.stdin.write(
                    json.dumps({"id": 1, "formula": VALID_F}) + "\n"
                )
                proc.stdin.close()
                responses = [
                    json.loads(line) for line in proc.stdout.readlines()
                ]
                assert proc.wait(timeout=60) == 0
            finally:
                proc.kill()
            by_id = {r["id"]: r for r in responses if "id" in r}
            assert by_id[1]["status"] == "VALID"
            assert by_id[1]["cache"][expect_tier] == 1
