"""Tests for the brute-force oracle itself (domain bounds, limits)."""

import pytest

from repro.logic import builders as b
from repro.solvers.brute import (
    BruteForceLimitExceeded,
    brute_force_countermodel_sep,
    brute_force_valid,
    brute_force_valid_sep,
    sep_domain_bound,
)
from repro.logic.semantics import evaluate


class TestDomainBound:
    def test_no_vars(self):
        assert sep_domain_bound(b.true()) == 1

    def test_offset_free(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.band(b.lt(x, y), b.lt(y, z))
        # 3 vars, no offsets: (3-1)*(0+... 2s+1=1) + 1 = 3.
        assert sep_domain_bound(formula) == 3

    def test_with_offsets(self):
        x, y = b.const("x"), b.const("y")
        formula = b.lt(b.offset(x, -2), y)
        # 2 vars, s=2: (2-1)*(5)+1 = 6.
        assert sep_domain_bound(formula) == 6


class TestValidity:
    def test_simple_valid(self):
        x, y = b.const("x"), b.const("y")
        assert brute_force_valid_sep(b.implies(b.lt(x, y), b.le(x, y)))

    def test_simple_invalid(self):
        x, y = b.const("x"), b.const("y")
        assert not brute_force_valid_sep(b.lt(x, y))

    def test_domain_bound_is_tight_enough(self):
        # Valid only over the integers with density: x < y -> x + 1 <= y.
        x, y = b.const("x"), b.const("y")
        assert brute_force_valid_sep(
            b.implies(b.lt(x, y), b.le(b.succ(x), y))
        )
        # Needs distinct values far apart: invalid, countermodel exists
        # within the bound.
        assert not brute_force_valid_sep(
            b.implies(b.lt(x, y), b.lt(b.succ(x), y))
        )

    def test_countermodel_falsifies(self):
        x, y = b.const("x"), b.const("y")
        formula = b.implies(b.le(x, y), b.lt(x, y))
        model = brute_force_countermodel_sep(formula)
        assert model is not None
        assert not evaluate(formula, model)

    def test_rejects_applications(self):
        x = b.const("x")
        f = b.func("f")
        with pytest.raises(ValueError):
            brute_force_valid_sep(b.eq(f(x), x))

    def test_suf_wrapper_eliminates(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        assert brute_force_valid(
            b.implies(b.eq(x, y), b.eq(f(x), f(y)))
        )
        assert not brute_force_valid(b.eq(f(x), f(y)))


class TestLimits:
    def test_limit_exceeded(self):
        vs = [b.const("bf%d" % i) for i in range(10)]
        formula = b.band(*[b.lt(vs[i], vs[i + 1]) for i in range(9)])
        with pytest.raises(BruteForceLimitExceeded):
            brute_force_valid_sep(formula, limit=100)

    def test_bool_vars_counted(self):
        ps = [b.bconst("bb%d" % i) for i in range(4)]
        x = b.const("x")
        formula = b.bor(*ps, b.eq(x, x))
        # 1 var * 2^4 bools = 16 interpretations; fine under the limit.
        assert brute_force_valid_sep(formula, limit=32)
