"""Lookahead cube generator tests: determinism, coverage, failed literals."""

from repro.engine.bench_smoke import pigeonhole_cnf, random_3cnf
from repro.sat.cnf import Cnf
from repro.sat.cubes import (
    CubeConfig,
    CubeSplitter,
    generate_cubes,
)
from repro.sat.solver import CdclSolver


def make_cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    cnf.add_clauses(clauses)
    return cnf


def conquer(cnf, cube_set):
    """Solve every cube under assumptions; the disjunction's verdict."""
    solver = CdclSolver(cnf)
    for unit in cube_set.units:
        solver.add_clause([unit])
    for cube in cube_set.cubes:
        result = solver.solve_under_assumptions(cube)
        if result.is_sat:
            return "SAT"
        assert result.is_unsat
    return "UNSAT"


class TestDeterminism:
    def test_repeat_runs_identical(self):
        cnf = pigeonhole_cnf(6, 5)
        config = CubeConfig(depth=3, seed=11)
        first = generate_cubes(cnf, config)
        second = generate_cubes(cnf, config)
        assert first.status == second.status
        assert first.cubes == second.cubes
        assert first.units == second.units
        assert first.stats == second.stats

    def test_seed_changes_tree_but_not_verdict(self):
        cnf = random_3cnf(3, 60, 250)
        sets = [
            generate_cubes(cnf, CubeConfig(depth=3, seed=seed))
            for seed in (0, 1, 2)
        ]
        verdicts = {conquer(cnf, cs) for cs in sets}
        assert len(verdicts) == 1

    def test_repeat_conquer_verdict_and_cube_count_stable(self):
        cnf = pigeonhole_cnf(6, 5)
        runs = [
            generate_cubes(cnf, CubeConfig(depth=4, seed=0))
            for _ in range(3)
        ]
        assert len({len(r.cubes) for r in runs}) == 1
        assert len({conquer(cnf, r) for r in runs}) == 1


class TestCoverage:
    def test_unsat_instance_every_cube_refutes(self):
        cnf = pigeonhole_cnf(6, 5)
        cube_set = generate_cubes(cnf, CubeConfig(depth=3))
        assert cube_set.status == "SPLIT"
        assert len(cube_set.cubes) > 1
        assert conquer(cnf, cube_set) == "UNSAT"

    def test_sat_instance_some_cube_satisfiable(self):
        cnf = random_3cnf(3, 100, 426)
        cube_set = generate_cubes(cnf, CubeConfig(depth=3))
        assert conquer(cnf, cube_set) == "SAT"

    def test_direct_solver_agrees(self):
        for seed in range(4):
            cnf = random_3cnf(seed, 40, 168)
            direct = CdclSolver(cnf).solve()
            cube_set = generate_cubes(cnf, CubeConfig(depth=2))
            if cube_set.status == "UNSAT":
                assert direct.is_unsat
            else:
                expected = "SAT" if direct.is_sat else "UNSAT"
                assert conquer(cnf, cube_set) == expected

    def test_max_cubes_cap(self):
        cnf = random_3cnf(5, 80, 300)
        cube_set = generate_cubes(
            cnf, CubeConfig(depth=10, max_cubes=8)
        )
        assert cube_set.status == "SPLIT"
        assert len(cube_set.cubes) <= 8


class TestRootOutcomes:
    def test_unsat_at_root(self):
        cnf = make_cnf(1, [[1], [-1]])
        cube_set = generate_cubes(cnf)
        assert cube_set.status == "UNSAT"
        assert cube_set.cubes == []

    def test_failed_literal_becomes_root_unit(self):
        # Assigning 1 propagates 2 and -2: the positive polarity fails,
        # so -1 is a root unit.  Extra clauses keep var 1 splittable-
        # looking (nonzero occurrence) without deciding the formula.
        cnf = make_cnf(
            4, [[-1, 2], [-1, -2], [1, 3, 4], [3, -4], [-3, 4]]
        )
        cube_set = generate_cubes(cnf, CubeConfig(depth=2))
        assert -1 in cube_set.units
        assert cube_set.stats.failed_literals >= 1


class TestPreference:
    def test_preferred_var_splits_first(self):
        # Var 5 occurs less than vars 1..4 but is preferred (the EIJ
        # hook's role): every cube's first decision must be on var 5.
        clauses = [
            [1, 2], [1, -2], [-1, 2], [2, 3], [-2, -3], [3, 4],
            [-3, 4], [1, 4], [5, 1, 2], [-5, 3, 4],
        ]
        cnf = make_cnf(5, clauses)
        cube_set = generate_cubes(
            cnf, CubeConfig(depth=1, prefer_vars=[5])
        )
        assert cube_set.status == "SPLIT"
        assert {abs(cube[0]) for cube in cube_set.cubes if cube} == {5}

    def test_out_of_range_preferred_vars_ignored(self):
        cnf = random_3cnf(7, 30, 120)
        config = CubeConfig(depth=2, prefer_vars=[0, 999, -3])
        cube_set = generate_cubes(cnf, config)
        assert conquer(cnf, cube_set) in ("SAT", "UNSAT")


class TestSplitter:
    def test_resplit_extends_cube(self):
        cnf = pigeonhole_cnf(6, 5)
        cube_set = generate_cubes(cnf, CubeConfig(depth=2))
        splitter = CubeSplitter(cnf, CubeConfig(depth=2))
        assert splitter.ok
        cube = cube_set.cubes[0]
        children = splitter.resplit(cube)
        assert children is not None
        for child in children:
            assert child[: len(cube)] == cube
            assert len(child) > len(cube)

    def test_resplit_refuted_cube_returns_none(self):
        cnf = make_cnf(3, [[-1, 2], [-2, 3], [-3, -1], [1, 2, 3]])
        splitter = CubeSplitter(cnf)
        # Assuming 1 propagates 2, 3, then conflicts with [-3, -1].
        assert splitter.resplit([1]) is None

    def test_add_units_detects_contradiction(self):
        cnf = make_cnf(2, [[1, 2]])
        splitter = CubeSplitter(cnf)
        splitter.add_units([1])
        assert splitter.ok
        splitter.add_units([-1])
        assert not splitter.ok
        assert splitter.resplit([2]) is None
