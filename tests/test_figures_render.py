"""Rendering tests for the figure drivers, on synthetic measurement rows.

These exercise the table/scatter/summary code paths without running any
solver, so the full-figure formatting is covered even in quick test runs.
"""

from repro.experiments import fig2, fig3, fig4, fig5, fig6
from repro.experiments.runner import RunRow


def row(name, procedure, seconds, status="VALID", sep=10, **kw):
    return RunRow(
        benchmark=name,
        domain=kw.get("domain", "pipeline"),
        procedure=procedure,
        status=status,
        total_seconds=seconds,
        encode_seconds=seconds / 4,
        sat_seconds=seconds / 2,
        cnf_clauses=kw.get("cnf", 1000),
        conflict_clauses=kw.get("conflicts", 50),
        sep_predicates=sep,
        dag_size=kw.get("nodes", 100),
    )


class TestFig2Render:
    def test_table_and_claim(self):
        rows = [
            fig2.Fig2Row(
                benchmark="b%d" % i,
                sd=row("b%d" % i, "SD", 2.0, conflicts=500),
                eij=row("b%d" % i, "EIJ", 0.3, cnf=4000, conflicts=20),
            )
            for i in range(3)
        ]
        text = fig2.render_fig2(rows)
        assert "FIG2" in text
        assert "b0" in text
        assert "3/3" in text  # all benchmarks show fewer EIJ conflicts

    def test_timeouts_rendered(self):
        rows = [
            fig2.Fig2Row(
                benchmark="slow",
                sd=row("slow", "SD", 30.0, status="TIMEOUT"),
                eij=row("slow", "EIJ", 0.3),
            )
        ]
        text = fig2.render_fig2(rows)
        assert "timeout" in text


class TestFig3Render:
    def test_scatter_and_correlation(self):
        points = [
            fig3.Fig3Point(
                benchmark="p%d" % i,
                sep_predicates=10 * (i + 1),
                sd=row("p%d" % i, "SD", 1.0),
                eij=row("p%d" % i, "EIJ", 0.1 * (i + 1) ** 2,
                        sep=10 * (i + 1)),
            )
            for i in range(6)
        ]
        points.append(
            fig3.Fig3Point(
                benchmark="blown",
                sep_predicates=500,
                sd=row("blown", "SD", 3.0, sep=500),
                eij=row(
                    "blown", "EIJ", 20.0,
                    status="TRANSLATION_LIMIT", sep=500,
                ),
            )
        )
        text = fig3.render_fig3(points, timeout=20.0)
        assert "Spearman" in text
        assert "timeout" in text
        assert "legend" in text


class TestFig4Render:
    def test_summary_lines(self):
        rows = [
            fig4.Fig4Row(
                benchmark="n%d" % i,
                hybrid=row("n%d" % i, "HYBRID", 0.5),
                sd=row("n%d" % i, "SD", 2.0),
                eij=row(
                    "n%d" % i,
                    "EIJ",
                    20.0 if i == 0 else 0.2,
                    status="TRANSLATION_LIMIT" if i == 0 else "VALID",
                ),
            )
            for i in range(4)
        ]
        text = fig4.render_fig4(rows, timeout=20.0)
        assert "vs SD" in text and "vs EIJ" in text
        assert "EIJ timeouts: \n" not in text  # summary formats counts


class TestFig5Render:
    def test_counts(self):
        rows = [
            fig5.Fig5Row(
                benchmark="inv%d" % i,
                hybrid=row("inv%d" % i, "HYBRID", 3.0),
                hybrid_default=row(
                    "inv%d" % i, "HYBRID", 20.0, status="TRANSLATION_LIMIT"
                ),
                sd=row("inv%d" % i, "SD", 2.0),
                eij=row(
                    "inv%d" % i, "EIJ", 20.0, status="TRANSLATION_LIMIT"
                ),
            )
            for i in range(2)
        ]
        text = fig5.render_fig5(rows, timeout=20.0)
        assert "EIJ failed on 2/2" in text


class TestFig6Render:
    def test_summary(self):
        rows = [
            fig6.Fig6Row(
                benchmark="m%d" % i,
                hybrid=row("m%d" % i, "HYBRID", 0.4),
                svc=row(
                    "m%d" % i,
                    "SVC(split)",
                    20.0 if i else 0.1,
                    status="TIMEOUT" if i else "VALID",
                ),
                cvc=row("m%d" % i, "CVC(lazy)", 1.5),
            )
            for i in range(3)
        ]
        text = fig6.render_fig6(rows, timeout=20.0)
        assert "SVC" in text and "CVC" in text
        assert "timeout" in text
