"""Unit tests for :mod:`repro.logic.traversal`."""

from repro.logic import builders as b
from repro.logic.terms import And, Eq, Var
from repro.logic.traversal import (
    collect_atoms,
    collect_bool_vars,
    collect_func_symbols,
    collect_pred_symbols,
    collect_vars,
    dag_size,
    iter_dag,
    map_terms,
    max_offset_magnitude,
    postorder,
)


def build_sample():
    x, y = b.const("x"), b.const("y")
    f = b.func("f")
    p = b.pred_symbol("p")
    return b.band(b.eq(f(x), y), b.lt(x, b.succ(y)), p(x), b.bconst("B"))


class TestIteration:
    def test_iter_dag_visits_each_node_once(self):
        formula = build_sample()
        nodes = list(iter_dag(formula))
        assert len(nodes) == len({id(n) for n in nodes})

    def test_postorder_children_first(self):
        formula = build_sample()
        seen = set()
        for node in postorder(formula):
            for child in node.children():
                assert id(child) in seen
            seen.add(id(node))

    def test_postorder_handles_sharing(self):
        x, y = b.const("x"), b.const("y")
        shared = b.eq(x, y)
        formula = b.band(b.bor(shared, b.bconst("B")), b.bnot(shared))
        order = list(postorder(formula))
        assert len(order) == len({id(n) for n in order})
        assert shared in order

    def test_dag_size_counts_distinct_nodes(self):
        x, y = b.const("x"), b.const("y")
        shared = b.eq(x, y)
        # shared appears twice but is one DAG node.
        formula = b.band(b.implies(shared, b.bconst("B")), shared)
        tree_like = b.band(
            b.implies(b.eq(x, y), b.bconst("B")), b.eq(x, y)
        )
        assert dag_size(formula) == dag_size(tree_like)


class TestCollectors:
    def test_collect_vars(self):
        names = [v.name for v in collect_vars(build_sample())]
        assert names == ["x", "y"]

    def test_collect_bool_vars(self):
        names = [v.name for v in collect_bool_vars(build_sample())]
        assert names == ["B"]

    def test_collect_symbols(self):
        formula = build_sample()
        assert collect_func_symbols(formula) == ["f"]
        assert collect_pred_symbols(formula) == ["p"]

    def test_collect_atoms(self):
        atoms = collect_atoms(build_sample())
        assert len(atoms) == 2

    def test_max_offset_magnitude(self):
        x, y = b.const("x"), b.const("y")
        assert max_offset_magnitude(b.eq(x, y)) == 0
        assert max_offset_magnitude(b.eq(b.offset(x, -5), b.succ(y))) == 5


class TestMapTerms:
    def test_substitution(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.band(b.eq(x, y), b.lt(x, z))

        def subst(term):
            if term is x:
                return b.const("x2")
            return term

        mapped = map_terms(formula, subst)
        names = [v.name for v in collect_vars(mapped)]
        assert "x" not in names
        assert "x2" in names

    def test_identity_map_preserves_node(self):
        formula = build_sample()
        assert map_terms(formula, lambda t: t) is formula
