"""Tests for the EIJ Boolean-variable registry."""

import pytest

from repro.encodings.sepvars import Bound, SepVarRegistry
from repro.logic.terms import BoolVar, Not, Var


def vars2():
    return Var("ra"), Var("rb")


class TestLiterals:
    def test_canonical_orientation(self):
        registry = SepVarRegistry()
        x, y = vars2()
        lo, hi = (x, y) if x.uid < y.uid else (y, x)
        lit = registry.literal(lo, hi, 3)
        assert isinstance(lit, BoolVar)
        # The reverse direction is the negation of a (possibly different
        # constant) variable.
        rev = registry.literal(hi, lo, -4)
        assert isinstance(rev, Not)
        assert rev.arg is lit

    def test_same_bound_same_var(self):
        registry = SepVarRegistry()
        x, y = vars2()
        assert registry.literal(x, y, 2) is registry.literal(x, y, 2)
        assert registry.literal(x, y, 2) is not registry.literal(x, y, 1)

    def test_negation_round_trip(self):
        registry = SepVarRegistry()
        x, y = vars2()
        lit = registry.literal(x, y, 5)
        bound = registry.bound_of_literal(lit)
        assert bound == Bound(x, y, 5)
        neg = registry.bound_of_literal(Not(lit))
        assert neg == Bound(y, x, -6)

    def test_self_bound_rejected(self):
        registry = SepVarRegistry()
        x, _ = vars2()
        with pytest.raises(ValueError):
            registry.literal(x, x, 0)

    def test_counts(self):
        registry = SepVarRegistry()
        x, y = vars2()
        registry.literal(x, y, 0)
        registry.literal(x, y, 1, derived=True)
        assert registry.atom_var_count == 1
        assert registry.derived_var_count == 1
        assert registry.var_count() == 2

    def test_constants_tracked_both_directions(self):
        registry = SepVarRegistry()
        x, y = vars2()
        lo, hi = (x, y) if x.uid < y.uid else (y, x)
        registry.literal(lo, hi, 3)
        assert 3 in registry.constants(lo, hi)
        assert -4 in registry.constants(hi, lo)

    def test_foreign_var_has_no_bound(self):
        registry = SepVarRegistry()
        assert registry.bound_of(BoolVar("other")) is None
        assert registry.bound_of_literal(BoolVar("other")) is None


class TestEqualityVars:
    def test_symmetric(self):
        registry = SepVarRegistry()
        x, y = vars2()
        assert registry.eq_var(x, y) is registry.eq_var(y, x)

    def test_pair_lookup(self):
        registry = SepVarRegistry()
        x, y = vars2()
        var = registry.eq_var(x, y)
        lo, hi = (x, y) if x.uid < y.uid else (y, x)
        assert registry.eq_pair_of(var) == (lo, hi)
        assert registry.eq_pairs() == [(lo, hi)]

    def test_reflexive_rejected(self):
        registry = SepVarRegistry()
        x, _ = vars2()
        with pytest.raises(ValueError):
            registry.eq_var(x, x)


class TestAssertedBounds:
    def test_polarity_mapping(self):
        registry = SepVarRegistry()
        x, y = vars2()
        lo, hi = (x, y) if x.uid < y.uid else (y, x)
        var = registry.literal(lo, hi, 2)
        asserted_true = registry.asserted_bounds({var: True})
        assert asserted_true == [Bound(lo, hi, 2)]
        asserted_false = registry.asserted_bounds({var: False})
        assert asserted_false == [Bound(hi, lo, -3)]

    def test_unassigned_vars_skipped(self):
        registry = SepVarRegistry()
        x, y = vars2()
        registry.literal(x, y, 0)
        assert registry.asserted_bounds({}) == []
