"""Tests for the command-line interface."""

import io
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(argv, stdin_text=None):
    """Run the CLI capturing stdout; returns (exit_code, output)."""
    old_stdout, old_stdin = sys.stdout, sys.stdin
    sys.stdout = io.StringIO()
    if stdin_text is not None:
        sys.stdin = io.StringIO(stdin_text)
    try:
        code = main(argv)
        return code, sys.stdout.getvalue()
    finally:
        sys.stdout = old_stdout
        sys.stdin = old_stdin


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_defaults(self):
        args = build_parser().parse_args(["check", "file.suf"])
        assert args.method == "hybrid"
        assert args.sep_thold == 700


class TestCheckCommand:
    def test_valid_formula_from_stdin(self):
        code, out = run_cli(
            ["check", "-"], stdin_text="(=> (< x y) (<= x y))"
        )
        assert code == 0
        assert "VALID" in out

    def test_invalid_formula_exit_code(self):
        code, out = run_cli(["check", "-"], stdin_text="(= x y)")
        assert code == 1
        assert "INVALID" in out

    def test_countermodel_printed(self):
        code, out = run_cli(
            ["check", "-", "--countermodel"], stdin_text="(< x y)"
        )
        assert code == 1
        assert "countermodel:" in out
        assert "x =" in out

    @pytest.mark.parametrize(
        "method", ["sd", "eij", "static", "lazy", "svc"]
    )
    def test_all_methods(self, method):
        code, out = run_cli(
            ["check", "-", "--method", method],
            stdin_text="(=> (and (< x y) (< y z)) (< x z))",
        )
        assert code == 0
        assert "VALID" in out

    def test_file_input(self, tmp_path):
        path = tmp_path / "formula.suf"
        path.write_text("(=> (= a b) (= (f a) (f b)))")
        code, out = run_cli(["check", str(path)])
        assert code == 0


class TestBenchCommand:
    def test_known_benchmark(self):
        code, out = run_cli(["bench", "pipeline_s2_r2_1"])
        assert code == 0
        assert "VALID" in out

    def test_unknown_benchmark(self):
        code, out = run_cli(["bench", "no_such_bench"])
        assert code == 2

    def test_print_formula(self):
        code, out = run_cli(
            ["bench", "pipeline_s2_r2_1", "--print-formula"]
        )
        assert code == 0
        assert "(=" in out or "(ite" in out


class TestSuiteCommand:
    def test_lists_49(self):
        code, out = run_cli(["suite"])
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 49
        assert any("invariant" in line for line in lines)


class TestAnalyzeCommand:
    def test_analysis_output(self):
        code, out = run_cli(
            ["analyze", "-"],
            stdin_text="(not (and (< x y) (= (+ x 2) y) (= u v)))",
        )
        assert code == 0
        assert "classes: 2" in out  # {x, y} and {u, v}
        assert "V_p: 0" in out
        assert "inequalities+offsets" in out
        assert "equalities only" in out

    def test_equality_only_class(self):
        code, out = run_cli(
            ["analyze", "-"], stdin_text="(not (= x y))"
        )
        assert code == 0
        assert "equalities only" in out


class TestSatCommand:
    def test_sat_instance(self):
        code, out = run_cli(
            ["sat", "-", "--model"],
            stdin_text="p cnf 2 2\n1 2 0\n-1 0\n",
        )
        assert code == 10
        assert "s SATISFIABLE" in out
        assert "v -1 2 0" in out

    def test_unsat_instance(self):
        code, out = run_cli(
            ["sat", "-"], stdin_text="p cnf 1 2\n1 0\n-1 0\n"
        )
        assert code == 20
        assert "s UNSATISFIABLE" in out


class TestSmtLibInput:
    def test_auto_detected_unsat(self):
        script = (
            "(set-logic QF_IDL)(declare-const a Int)(declare-const b Int)"
            "(assert (< a b))(assert (< b a))(check-sat)"
        )
        code, out = run_cli(["check", "-"], stdin_text=script)
        assert "unsat" in out
        assert code == 0  # negation VALID

    def test_auto_detected_sat(self):
        script = (
            "(declare-const a Int)(declare-const b Int)"
            "(assert (< a b))(check-sat)"
        )
        code, out = run_cli(["check", "-"], stdin_text=script)
        assert out.splitlines()[0] == "sat"
        assert code == 1

    def test_explicit_format_flag(self):
        code, out = run_cli(
            ["check", "-", "--format", "sexpr"],
            stdin_text="(= x x)",
        )
        assert code == 0


class TestCheckParseErrors:
    """Malformed input is a clean exit-2 diagnostic, not a traceback."""

    def test_out_of_fragment_smtlib(self, capsys):
        script = (
            "(set-logic QF_IDL)(declare-const a Int)"
            "(assert (= (* a 2) a))(check-sat)"
        )
        code, _out = run_cli(["check", "-"], stdin_text=script)
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "outside the SUF fragment" in err

    def test_malformed_smtlib_reports_position(self, capsys):
        code, _out = run_cli(
            ["check", "-"], stdin_text="(set-logic QF_IDL)(assert"
        )
        assert code == 2
        assert "line" in capsys.readouterr().err

    def test_malformed_sexpr(self, capsys):
        code, _out = run_cli(["check", "-"], stdin_text="(=> (and")
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestNoPreprocessFlag:
    def test_flag_parsed(self):
        args = build_parser().parse_args(["check", "-", "--no-preprocess"])
        assert args.no_preprocess is True

    def test_verdict_unchanged_without_preprocessing(self):
        formula = "(=> (and (= x y) (= y z)) (= x z))"
        code_on, out_on = run_cli(["check", "-"], stdin_text=formula)
        code_off, out_off = run_cli(
            ["check", "-", "--no-preprocess"], stdin_text=formula
        )
        assert code_on == code_off == 0
        assert "VALID" in out_on and "VALID" in out_off

    def test_countermodel_survives_reconstruction(self):
        # INVALID + --countermodel exercises the decode path through the
        # preprocessor's model-reconstruction stack.
        code, out = run_cli(
            ["check", "-", "--countermodel"], stdin_text="(= x y)"
        )
        assert code == 1
        assert "countermodel:" in out
