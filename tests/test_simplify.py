"""Tests for the structural simplifier, including semantic preservation."""

import random

from hypothesis import given, settings, strategies as st

from repro.logic import builders as b
from repro.logic.semantics import Interpretation, evaluate
from repro.logic.simplify import simplify
from repro.logic.terms import FALSE, TRUE
from repro.logic.traversal import collect_bool_vars, collect_vars, dag_size

from helpers import random_suf_formula


class TestRewrites:
    def test_complementary_conjuncts(self):
        p, q = b.bconst("p"), b.bconst("q")
        assert simplify(b.band(p, q, b.bnot(p))) is FALSE

    def test_complementary_disjuncts(self):
        p, q = b.bconst("p"), b.bconst("q")
        assert simplify(b.bor(p, q, b.bnot(q))) is TRUE

    def test_absorption_and(self):
        p, q = b.bconst("p"), b.bconst("q")
        assert simplify(b.band(p, b.bor(p, q))) is p

    def test_absorption_or(self):
        p, q = b.bconst("p"), b.bconst("q")
        assert simplify(b.bor(p, b.band(p, q))) is p

    def test_implies_self(self):
        x, y = b.const("x"), b.const("y")
        atom = b.lt(x, y)
        # Implies constructor doesn't fold p -> p; the simplifier does.
        formula = b.implies(b.band(atom, b.bconst("r")),
                            b.band(atom, b.bconst("r")))
        assert simplify(formula) is TRUE

    def test_implies_negation(self):
        p = b.bconst("p")
        assert simplify(b.implies(p, b.bnot(p))) is b.bnot(p)

    def test_iff_negation(self):
        p = b.bconst("p")
        assert simplify(b.iff(p, b.bnot(p))) is FALSE

    def test_nested_collapse(self):
        p, q = b.bconst("p"), b.bconst("q")
        # The inner contradiction propagates outward.
        inner = b.band(p, b.bnot(p))
        formula = b.bor(q, b.band(inner, q))
        assert simplify(formula) is q

    def test_atoms_through_terms(self):
        x, y = b.const("x"), b.const("y")
        atom = b.eq(b.ite(b.band(b.bconst("p"), b.bnot(b.bconst("p"))), x, y), y)
        # The ITE condition simplifies to false, so the ITE collapses and
        # the equation folds to true.
        assert simplify(atom) is TRUE


class TestSemanticPreservation:
    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_random_formulas_equivalent(self, seed):
        formula = random_suf_formula(seed)
        simplified = simplify(formula)
        rng = random.Random(seed)
        for _ in range(4):
            env = Interpretation(
                vars={
                    v.name: rng.randint(-4, 4)
                    for v in collect_vars(formula)
                },
                bools={
                    v.name: rng.random() < 0.5
                    for v in collect_bool_vars(formula)
                },
                funcs={},
                func_default=rng.randint(-2, 2),
            )
            assert evaluate(formula, env) == evaluate(simplified, env)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_idempotent(self, seed):
        formula = random_suf_formula(seed)
        once = simplify(formula)
        assert simplify(once) is once

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_never_grows(self, seed):
        formula = random_suf_formula(seed)
        assert dag_size(simplify(formula)) <= dag_size(formula)
