"""Parser/printer round-trip tests, including a hypothesis property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import builders as b
from repro.logic.parser import ParseError, parse_formula, parse_term
from repro.logic.printer import pretty, to_sexpr

from helpers import random_suf_formula


class TestParseBasics:
    def test_atoms(self):
        assert parse_formula("(= x y)") is b.eq(b.const("x"), b.const("y"))
        assert parse_formula("(< x y)") is b.lt(b.const("x"), b.const("y"))
        assert parse_formula("true") is b.true()
        assert parse_formula("false") is b.false()
        assert parse_formula("P") is b.bconst("P")

    def test_derived_comparisons(self):
        x, y = b.const("x"), b.const("y")
        assert parse_formula("(<= x y)") is b.le(x, y)
        assert parse_formula("(> x y)") is b.gt(x, y)
        assert parse_formula("(>= x y)") is b.ge(x, y)

    def test_terms(self):
        x = b.const("x")
        assert parse_term("(succ x)") is b.succ(x)
        assert parse_term("(pred x)") is b.pred(x)
        assert parse_term("(+ x 5)") is b.offset(x, 5)
        assert parse_term("(+ x -3)") is b.offset(x, -3)
        f = b.func("f")
        assert parse_term("(f x x)") is f(x, x)

    def test_ite(self):
        x, y = b.const("x"), b.const("y")
        parsed = parse_term("(ite (= x y) (succ x) y)")
        assert parsed is b.ite(b.eq(x, y), b.succ(x), y)

    def test_connectives(self):
        text = "(=> (and (= x y) (not P)) (or (< x y) (iff P Q)))"
        formula = parse_formula(text)
        x, y = b.const("x"), b.const("y")
        P, Q = b.bconst("P"), b.bconst("Q")
        expected = b.implies(
            b.band(b.eq(x, y), b.bnot(P)),
            b.bor(b.lt(x, y), b.iff(P, Q)),
        )
        assert formula is expected

    def test_comments_and_whitespace(self):
        text = """
        ; a comment
        (and (= x y)   ; inline comment
             (< x y))
        """
        assert parse_formula(text) is parse_formula("(and (= x y) (< x y))")

    def test_predicate_and_function_inference(self):
        formula = parse_formula("(p (f x) y)")
        from repro.logic.terms import FuncApp, PredApp

        assert isinstance(formula, PredApp)
        assert isinstance(formula.args[0], FuncApp)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(",
            ")",
            "(= x)",
            "(= x y z)",
            "(succ x y)",
            "(+ x y)",
            "(and (= x y)",
            "(= x y) extra",
            "(< true x)",
            "(not x-is-not-bool (= x y))",
            "(= and y)",
            "(ite (= x y) x)",
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(ParseError):
            parse_formula(text)

    def test_term_vs_formula_position(self):
        with pytest.raises(ParseError):
            parse_term("(and x y)")
        with pytest.raises(ParseError):
            parse_formula("(succ x)")


class TestRoundTrip:
    def test_simple_round_trip(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.implies(
            b.band(b.eq(f(x, y), b.offset(x, 4)), b.lt(x, b.pred(y))),
            b.bor(b.bconst("P"), b.bnot(b.eq(x, y))),
        )
        assert parse_formula(to_sexpr(formula)) is formula

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_round_trip(self, seed):
        formula = random_suf_formula(seed)
        assert parse_formula(to_sexpr(formula)) is formula

    def test_pretty_parses_back(self):
        formula = random_suf_formula(7, depth=4)
        assert parse_formula(pretty(formula)) is formula

    def test_pretty_short_stays_one_line(self):
        formula = b.eq(b.const("x"), b.const("y"))
        assert "\n" not in pretty(formula)


class TestQuotedSymbols:
    """The |...| escaping rules shared with the SMT-LIB syntax
    (repro.logic.lexicon): awkward names survive the native round trip."""

    @pytest.mark.parametrize(
        "name", ["0", "-3", "two words", "ite", "succ", "iff", "true", "a;b"]
    )
    def test_awkward_name_round_trips(self, name):
        formula = b.band(
            b.eq(b.const(name), b.const("ok")),
            b.bor(
                b.bconst(name),
                b.lt(b.func(name)(b.const("ok")), b.const(name)),
            ),
        )
        assert parse_formula(to_sexpr(formula)) is formula
        assert parse_formula(pretty(formula)) is formula

    def test_quoted_reserved_head_is_a_symbol(self):
        assert parse_formula("(= |ite| y)") is b.eq(
            b.const("ite"), b.const("y")
        )
        assert parse_formula("|true|") is b.bconst("true")

    def test_quoted_numeral_is_a_symbol(self):
        assert parse_formula("(= |0| y)") is b.eq(b.const("0"), b.const("y"))

    def test_quoted_literal_position_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("(= (+ x |1|) y)")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_formula("(= |oops y)")

    def test_plain_names_stay_unquoted(self):
        formula = b.eq(b.const("x1"), b.func("f")(b.const("y")))
        assert "|" not in to_sexpr(formula)

    def test_printer_and_smtlib_share_lexicon(self):
        from repro.logic import lexicon
        from repro.logic.printer import SEXPR_RESERVED
        from repro.logic.smtlib import RESERVED_WORDS, needs_quoting

        # One rule engine, two reserved sets.
        for name in ("0", "two words", "-7"):
            assert lexicon.symbol_needs_quoting(name, SEXPR_RESERVED)
            assert needs_quoting(name)
        assert lexicon.symbol_needs_quoting("iff", SEXPR_RESERVED)
        assert "iff" not in RESERVED_WORDS
        assert needs_quoting("let")
        assert not lexicon.symbol_needs_quoting("let", SEXPR_RESERVED)
