"""Tests for the ``repro compete`` evaluation runner."""

from __future__ import annotations

import json
import os

import pytest

from repro.benchgen.smtlib_corpus import default_corpus, emit_corpus
from repro.cli import main
from repro.engine.compete import (
    CompeteConfig,
    InstanceRun,
    _score,
    discover_instances,
    format_table,
    run_compete,
    write_report,
)
from repro.logic.smtlib import parse_smtlib

SAT_SCRIPT = """(set-logic QF_IDL)
(set-info :status sat)
(declare-const x Int)
(assert (< x 3))
(check-sat)
"""

UNSAT_SCRIPT = """(set-logic QF_IDL)
(set-info :status unsat)
(declare-const x Int)
(assert (< x x))
(check-sat)
"""

# :status deliberately wrong: the script is trivially sat.
MISMATCH_SCRIPT = """(set-logic QF_IDL)
(set-info :status unsat)
(declare-const x Int)
(assert (< x 3))
(check-sat)
"""

BROKEN_SCRIPT = "(set-logic QF_IDL)(assert (< x"

UNSUPPORTED_SCRIPT = """(set-logic QF_IDL)
(declare-const x Int)
(assert (= (* 2 x) 4))
(check-sat)
"""


def _write(root, name, text):
    path = os.path.join(root, name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fp:
        fp.write(text)
    return path


@pytest.fixture()
def corpus_dir(tmp_path):
    root = str(tmp_path / "bench")
    _write(root, "easy/sat_one.smt2", SAT_SCRIPT)
    _write(root, "easy/unsat_one.smt2", UNSAT_SCRIPT)
    _write(root, "hard/unsat_two.smt2", UNSAT_SCRIPT)
    return root


def test_discover_instances_labels_and_families(corpus_dir):
    found = discover_instances([corpus_dir])
    assert [label for label, _f, _p in found] == [
        os.path.join("easy", "sat_one.smt2"),
        os.path.join("easy", "unsat_one.smt2"),
        os.path.join("hard", "unsat_two.smt2"),
    ]
    assert [family for _l, family, _p in found] == ["easy", "easy", "hard"]


def test_discover_instances_multiple_roots_prefixed(tmp_path):
    root_a = str(tmp_path / "alpha")
    root_b = str(tmp_path / "beta")
    _write(root_a, "one.smt2", SAT_SCRIPT)
    _write(root_b, "one.smt2", SAT_SCRIPT)
    labels = [label for label, _f, _p in discover_instances([root_a, root_b])]
    assert len(set(labels)) == 2
    assert any(label.startswith("alpha") for label in labels)


def test_discover_instances_missing_root():
    with pytest.raises(FileNotFoundError):
        discover_instances(["/nonexistent/bench/dir"])


def test_run_compete_clean_sweep(corpus_dir, tmp_path):
    report = run_compete(
        CompeteConfig(roots=[corpus_dir], methods=["hybrid"], timeout=5.0)
    )
    score = report["methods"]["hybrid"]["score"]
    assert score["instances"] == 3
    assert score["solved"] == 3
    assert score["sat"] == 1
    assert score["unsat"] == 2
    assert score["mismatches"] == 0
    assert report["mismatches_total"] == 0
    assert report["ok"]
    families = report["methods"]["hybrid"]["families"]
    assert set(families) == {"easy", "hard"}
    assert families["easy"]["instances"] == 2
    # Round-trippable artifact.
    out = str(tmp_path / "report.json")
    write_report(report, out)
    with open(out) as fp:
        assert json.load(fp)["meta"]["scoring"] == "par2"
    # Human table mentions every method and family.
    table = format_table(report)
    assert "hybrid" in table and "easy" in table and "MISMATCH" not in table


def test_run_compete_flags_mismatches(tmp_path):
    root = str(tmp_path / "bench")
    _write(root, "bad.smt2", MISMATCH_SCRIPT)
    report = run_compete(CompeteConfig(roots=[root], methods=["hybrid"]))
    assert report["mismatches_total"] == 1
    assert not report["ok"]
    assert "MISMATCH" in format_table(report)


def test_run_compete_errors_gated_by_flag(tmp_path):
    root = str(tmp_path / "bench")
    _write(root, "broken.smt2", BROKEN_SCRIPT)
    _write(root, "unsupported.smt2", UNSUPPORTED_SCRIPT)
    _write(root, "fine.smt2", SAT_SCRIPT)
    report = run_compete(CompeteConfig(roots=[root], methods=["hybrid"]))
    score = report["methods"]["hybrid"]["score"]
    assert score["error"] == 2
    assert score["solved"] == 1
    assert report["ok"]  # errors tolerated by default
    strict = run_compete(
        CompeteConfig(roots=[root], methods=["hybrid"], fail_on_error=True)
    )
    assert not strict["ok"]
    rows = strict["methods"]["hybrid"]["instances"]
    assert "unsupported" in rows["unsupported.smt2"]["detail"]
    assert "parse error" in rows["broken.smt2"]["detail"]


def test_par2_math():
    timeout = 10.0
    rows = [
        InstanceRun("a", "f", "sat", "sat", 1.5),
        InstanceRun("b", "f", "unsat", "unsat", 2.5),
        InstanceRun("c", "f", "sat", "timeout", 10.0),
        InstanceRun("d", "f", None, "unknown", 0.5),
    ]
    score = _score(rows, timeout)
    assert score["solved"] == 2
    assert score["par2"] == pytest.approx(1.5 + 2.5 + 2 * timeout * 2)


def test_mismatch_requires_decided_both_sides():
    # unknown/timeout verdicts and unannotated instances never mismatch.
    assert InstanceRun("a", "f", "sat", "unsat", 0.1).mismatch
    assert not InstanceRun("a", "f", "sat", "unknown", 0.1).mismatch
    assert not InstanceRun("a", "f", None, "sat", 0.1).mismatch
    assert not InstanceRun("a", "f", "unknown", "sat", 0.1).mismatch


def test_cli_compete_exit_codes(corpus_dir, tmp_path, capsys):
    out = str(tmp_path / "report.json")
    rc = main(
        ["compete", corpus_dir, "--methods", "hybrid", "--out", out]
    )
    assert rc == 0
    assert os.path.exists(out)
    captured = capsys.readouterr()
    assert "solved" in captured.out

    bad_root = str(tmp_path / "badbench")
    _write(bad_root, "bad.smt2", MISMATCH_SCRIPT)
    assert main(["compete", bad_root, "--out", ""]) == 1

    assert main(["compete", "--out", ""]) == 2
    assert main(["compete", corpus_dir, "--methods", "nosuch"]) == 2


def test_cli_compete_fail_on_error(tmp_path):
    root = str(tmp_path / "bench")
    _write(root, "broken.smt2", BROKEN_SCRIPT)
    assert main(["compete", root, "--out", ""]) == 0
    assert main(["compete", root, "--out", "", "--fail-on-error"]) == 1


def test_benchgen_corpus_round_trips(tmp_path):
    out_dir = str(tmp_path / "gen")
    written = emit_corpus(out_dir, count=2)
    assert len(written) == 4  # two names, both polarities
    for path, status in written:
        script = parse_smtlib(open(path).read())
        assert script.expected_status == status
        assert script.check_sat_requested


def test_benchgen_corpus_statuses_verified():
    # The emitted :status annotations must agree with an actual solver
    # on at least one cheap pair (full sweep runs in compete-smoke).
    benches = default_corpus(count=1)
    assert {bench.expected_valid for bench in benches} == {True, False}


def test_compete_over_benchgen_emission(tmp_path):
    out_dir = str(tmp_path / "gen")
    emit_corpus(out_dir, count=1)
    report = run_compete(
        CompeteConfig(
            roots=[out_dir],
            methods=["hybrid"],
            timeout=30.0,
            fail_on_error=True,
        )
    )
    assert report["ok"]
    assert report["methods"]["hybrid"]["score"]["solved"] == 2
