"""Tests for the CNF container and DIMACS I/O."""

import pytest

from repro.sat.cnf import Cnf
from repro.sat.dimacs import dumps, loads


class TestCnf:
    def test_new_var_sequential(self):
        cnf = Cnf()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_named_vars(self):
        cnf = Cnf()
        v = cnf.var_for("x")
        assert cnf.var_for("x") == v
        assert cnf.lookup("x") == v
        assert cnf.lookup("missing") is None
        assert cnf.names[v] == "x"

    def test_add_clause_validation(self):
        cnf = Cnf()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([0])
        with pytest.raises(ValueError):
            cnf.add_clause([2])  # unallocated
        cnf.add_clause([1, -1])
        assert len(cnf) == 1

    def test_add_clauses(self):
        cnf = Cnf()
        cnf.new_var()
        cnf.new_var()
        cnf.add_clauses([[1], [-1, 2]])
        assert len(cnf) == 2


class TestDimacs:
    def test_round_trip(self):
        cnf = Cnf()
        for _ in range(3):
            cnf.new_var()
        cnf.add_clauses([[1, -2], [2, 3], [-3]])
        text = dumps(cnf, comment="round trip")
        parsed = loads(text)
        assert parsed.num_vars == 3
        assert parsed.clauses == [[1, -2], [2, 3], [-3]]
        assert text.startswith("c round trip\np cnf 3 3\n")

    def test_parse_multiline_clause(self):
        parsed = loads("p cnf 2 1\n1\n-2 0\n")
        assert parsed.clauses == [[1, -2]]

    def test_parse_grows_vars(self):
        parsed = loads("p cnf 1 1\n3 0\n")
        assert parsed.num_vars == 3

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            loads("p dnf 1 1\n1 0\n")

    def test_comments_skipped(self):
        parsed = loads("c hi\nc there\np cnf 1 1\nc mid\n1 0\n")
        assert parsed.clauses == [[1]]

    def test_solver_on_parsed_instance(self):
        from repro.sat.solver import solve_cnf

        text = "p cnf 3 4\n1 2 0\n-1 3 0\n-2 -3 0\n-1 -2 0\n"
        result = solve_cnf(loads(text))
        assert result.is_sat
