"""Tests for the CNF container and DIMACS I/O."""

import pytest

from repro.sat.cnf import Cnf
from repro.sat.dimacs import dumps, loads


class TestCnf:
    def test_new_var_sequential(self):
        cnf = Cnf()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_named_vars(self):
        cnf = Cnf()
        v = cnf.var_for("x")
        assert cnf.var_for("x") == v
        assert cnf.lookup("x") == v
        assert cnf.lookup("missing") is None
        assert cnf.names[v] == "x"

    def test_add_clause_validation(self):
        cnf = Cnf()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([0])
        with pytest.raises(ValueError):
            cnf.add_clause([2])  # unallocated
        cnf.add_clause([1, -1])
        assert len(cnf) == 1

    def test_add_clauses(self):
        cnf = Cnf()
        cnf.new_var()
        cnf.new_var()
        cnf.add_clauses([[1], [-1, 2]])
        assert len(cnf) == 2


class TestDimacs:
    def test_round_trip(self):
        cnf = Cnf()
        for _ in range(3):
            cnf.new_var()
        cnf.add_clauses([[1, -2], [2, 3], [-3]])
        text = dumps(cnf, comment="round trip")
        parsed = loads(text)
        assert parsed.num_vars == 3
        assert parsed.clauses == [[1, -2], [2, 3], [-3]]
        assert text.startswith("c round trip\np cnf 3 3\n")

    def test_parse_multiline_clause(self):
        parsed = loads("p cnf 2 1\n1\n-2 0\n")
        assert parsed.clauses == [[1, -2]]

    def test_parse_grows_vars(self):
        parsed = loads("p cnf 1 1\n3 0\n")
        assert parsed.num_vars == 3

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            loads("p dnf 1 1\n1 0\n")

    def test_comments_skipped(self):
        parsed = loads("c hi\nc there\np cnf 1 1\nc mid\n1 0\n")
        assert parsed.clauses == [[1]]

    def test_solver_on_parsed_instance(self):
        from repro.sat.solver import solve_cnf

        text = "p cnf 3 4\n1 2 0\n-1 3 0\n-2 -3 0\n-1 -2 0\n"
        result = solve_cnf(loads(text))
        assert result.is_sat


class TestUncheckedInserts:
    def test_add_clause_unchecked(self):
        cnf = Cnf()
        for _ in range(3):
            cnf.new_var()
        cnf.add_clause_unchecked([1, -2, 3])
        assert cnf.clauses == [[1, -2, 3]]

    def test_add_clauses_unchecked_bulk(self):
        cnf = Cnf()
        for _ in range(4):
            cnf.new_var()
        batch = [[1, 2], [-3, 4], [2, -4]]
        cnf.add_clauses_unchecked(batch)
        assert cnf.clauses == batch

    def test_unchecked_skips_validation(self):
        # The checked path rejects out-of-range vars; the unchecked path
        # is an ownership transfer with no bounds check, paired with
        # ensure_vars for callers that track the max var themselves.
        cnf = Cnf()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([5])
        cnf.add_clause_unchecked([5])
        cnf.ensure_vars(5)
        assert cnf.num_vars == 5
        cnf.add_clause([5])  # now in range for the checked path

    def test_ensure_vars_never_shrinks(self):
        cnf = Cnf()
        for _ in range(7):
            cnf.new_var()
        cnf.ensure_vars(3)
        assert cnf.num_vars == 7

    def test_mixed_checked_and_unchecked_solve(self):
        from repro.sat.solver import solve_cnf

        cnf = Cnf()
        for _ in range(3):
            cnf.new_var()
        cnf.add_clause([1, 2])
        cnf.add_clauses_unchecked([[-1, 3], [-2, 3]])
        result = solve_cnf(cnf)
        assert result.is_sat


class TestLargeRoundTrip:
    def test_large_cnf_round_trips(self):
        # Exercises the batched serialization path on a CNF big enough
        # that per-clause writes would dominate.
        import random

        rng = random.Random(7)
        nvars, nclauses = 600, 4000
        cnf = Cnf()
        for _ in range(nvars):
            cnf.new_var()
        cnf.add_clauses_unchecked(
            [
                [
                    rng.choice([-1, 1]) * rng.randint(1, nvars)
                    for _ in range(rng.randint(1, 6))
                ]
                for _ in range(nclauses)
            ]
        )
        rendered = dumps(cnf)
        assert rendered.endswith("\n")
        parsed = loads(rendered)
        assert parsed.num_vars == nvars
        assert parsed.clauses == cnf.clauses
