"""Tests for the experiment harness (runner, report, figure drivers).

Figure drivers are exercised on tiny custom benchmarks or micro-timeouts
so the test suite stays fast; the full-scale runs live in ``benchmarks/``.
"""

import pytest

from repro.benchgen.pipeline import make_pipeline
from repro.benchgen.invariant import make_invariant
from repro.experiments import report, runner
from repro.experiments.fig3 import rank_correlation
from repro.experiments.fig4 import summarize_vs_hybrid


class TestRunner:
    def test_run_benchmark_populates_row(self):
        bench = make_pipeline(stages=2, reads=2, seed=0)
        row = runner.run_benchmark(bench, "HYBRID", timeout=20.0)
        assert row.status == "VALID"
        assert row.benchmark == bench.name
        assert row.total_seconds > 0
        assert row.dag_size == bench.dag_size
        assert not row.timed_out

    def test_all_procedures_run(self):
        bench = make_pipeline(stages=2, reads=2, seed=0)
        for procedure in runner.PROCEDURES:
            row = runner.run_benchmark(bench, procedure, timeout=20.0)
            assert row.status == "VALID", procedure

    def test_translation_limit_maps_to_timeout_row(self):
        bench = make_invariant(cells=12, seed=1)
        row = runner.run_benchmark(
            bench, "EIJ", timeout=20.0, trans_budget=10
        )
        assert row.status == "TRANSLATION_LIMIT"
        assert row.timed_out

    def test_wrong_verdict_raises(self):
        bench = make_pipeline(stages=2, reads=2, seed=0)
        object.__setattr__  # keep lint quiet
        bench.expected_valid = False  # sabotage
        with pytest.raises(AssertionError):
            runner.run_benchmark(bench, "HYBRID", timeout=20.0)

    def test_run_suite(self):
        benches = [make_pipeline(stages=2, reads=2, seed=s) for s in (0, 1)]
        rows = runner.run_suite(benches, ["HYBRID", "EIJ"], timeout=20.0)
        assert len(rows) == 4

    def test_normalized_seconds(self):
        bench = make_pipeline(stages=2, reads=2, seed=0)
        row = runner.run_benchmark(bench, "EIJ", timeout=20.0)
        expected = row.total_seconds / (bench.dag_size / 1000.0)
        assert abs(row.normalized_seconds - expected) < 1e-9


class TestReport:
    def test_table_alignment(self):
        text = report.table(
            ["name", "value"], [["a", 1], ["longer", 23]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        widths = {len(line) for line in lines if line.strip()}
        assert len(widths) <= 2  # header separator may differ slightly

    def test_format_seconds(self):
        assert report.format_seconds(1.234) == "1.23"
        assert report.format_seconds(0.0001) == "0.0001"
        assert report.format_seconds(None) == "-"
        assert report.format_seconds(5.0, timed_out=True) == "timeout"

    def test_ascii_scatter_renders(self):
        text = report.ascii_scatter(
            {"A": [(1, 1), (10, 100)], "B": [(5, 2)]},
            width=30,
            height=10,
            xlabel="xs",
            ylabel="ys",
        )
        assert "legend" in text
        assert "xs" in text and "ys" in text
        assert "x = A" in text

    def test_ascii_scatter_empty(self):
        assert report.ascii_scatter({}) == "(no points)"


class TestFigureHelpers:
    def test_rank_correlation_perfect(self):
        pairs = [(1, 10.0), (2, 20.0), (3, 30.0)]
        assert rank_correlation(pairs) == pytest.approx(1.0)

    def test_rank_correlation_inverse(self):
        pairs = [(1, 30.0), (2, 20.0), (3, 10.0)]
        assert rank_correlation(pairs) == pytest.approx(-1.0)

    def test_rank_correlation_with_ties(self):
        pairs = [(1, 5.0), (1, 5.0), (2, 9.0)]
        value = rank_correlation(pairs)
        assert 0.0 < value <= 1.0 + 1e-9

    def test_rank_correlation_degenerate(self):
        assert rank_correlation([]) == 0.0
        assert rank_correlation([(1, 1.0)]) == 0.0
        assert rank_correlation([(1, 1.0), (1, 2.0)]) == 0.0

    def test_summarize_vs_hybrid(self):
        bench = make_pipeline(stages=2, reads=2, seed=0)
        fast = runner.run_benchmark(bench, "HYBRID", timeout=20.0)
        slow = runner.run_benchmark(bench, "SD", timeout=20.0)
        text = summarize_vs_hybrid([(fast, slow)], timeout=20.0)
        assert "vs SD" in text


class TestThresholdExperimentPieces:
    def test_selection_from_synthetic_rows(self):
        from repro.encodings.threshold import select_threshold

        # Shape matching our calibrated suite: fast cluster up to ~80
        # predicates, then translation failures.
        samples = [
            (30, 0.5),
            (44, 1.0),
            (39, 8.0),
            (80, 0.9),
            (54, 170.0),
            (140, 220.0),
        ]
        selection = select_threshold(samples)
        assert selection.threshold == 100


class TestExport:
    def _rows(self):
        bench = make_pipeline(stages=2, reads=2, seed=0)
        return [
            runner.run_benchmark(bench, "HYBRID", timeout=20.0),
            runner.run_benchmark(bench, "EIJ", timeout=20.0),
        ]

    def test_csv_round_trip(self):
        import csv
        import io

        from repro.experiments.export import write_csv

        rows = self._rows()
        buf = io.StringIO()
        write_csv(rows, buf)
        buf.seek(0)
        parsed = list(csv.DictReader(buf))
        assert len(parsed) == 2
        assert parsed[0]["procedure"] == "HYBRID"
        assert parsed[0]["status"] == "VALID"
        assert float(parsed[0]["total_seconds"]) > 0

    def test_json_output(self):
        import io
        import json

        from repro.experiments.export import write_json

        rows = self._rows()
        buf = io.StringIO()
        write_json(rows, buf)
        parsed = json.loads(buf.getvalue())
        assert len(parsed) == 2
        assert parsed[1]["procedure"] == "EIJ"
        assert parsed[1]["timed_out"] is False
        assert "normalized_seconds" in parsed[0]
