"""Unit tests for offset pushing and ground-term enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import builders as b
from repro.logic.semantics import Interpretation, evaluate, evaluate_term
from repro.logic.terms import Ite, Offset, Var
from repro.logic.traversal import iter_dag
from repro.transform.ground import (
    enumerate_leaf_paths,
    enumerate_leaves,
    ground_terms_of,
    leaf_count,
    push_offsets,
    push_offsets_term,
    split_ground,
)

from helpers import random_sep_formula


def is_offset_pushed(term):
    """Check no Offset wraps an ITE anywhere in the term."""
    for node in iter_dag(term):
        if isinstance(node, Offset) and isinstance(node.base, Ite):
            return False
    return True


class TestPushOffsets:
    def test_offset_through_ite(self):
        x, y = b.const("x"), b.const("y")
        cond = b.eq(x, y)
        term = b.succ(b.ite(cond, x, y))
        pushed = push_offsets_term(term)
        assert pushed is b.ite(cond, b.succ(x), b.succ(y))

    def test_nested(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        c1, c2 = b.eq(x, y), b.lt(y, z)
        term = b.offset(b.ite(c1, b.ite(c2, x, y), z), -2)
        pushed = push_offsets_term(term)
        assert is_offset_pushed(pushed)
        assert pushed is b.ite(
            c1,
            b.ite(c2, b.offset(x, -2), b.offset(y, -2)),
            b.offset(z, -2),
        )

    def test_offsets_inside_condition_also_pushed(self):
        x, y = b.const("x"), b.const("y")
        cond = b.eq(b.succ(b.ite(b.lt(x, y), x, y)), y)
        term = b.ite(cond, x, y)
        formula = b.eq(term, y)
        pushed = push_offsets(formula)
        for node in iter_dag(pushed):
            if isinstance(node, Offset):
                assert isinstance(node.base, Var)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_pushing_preserves_semantics(self, seed):
        import random

        formula = random_sep_formula(seed)
        pushed = push_offsets(formula)
        rng = random.Random(seed)
        from repro.logic.traversal import collect_bool_vars, collect_vars

        for _ in range(5):
            env = Interpretation(
                vars={
                    v.name: rng.randint(-5, 5)
                    for v in collect_vars(formula)
                },
                bools={
                    v.name: rng.random() < 0.5
                    for v in collect_bool_vars(formula)
                },
            )
            assert evaluate(formula, env) == evaluate(pushed, env)


class TestSplitGround:
    def test_bare_var(self):
        x = b.const("x")
        assert split_ground(x) == (x, 0)

    def test_offset_var(self):
        x = b.const("x")
        assert split_ground(b.offset(x, -7)) == (x, -7)

    def test_non_ground_raises(self):
        x, y = b.const("x"), b.const("y")
        with pytest.raises(ValueError):
            split_ground(b.ite(b.eq(x, y), x, y))


class TestLeafEnumeration:
    def build(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        c1, c2 = b.eq(x, y), b.lt(y, z)
        term = push_offsets_term(
            b.succ(b.ite(c1, b.ite(c2, x, y), z))
        )
        return term, (c1, c2), (x, y, z)

    def test_ground_terms_of(self):
        term, _, (x, y, z) = self.build()
        grounds = ground_terms_of(term)
        assert set(grounds) == {b.succ(x), b.succ(y), b.succ(z)}

    def test_leaf_count_counts_paths(self):
        term, _, _ = self.build()
        assert leaf_count(term) == 3

    def test_leaf_count_shared_dag(self):
        x, y = b.const("x"), b.const("y")
        cond = b.eq(x, y)
        inner = b.ite(b.lt(x, y), x, y)
        term = push_offsets_term(b.ite(cond, inner, b.succ(inner)))
        # Paths are counted per route: 2 branches x 2 inner leaves.
        assert leaf_count(term) == 4

    def test_enumerate_leaves_guards(self):
        term, (c1, c2), (x, y, z) = self.build()
        leaves = enumerate_leaves(term)
        assert len(leaves) == 3
        by_leaf = {g: c for c, g in leaves}
        assert by_leaf[b.succ(x)] is b.band(c1, c2)
        assert by_leaf[b.succ(z)] is b.bnot(c1)

    def test_enumerate_leaves_semantics(self):
        term, _, _ = self.build()
        leaves = enumerate_leaves(term)
        env = Interpretation(vars={"x": 1, "y": 1, "z": 5})
        fired = [
            g for c, g in leaves if evaluate(c, env)
        ]
        assert len(fired) == 1
        assert evaluate_term(fired[0], env) == evaluate_term(term, env)

    def test_enumerate_leaf_paths_matches_leaves(self):
        term, _, _ = self.build()
        leaves = enumerate_leaves(term)
        paths = enumerate_leaf_paths(term)
        assert len(leaves) == len(paths)
        for (cond, g1), (path, g2) in zip(leaves, paths):
            assert g1 is g2
            rebuilt = b.band(
                *[c if pol else b.bnot(c) for c, pol in path]
            )
            assert rebuilt is cond

    def test_ground_leaf(self):
        x = b.const("x")
        assert enumerate_leaves(x) == [(b.true(), x)]
        assert leaf_count(x) == 1
