"""Unit tests for function/predicate elimination (Bryant's ITE scheme)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import builders as b
from repro.logic.semantics import Interpretation, evaluate
from repro.logic.terms import FuncApp, Ite, PredApp, Var
from repro.logic.traversal import collect_vars, iter_dag
from repro.solvers.brute import brute_force_valid_sep, sep_domain_bound
from repro.transform.func_elim import eliminate_applications

from helpers import random_suf_formula


def has_applications(formula):
    return any(
        isinstance(n, (FuncApp, PredApp)) for n in iter_dag(formula)
    )


class TestBasicElimination:
    def test_single_occurrence_becomes_constant(self):
        x = b.const("x")
        f = b.func("f")
        formula = b.eq(f(x), x)
        result, info = eliminate_applications(formula)
        assert not has_applications(result)
        assert len(info.func_consts["f"]) == 1
        args, var = info.func_consts["f"][0]
        assert args == (x,)
        assert isinstance(var, Var)

    def test_two_occurrences_build_ite_chain(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.eq(f(x), f(y))
        result, info = eliminate_applications(formula)
        assert not has_applications(result)
        assert len(info.func_consts["f"]) == 2
        # The second occurrence is ITE(y = x, vf1, vf2).
        ites = [n for n in iter_dag(result) if isinstance(n, Ite)]
        assert len(ites) == 1

    def test_same_argument_shares_constant(self):
        x = b.const("x")
        f = b.func("f")
        # f(x) occurs twice syntactically but is one DAG node.
        formula = b.band(b.eq(f(x), x), b.lt(f(x), b.succ(x)))
        result, info = eliminate_applications(formula)
        assert len(info.func_consts["f"]) == 1

    def test_multi_arity(self):
        x, y = b.const("x"), b.const("y")
        g = b.func("g")
        formula = b.eq(g(x, y), g(y, x))
        result, info = eliminate_applications(formula)
        assert not has_applications(result)
        assert len(info.func_consts["g"]) == 2

    def test_nested_applications(self):
        x = b.const("x")
        f = b.func("f")
        formula = b.eq(f(f(x)), x)
        result, info = eliminate_applications(formula)
        assert not has_applications(result)
        assert len(info.func_consts["f"]) == 2

    def test_predicate_elimination(self):
        x, y = b.const("x"), b.const("y")
        p = b.pred_symbol("p")
        formula = b.iff(p(x), p(y))
        result, info = eliminate_applications(formula)
        assert not has_applications(result)
        assert len(info.pred_consts["p"]) == 2

    def test_no_applications_is_identity(self):
        x, y = b.const("x"), b.const("y")
        formula = b.implies(b.eq(x, y), b.le(x, y))
        result, info = eliminate_applications(formula)
        assert result is formula
        assert not info.func_consts and not info.pred_consts


class TestValidityPreservation:
    """F_suf is valid iff F_sep is valid (Bryant et al.).

    Direct check on small vocabularies: enumerate SUF interpretations over
    a domain sized by the eliminated formula's small-model bound, and
    compare with the separation-level brute-force verdict.
    """

    def _suf_valid_by_enumeration(self, formula, domain, span):
        from repro.logic.traversal import (
            collect_bool_vars,
            collect_func_symbols,
            collect_pred_symbols,
        )

        int_vars = collect_vars(formula)
        bool_vars = collect_bool_vars(formula)
        fsyms = collect_func_symbols(formula)
        psyms = collect_pred_symbols(formula)
        # Only unary symbols with tiny domains are feasible.  Function
        # arguments can be shifted by offsets, so table points must cover
        # the widened window.
        values = range(domain)
        table_points = list(range(-span, domain + span))
        # Materializing a table list for an absent symbol kind would build
        # domain**points tuples for nothing (product(tables, repeat=0)
        # never reads them) — and for domain 8, 18 points that is 8**18.
        func_tables = (
            list(itertools.product(values, repeat=len(table_points)))
            if fsyms
            else []
        )
        pred_tables = (
            list(itertools.product((False, True), repeat=len(table_points)))
            if psyms
            else []
        )

        for ints in itertools.product(values, repeat=len(int_vars)):
            for bools in itertools.product(
                (False, True), repeat=len(bool_vars)
            ):
                for ftabs in itertools.product(
                    func_tables, repeat=len(fsyms)
                ):
                    for ptabs in itertools.product(
                        pred_tables, repeat=len(psyms)
                    ):
                        env = Interpretation(
                            vars={
                                v.name: val
                                for v, val in zip(int_vars, ints)
                            },
                            bools={
                                v.name: val
                                for v, val in zip(bool_vars, bools)
                            },
                            funcs={
                                s: {
                                    (p,): out
                                    for p, out in zip(table_points, tab)
                                }
                                for s, tab in zip(fsyms, ftabs)
                            },
                            preds={
                                s: {
                                    (p,): out
                                    for p, out in zip(table_points, tab)
                                }
                                for s, tab in zip(psyms, ptabs)
                            },
                        )
                        if not evaluate(formula, env):
                            return False
        return True

    #: Direct SUF enumeration budget.  One interpretation costs ~10µs, so
    #: the worst case (a *valid* formula, which cannot exit early on a
    #: countermodel) stays around three seconds.
    ENUMERATION_BUDGET = 300_000

    @pytest.mark.parametrize("seed", range(60))
    def test_validity_agrees_with_direct_suf_enumeration(self, seed):
        from repro.logic.terms import Offset
        from repro.logic.traversal import (
            collect_bool_vars,
            collect_func_symbols,
            collect_pred_symbols,
            iter_dag as _iter,
        )

        formula = random_suf_formula(
            seed + 9000, max_vars=2, max_funcs=1, max_bools=0, depth=2
        )
        f_sep, _ = eliminate_applications(formula)
        domain = sep_domain_bound(f_sep)
        # Upper bound on cumulative argument shifts in the original DAG.
        span = sum(
            abs(n.k) for n in _iter(formula) if isinstance(n, Offset)
        )
        # The enumeration in _suf_valid_by_enumeration walks
        # domain^|vars| * 2^|bools| value tuples, each crossed with one
        # function table per symbol (domain^points entries) and one
        # predicate table per symbol (2^points entries).
        points = domain + 2 * span
        cost = (
            domain ** len(collect_vars(formula))
            * 2 ** len(collect_bool_vars(formula))
            * (domain ** points) ** len(collect_func_symbols(formula))
            * (2 ** points) ** len(collect_pred_symbols(formula))
        )
        if cost > self.ENUMERATION_BUDGET:
            pytest.skip(
                "seed %d needs %d SUF interpretations (domain=%d, %d "
                "table points per function symbol), over the %d budget; "
                "covered indirectly by the sep-level brute oracle and "
                "`repro fuzz`"
                % (seed, cost, domain, points, self.ENUMERATION_BUDGET)
            )
        via_elimination = brute_force_valid_sep(f_sep)
        direct = self._suf_valid_by_enumeration(formula, domain, span)
        # Direct enumeration is over a *restricted* domain: if it finds a
        # countermodel the formula is definitely invalid; if elimination
        # says invalid, the small-model property says the restricted
        # domain must also exhibit a countermodel.
        assert via_elimination == direct
