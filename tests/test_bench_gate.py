"""The CI perf gate must itself be trustworthy (tools/bench_gate.py)."""

import importlib.util
import json
import os

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    os.path.join(
        os.path.dirname(os.path.dirname(__file__)),
        "tools",
        "bench_gate.py",
    ),
)
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)

REPO_ROOT = os.path.dirname(os.path.dirname(__file__))


def _section(speedup, statuses=None, verdicts_match=True):
    statuses = statuses or {"r3_a": "UNSAT", "php_b": "UNSAT"}
    instances = {
        name: {
            "family": "large",
            "status_arena": status,
            "status_legacy": status,
            "verdicts_match": True,
            "seconds_arena": 1.0,
            "seconds_legacy": speedup,
            "speedup": speedup,
        }
        for name, status in statuses.items()
    }
    return {
        "families": ["large"],
        "instances": instances,
        "verdicts_match": verdicts_match,
        "aggregate": {
            "seconds_arena": float(len(instances)),
            "seconds_legacy": speedup * len(instances),
            "speedup": speedup,
        },
    }


class TestCheck:
    def test_identical_run_passes(self):
        base = _section(2.5)
        assert bench_gate.check(base, base, 0.25) == []

    def test_small_regression_tolerated(self):
        failures = bench_gate.check(_section(2.0), _section(2.5), 0.25)
        assert failures == []  # 2.0 >= 2.5 * 0.75

    def test_large_regression_fails(self):
        failures = bench_gate.check(_section(1.5), _section(2.5), 0.25)
        assert any("regressed" in f for f in failures)

    def test_speedup_improvement_passes(self):
        assert bench_gate.check(_section(4.0), _section(2.5), 0.25) == []

    def test_verdict_mismatch_fails(self):
        current = _section(2.5, verdicts_match=False)
        failures = bench_gate.check(current, _section(2.5), 0.25)
        assert any("disagreed" in f for f in failures)

    def test_status_change_vs_baseline_fails(self):
        current = _section(2.5, statuses={"r3_a": "SAT", "php_b": "UNSAT"})
        failures = bench_gate.check(current, _section(2.5), 0.25)
        assert any("verdict changed" in f for f in failures)

    def test_missing_instance_fails(self):
        current = _section(2.5, statuses={"r3_a": "UNSAT"})
        failures = bench_gate.check(current, _section(2.5), 0.25)
        assert any("missing" in f for f in failures)

    def test_extra_current_instance_is_fine(self):
        current = _section(
            2.5,
            statuses={"r3_a": "UNSAT", "php_b": "UNSAT", "new": "SAT"},
        )
        assert bench_gate.check(current, _section(2.5), 0.25) == []


def _cube_section(
    speedup,
    statuses=None,
    verdicts_match=True,
    imported=100,
    ablation_ok=True,
):
    statuses = statuses or {"php_a": "UNSAT", "r3_b": "UNSAT"}
    instances = {
        name: {
            "family": "hard",
            "status_sequential": status,
            "status_cube": status,
            "verdicts_match": True,
            "seconds_sequential": speedup,
            "seconds_cube": 1.0,
            "speedup": speedup,
            "imported_clauses": imported,
        }
        for name, status in statuses.items()
    }
    return {
        "families": ["hard"],
        "instances": instances,
        "verdicts_match": verdicts_match,
        "procs": 4,
        "aggregate": {
            "seconds_sequential": speedup * len(instances),
            "seconds_cube": float(len(instances)),
            "speedup": speedup,
            "imported_clauses": imported * len(instances),
        },
        "share_ablation": {
            "instances": {},
            "seconds_share": 1.0,
            "seconds_noshare": 2.0 if ablation_ok else 0.5,
            "no_share_no_faster": ablation_ok,
        },
    }


class TestCheckCube:
    def test_identical_run_passes(self):
        base = _cube_section(2.0)
        failures, warnings = bench_gate.check_cube(base, base, 0.25)
        assert failures == []
        assert warnings == []

    def test_missing_baseline_section_warns_not_fails(self):
        failures, warnings = bench_gate.check_cube(
            _cube_section(2.0), None, 0.25
        )
        assert failures == []
        assert any("baseline has no" in w for w in warnings)

    def test_verdict_mismatch_fails_even_without_baseline(self):
        current = _cube_section(2.0, verdicts_match=False)
        failures, _ = bench_gate.check_cube(current, None, 0.25)
        assert any("disagreed" in f for f in failures)

    def test_dead_sharing_fails(self):
        current = _cube_section(2.0, imported=0)
        failures, _ = bench_gate.check_cube(
            current, _cube_section(2.0), 0.25
        )
        assert any("sharing is dead" in f for f in failures)

    def test_sat_only_run_does_not_require_imports(self):
        current = _cube_section(
            2.0, statuses={"r3_s": "SAT"}, imported=0
        )
        base = _cube_section(2.0, statuses={"r3_s": "SAT"}, imported=0)
        failures, _ = bench_gate.check_cube(current, base, 0.25)
        assert failures == []

    def test_regression_vs_baseline_fails(self):
        failures, _ = bench_gate.check_cube(
            _cube_section(1.0), _cube_section(2.5), 0.25
        )
        assert any("regressed" in f for f in failures)

    def test_status_change_vs_baseline_fails(self):
        current = _cube_section(
            2.0, statuses={"php_a": "SAT", "r3_b": "UNSAT"}
        )
        failures, _ = bench_gate.check_cube(
            current, _cube_section(2.0), 0.25
        )
        assert any("verdict changed" in f for f in failures)

    def test_ablation_violation_warns_not_fails(self):
        current = _cube_section(2.0, ablation_ok=False)
        failures, warnings = bench_gate.check_cube(
            current, _cube_section(2.0), 0.25
        )
        assert failures == []
        assert any("ablation" in w for w in warnings)


class TestMain:
    def _write(self, tmp_path, name, section, cube=None):
        path = tmp_path / name
        report = {"meta": {}, "sat_core": section}
        if cube is not None:
            report["cube_vs_sequential"] = cube
        path.write_text(json.dumps(report) + "\n")
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path):
        report = self._write(tmp_path, "report.json", _section(2.5))
        baseline = self._write(tmp_path, "baseline.json", _section(2.5))
        code = bench_gate.main(
            ["--report", report, "--baseline", baseline]
        )
        assert code == 0

    def test_exit_one_on_regression(self, tmp_path):
        report = self._write(tmp_path, "report.json", _section(1.0))
        baseline = self._write(tmp_path, "baseline.json", _section(3.0))
        code = bench_gate.main(
            ["--report", report, "--baseline", baseline]
        )
        assert code == 1

    def test_exit_one_on_missing_file(self, tmp_path):
        baseline = self._write(tmp_path, "baseline.json", _section(2.0))
        code = bench_gate.main(
            ["--report", str(tmp_path / "absent.json"),
             "--baseline", baseline]
        )
        assert code == 1

    def test_exit_one_on_report_without_section(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}\n")
        code = bench_gate.main(
            ["--report", str(path), "--baseline", str(path)]
        )
        assert code == 1

    def test_cube_report_gated(self, tmp_path):
        report = self._write(
            tmp_path, "report.json", _section(2.5), cube=_cube_section(2.0)
        )
        baseline = self._write(
            tmp_path,
            "baseline.json",
            _section(2.5),
            cube=_cube_section(2.0),
        )
        code = bench_gate.main(
            ["--report", report, "--baseline", baseline,
             "--cube-report", report]
        )
        assert code == 0

    def test_cube_section_absent_from_baseline_tolerated(self, tmp_path):
        # The tolerance path: current run has the new section, the
        # committed baseline predates it — warn and pass.
        report = self._write(
            tmp_path, "report.json", _section(2.5), cube=_cube_section(2.0)
        )
        baseline = self._write(tmp_path, "baseline.json", _section(2.5))
        code = bench_gate.main(
            ["--report", report, "--baseline", baseline,
             "--cube-report", report]
        )
        assert code == 0

    def test_cube_report_without_section_fails(self, tmp_path):
        report = self._write(tmp_path, "report.json", _section(2.5))
        baseline = self._write(tmp_path, "baseline.json", _section(2.5))
        code = bench_gate.main(
            ["--report", report, "--baseline", baseline,
             "--cube-report", report]
        )
        assert code == 1

    def test_cube_regression_fails(self, tmp_path):
        report = self._write(
            tmp_path, "report.json", _section(2.5), cube=_cube_section(1.0)
        )
        baseline = self._write(
            tmp_path,
            "baseline.json",
            _section(2.5),
            cube=_cube_section(3.0),
        )
        code = bench_gate.main(
            ["--report", report, "--baseline", baseline,
             "--cube-report", report]
        )
        assert code == 1


class TestCommittedBaseline:
    def test_baseline_is_committed_and_well_formed(self):
        path = os.path.join(REPO_ROOT, "benchmarks", "baseline.json")
        section = bench_gate.load_sat_core(path)
        assert section["verdicts_match"] is True
        assert section["aggregate"]["speedup"] >= 2.0
        assert section["instances"]
        for row in section["instances"].values():
            assert row["status_arena"] == row["status_legacy"]

    def test_cube_baseline_is_committed_and_well_formed(self):
        path = os.path.join(REPO_ROOT, "benchmarks", "baseline.json")
        section = bench_gate.load_section(path, "cube_vs_sequential")
        assert section is not None
        assert section["verdicts_match"] is True
        # The PR's acceptance bar: >= 1.5x aggregate with 4 workers and
        # a live clause-sharing conduit.
        assert section["procs"] >= 4
        assert section["aggregate"]["speedup"] >= 1.5
        assert section["aggregate"]["imported_clauses"] > 0
        assert section["share_ablation"]["no_share_no_faster"] is True
        for row in section["instances"].values():
            assert row["status_cube"] == row["status_sequential"]


def _compete_report(mismatches=0, solved=34, par2=0.5, methods=("hybrid",)):
    return {
        "meta": {"instance_count": 34},
        "methods": {
            m: {"score": {"instances": 34, "solved": solved, "par2": par2}}
            for m in methods
        },
        "mismatches_total": mismatches,
    }


def _compete_baseline(solved=34, par2=0.5, methods=("hybrid",)):
    return {
        "instance_count": 34,
        "methods": {
            m: {"instances": 34, "solved": solved, "par2": par2}
            for m in methods
        },
    }


class TestCheckCompete:
    def test_clean_report_passes(self):
        failures, warnings = bench_gate.check_compete(
            _compete_report(), _compete_baseline()
        )
        assert failures == []
        assert warnings == []

    def test_mismatch_fails_hard(self):
        failures, _ = bench_gate.check_compete(
            _compete_report(mismatches=2), _compete_baseline()
        )
        assert any(":status" in f for f in failures)

    def test_mismatch_fails_even_without_baseline(self):
        failures, warnings = bench_gate.check_compete(
            _compete_report(mismatches=1), None
        )
        assert failures
        assert any("no compete section" in w for w in warnings)

    def test_solved_drop_warns_not_fails(self):
        failures, warnings = bench_gate.check_compete(
            _compete_report(solved=30), _compete_baseline(solved=34)
        )
        assert failures == []
        assert any("solved count dropped" in w for w in warnings)

    def test_par2_jump_warns_not_fails(self):
        failures, warnings = bench_gate.check_compete(
            _compete_report(par2=20.0), _compete_baseline(par2=0.5)
        )
        assert failures == []
        assert any("PAR-2 worsened" in w for w in warnings)

    def test_subsecond_par2_jitter_tolerated(self):
        # 3x the baseline ratio, but under the 2-second absolute slack:
        # machine jitter on a tiny corpus, not a regression.
        failures, warnings = bench_gate.check_compete(
            _compete_report(par2=0.3), _compete_baseline(par2=0.1)
        )
        assert failures == []
        assert not any("PAR-2" in w for w in warnings)

    def test_missing_method_warns(self):
        failures, warnings = bench_gate.check_compete(
            _compete_report(methods=("hybrid",)),
            _compete_baseline(methods=("hybrid", "portfolio")),
        )
        assert failures == []
        assert any("portfolio" in w for w in warnings)

    def test_committed_report_passes_committed_baseline(self):
        report_path = os.path.join(REPO_ROOT, "BENCH_PR9.json")
        baseline_path = os.path.join(
            REPO_ROOT, "benchmarks", "baseline.json"
        )
        with open(report_path) as fp:
            report = json.load(fp)
        with open(baseline_path) as fp:
            baseline = json.load(fp).get("compete")
        failures, _ = bench_gate.check_compete(report, baseline)
        assert failures == []
