"""The CI perf gate must itself be trustworthy (tools/bench_gate.py)."""

import importlib.util
import json
import os

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    os.path.join(
        os.path.dirname(os.path.dirname(__file__)),
        "tools",
        "bench_gate.py",
    ),
)
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)

REPO_ROOT = os.path.dirname(os.path.dirname(__file__))


def _section(speedup, statuses=None, verdicts_match=True):
    statuses = statuses or {"r3_a": "UNSAT", "php_b": "UNSAT"}
    instances = {
        name: {
            "family": "large",
            "status_arena": status,
            "status_legacy": status,
            "verdicts_match": True,
            "seconds_arena": 1.0,
            "seconds_legacy": speedup,
            "speedup": speedup,
        }
        for name, status in statuses.items()
    }
    return {
        "families": ["large"],
        "instances": instances,
        "verdicts_match": verdicts_match,
        "aggregate": {
            "seconds_arena": float(len(instances)),
            "seconds_legacy": speedup * len(instances),
            "speedup": speedup,
        },
    }


class TestCheck:
    def test_identical_run_passes(self):
        base = _section(2.5)
        assert bench_gate.check(base, base, 0.25) == []

    def test_small_regression_tolerated(self):
        failures = bench_gate.check(_section(2.0), _section(2.5), 0.25)
        assert failures == []  # 2.0 >= 2.5 * 0.75

    def test_large_regression_fails(self):
        failures = bench_gate.check(_section(1.5), _section(2.5), 0.25)
        assert any("regressed" in f for f in failures)

    def test_speedup_improvement_passes(self):
        assert bench_gate.check(_section(4.0), _section(2.5), 0.25) == []

    def test_verdict_mismatch_fails(self):
        current = _section(2.5, verdicts_match=False)
        failures = bench_gate.check(current, _section(2.5), 0.25)
        assert any("disagreed" in f for f in failures)

    def test_status_change_vs_baseline_fails(self):
        current = _section(2.5, statuses={"r3_a": "SAT", "php_b": "UNSAT"})
        failures = bench_gate.check(current, _section(2.5), 0.25)
        assert any("verdict changed" in f for f in failures)

    def test_missing_instance_fails(self):
        current = _section(2.5, statuses={"r3_a": "UNSAT"})
        failures = bench_gate.check(current, _section(2.5), 0.25)
        assert any("missing" in f for f in failures)

    def test_extra_current_instance_is_fine(self):
        current = _section(
            2.5,
            statuses={"r3_a": "UNSAT", "php_b": "UNSAT", "new": "SAT"},
        )
        assert bench_gate.check(current, _section(2.5), 0.25) == []


class TestMain:
    def _write(self, tmp_path, name, section):
        path = tmp_path / name
        path.write_text(
            json.dumps({"meta": {}, "sat_core": section}) + "\n"
        )
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path):
        report = self._write(tmp_path, "report.json", _section(2.5))
        baseline = self._write(tmp_path, "baseline.json", _section(2.5))
        code = bench_gate.main(
            ["--report", report, "--baseline", baseline]
        )
        assert code == 0

    def test_exit_one_on_regression(self, tmp_path):
        report = self._write(tmp_path, "report.json", _section(1.0))
        baseline = self._write(tmp_path, "baseline.json", _section(3.0))
        code = bench_gate.main(
            ["--report", report, "--baseline", baseline]
        )
        assert code == 1

    def test_exit_one_on_missing_file(self, tmp_path):
        baseline = self._write(tmp_path, "baseline.json", _section(2.0))
        code = bench_gate.main(
            ["--report", str(tmp_path / "absent.json"),
             "--baseline", baseline]
        )
        assert code == 1

    def test_exit_one_on_report_without_section(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}\n")
        code = bench_gate.main(
            ["--report", str(path), "--baseline", str(path)]
        )
        assert code == 1


class TestCommittedBaseline:
    def test_baseline_is_committed_and_well_formed(self):
        path = os.path.join(REPO_ROOT, "benchmarks", "baseline.json")
        section = bench_gate.load_sat_core(path)
        assert section["verdicts_match"] is True
        assert section["aggregate"]["speedup"] >= 2.0
        assert section["instances"]
        for row in section["instances"].values():
            assert row["status_arena"] == row["status_legacy"]
