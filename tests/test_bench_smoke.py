"""The bench-smoke generated-family sections (engine/bench_smoke.py)."""

import json

import pytest

from repro.engine.bench_smoke import (
    PREFIX_FAMILY_STEPS,
    SAT_CORE_FAMILIES,
    _run_incremental_comparison,
    pigeonhole_cnf,
    prefix_sharing_family,
    random_3cnf,
    run_bench_smoke,
    run_sat_core_comparison,
    sat_core_instance,
    write_incremental_report,
    write_sat_core_report,
)
from repro.engine.session import Session
from repro.logic.terms import Lt


class TestPrefixSharingFamily:
    def test_default_length_and_shape(self):
        family = prefix_sharing_family()
        assert len(family) == PREFIX_FAMILY_STEPS
        # The closing step is the bare back-edge of the negative cycle.
        assert isinstance(family[-1], Lt)

    def test_deterministic(self):
        assert prefix_sharing_family(9) == prefix_sharing_family(9)

    def test_rejects_degenerate_lengths(self):
        with pytest.raises(ValueError):
            prefix_sharing_family(1)

    def test_every_proper_prefix_sat_full_family_unsat(self):
        family = prefix_sharing_family(6)
        for end in range(1, len(family) + 1):
            session = Session(engine="hybrid", cache=None)
            try:
                for formula in family[:end]:
                    session.assert_formula(formula)
                result = session.check_sat()
            finally:
                session.close()
            expected = "unsat" if end == len(family) else "sat"
            assert result.status == expected, "prefix of %d" % end


class TestIncrementalComparison:
    def test_verdicts_agree_and_core_spans_chain(self):
        report = _run_incremental_comparison(5.0, steps=8)
        assert report["verdicts_match"]
        assert report["expected_statuses_ok"]
        assert report["final_status"] == "unsat"
        # Every link participates in the closing negative cycle.
        assert report["final_core_size"] == 8
        assert len(report["rows"]) == 8
        statuses = [r["status_incremental"] for r in report["rows"]]
        assert statuses == ["sat"] * 7 + ["unsat"]

    def test_row_timings_are_recorded(self):
        report = _run_incremental_comparison(5.0, steps=4)
        for row in report["rows"]:
            assert row["wall_seconds_incremental"] >= 0.0
            assert row["wall_seconds_scratch"] >= 0.0
        assert report["wall_seconds_incremental"] > 0.0
        assert report["wall_seconds_scratch"] > 0.0
        assert report["speedup"] is not None


class TestSatCoreGenerators:
    def test_random_3cnf_deterministic_and_shaped(self):
        a = random_3cnf(7, 30, 90)
        b = random_3cnf(7, 30, 90)
        assert a.clauses == b.clauses
        assert a.num_vars == 30
        assert len(a.clauses) == 90
        for clause in a.clauses:
            assert len(clause) == 3
            assert len({abs(lit) for lit in clause}) == 3

    def test_pigeonhole_shape(self):
        cnf = pigeonhole_cnf(4, 3)
        assert cnf.num_vars == 12
        # 4 at-least-one clauses + 3 * C(4,2) at-most-one binaries.
        assert len(cnf.clauses) == 4 + 3 * 6

    def test_instance_lookup(self):
        cnf = sat_core_instance("php_6_5")
        assert cnf.num_vars == 30
        with pytest.raises(ValueError):
            sat_core_instance("no_such_instance")

    def test_family_members_resolve(self):
        for members in SAT_CORE_FAMILIES.values():
            for name, _kind, _params in members:
                assert sat_core_instance(name).num_vars > 0


class TestSatCoreComparison:
    def test_small_family_agrees_and_reports_timings(self):
        section = run_sat_core_comparison(["small"])
        assert section["verdicts_match"] is True
        assert section["families"] == ["small"]
        names = {n for n, _k, _p in SAT_CORE_FAMILIES["small"]}
        assert set(section["instances"]) == names
        for row in section["instances"].values():
            assert row["status_arena"] == row["status_legacy"]
            assert row["status_arena"] in ("SAT", "UNSAT")
            assert row["seconds_arena"] > 0.0
            assert row["seconds_legacy"] > 0.0
            assert row["speedup"] is not None
            assert row["conflicts_arena"] >= 0
        agg = section["aggregate"]
        assert agg["seconds_arena"] > 0.0
        assert agg["speedup"] is not None

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            run_sat_core_comparison(["huge"])

    def test_write_sat_core_report(self, tmp_path):
        report = {
            "meta": {
                "python": "3.9.0",
                "sat_core_verdicts_match": True,
            },
            "sat_core": {
                "families": ["small"],
                "instances": {},
                "aggregate": {"speedup": 2.0},
            },
        }
        path = tmp_path / "BENCH_PR7.json"
        write_sat_core_report(report, str(path))
        sub = json.loads(path.read_text())
        assert sub["sat_core"]["aggregate"]["speedup"] == 2.0
        assert sub["meta"]["sat_core_verdicts_match"] is True
        assert "engines" not in sub


class TestReportWiring:
    def test_run_bench_smoke_includes_incremental_section(self):
        report = run_bench_smoke(
            engines=["hybrid"],
            benchmarks=["pipeline_s2_r2_1"],
            incremental_steps=4,
        )
        assert report["meta"]["incremental_verdicts_match"] is True
        assert report["incremental"]["steps"] == 4
        assert report["meta"]["sat_core_verdicts_match"] is True
        assert report["sat_core"]["families"] == ["small"]

    def test_write_incremental_report(self, tmp_path):
        report = {
            "meta": {
                "python": "3.9.0",
                "timeout_seconds": 5.0,
                "incremental_verdicts_match": True,
            },
            "incremental": {"steps": 4, "speedup": 2.5},
        }
        path = tmp_path / "BENCH_PR6.json"
        write_incremental_report(report, str(path))
        sub = json.loads(path.read_text())
        assert sub["incremental"]["speedup"] == 2.5
        assert sub["meta"]["incremental_verdicts_match"] is True
        assert "engines" not in sub
