"""The bench-smoke incremental-vs-scratch section (engine/bench_smoke.py)."""

import json

from repro.engine.bench_smoke import (
    PREFIX_FAMILY_STEPS,
    _run_incremental_comparison,
    prefix_sharing_family,
    run_bench_smoke,
    write_incremental_report,
)
from repro.engine.session import Session
from repro.logic.terms import Lt


class TestPrefixSharingFamily:
    def test_default_length_and_shape(self):
        family = prefix_sharing_family()
        assert len(family) == PREFIX_FAMILY_STEPS
        # The closing step is the bare back-edge of the negative cycle.
        assert isinstance(family[-1], Lt)

    def test_deterministic(self):
        assert prefix_sharing_family(9) == prefix_sharing_family(9)

    def test_rejects_degenerate_lengths(self):
        import pytest

        with pytest.raises(ValueError):
            prefix_sharing_family(1)

    def test_every_proper_prefix_sat_full_family_unsat(self):
        family = prefix_sharing_family(6)
        for end in range(1, len(family) + 1):
            session = Session(engine="hybrid", cache=None)
            try:
                for formula in family[:end]:
                    session.assert_formula(formula)
                result = session.check_sat()
            finally:
                session.close()
            expected = "unsat" if end == len(family) else "sat"
            assert result.status == expected, "prefix of %d" % end


class TestIncrementalComparison:
    def test_verdicts_agree_and_core_spans_chain(self):
        report = _run_incremental_comparison(5.0, steps=8)
        assert report["verdicts_match"]
        assert report["expected_statuses_ok"]
        assert report["final_status"] == "unsat"
        # Every link participates in the closing negative cycle.
        assert report["final_core_size"] == 8
        assert len(report["rows"]) == 8
        statuses = [r["status_incremental"] for r in report["rows"]]
        assert statuses == ["sat"] * 7 + ["unsat"]

    def test_row_timings_are_recorded(self):
        report = _run_incremental_comparison(5.0, steps=4)
        for row in report["rows"]:
            assert row["wall_seconds_incremental"] >= 0.0
            assert row["wall_seconds_scratch"] >= 0.0
        assert report["wall_seconds_incremental"] > 0.0
        assert report["wall_seconds_scratch"] > 0.0
        assert report["speedup"] is not None


class TestReportWiring:
    def test_run_bench_smoke_includes_incremental_section(self):
        report = run_bench_smoke(
            engines=["hybrid"],
            benchmarks=["pipeline_s2_r2_1"],
            incremental_steps=4,
        )
        assert report["meta"]["incremental_verdicts_match"] is True
        assert report["incremental"]["steps"] == 4

    def test_write_incremental_report(self, tmp_path):
        report = {
            "meta": {
                "python": "3.9.0",
                "timeout_seconds": 5.0,
                "incremental_verdicts_match": True,
            },
            "incremental": {"steps": 4, "speedup": 2.5},
        }
        path = tmp_path / "BENCH_PR6.json"
        write_incremental_report(report, str(path))
        sub = json.loads(path.read_text())
        assert sub["incremental"]["speedup"] == 2.5
        assert sub["meta"]["incremental_verdicts_match"] is True
        assert "engines" not in sub
