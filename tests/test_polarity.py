"""Unit tests for positive-equality polarity analysis."""

from repro.logic import builders as b
from repro.logic.terms import Eq
from repro.transform.polarity import NEG, POS, analyze_polarity


def names(vars_):
    return {v.name for v in vars_}


class TestPolarityPropagation:
    def test_root_is_positive(self):
        x, y = b.const("x"), b.const("y")
        info = analyze_polarity(b.eq(x, y))
        assert names(info.p_vars) == {"x", "y"}
        assert not info.g_vars

    def test_negation_flips(self):
        x, y = b.const("x"), b.const("y")
        info = analyze_polarity(b.bnot(b.eq(x, y)))
        assert names(info.g_vars) == {"x", "y"}
        assert not info.p_vars

    def test_implication_antecedent_flips(self):
        x, y, u, v = (b.const(n) for n in "xyuv")
        info = analyze_polarity(b.implies(b.eq(x, y), b.eq(u, v)))
        assert names(info.g_vars) == {"x", "y"}
        assert names(info.p_vars) == {"u", "v"}

    def test_iff_makes_both(self):
        x, y, u, v = (b.const(n) for n in "xyuv")
        info = analyze_polarity(b.iff(b.eq(x, y), b.eq(u, v)))
        assert names(info.g_vars) == {"x", "y", "u", "v"}

    def test_double_negation(self):
        x, y = b.const("x"), b.const("y")
        info = analyze_polarity(b.bnot(b.bnot(b.eq(x, y))))
        # Not(Not(e)) simplifies to e at construction: positive.
        assert names(info.p_vars) == {"x", "y"}

    def test_and_or_preserve(self):
        x, y, u, v = (b.const(n) for n in "xyuv")
        info = analyze_polarity(
            b.bnot(b.bor(b.eq(x, y), b.band(b.eq(u, v), b.bconst("B"))))
        )
        assert names(info.g_vars) == {"x", "y", "u", "v"}


class TestInequalitiesMakeGeneral:
    def test_lt_vars_are_general(self):
        x, y = b.const("x"), b.const("y")
        info = analyze_polarity(b.lt(x, y))
        assert names(info.g_vars) == {"x", "y"}

    def test_positive_and_negative_occurrences(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        # x = y positive, but x < z makes x general; y stays p.
        info = analyze_polarity(b.band(b.eq(x, y), b.lt(x, z)))
        assert "x" in names(info.g_vars)
        assert "z" in names(info.g_vars)
        assert "y" in names(info.p_vars)


class TestIteConditions:
    def test_condition_atoms_are_bipolar(self):
        x, y, u, v = (b.const(n) for n in "xyuv")
        term = b.ite(b.eq(x, y), u, v)
        info = analyze_polarity(b.eq(term, u))
        # x, y occur in the ITE condition: bipolar, hence general.
        assert {"x", "y"} <= names(info.g_vars)
        # u, v occur only in the positive top-level equation.
        assert {"u", "v"} <= names(info.p_vars)

    def test_condition_polarity_recorded(self):
        x, y, u, v = (b.const(n) for n in "xyuv")
        cond = b.eq(x, y)
        formula = b.eq(b.ite(cond, u, v), u)
        info = analyze_polarity(formula)
        assert info.formula_polarity[cond] == frozenset({POS, NEG})
        assert cond not in info.positive_equations

    def test_positive_equations_set(self):
        x, y, u, v = (b.const(n) for n in "xyuv")
        pos = b.eq(u, v)
        neg = b.eq(x, y)
        info = analyze_polarity(b.implies(neg, pos))
        assert pos in info.positive_equations
        assert neg not in info.positive_equations


class TestEliminatedFormulas:
    def test_fresh_constants_classified(self):
        from repro.transform.func_elim import eliminate_applications

        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        # Classic positive-equality shape: hypothesis x = y is negative,
        # conclusion f(x) = f(y) is positive, so the vf constants are p.
        formula = b.implies(b.eq(x, y), b.eq(f(x), f(y)))
        f_sep, info = eliminate_applications(formula)
        polarity = analyze_polarity(f_sep)
        fresh = {v.name for v in info.fresh_func_vars()}
        assert fresh <= names(polarity.p_vars)
        assert {"x", "y"} <= names(polarity.g_vars)

    def test_applications_rejected(self):
        import pytest

        x = b.const("x")
        f = b.func("f")
        with pytest.raises(TypeError):
            analyze_polarity(b.eq(f(x), x))
