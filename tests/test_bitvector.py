"""Bit-vector gadget tests, including hypothesis properties vs Python ints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encodings.bitvector import (
    bv_add_const,
    bv_const,
    bv_eq,
    bv_mux,
    bv_ule,
    bv_ult,
    bv_value,
    bv_var,
    bv_zero_extend,
    width_for,
)
from repro.logic.semantics import Interpretation, evaluate
from repro.logic.terms import BoolVar, FALSE, TRUE


def eval_bits(bits, env):
    """Concrete integer value of a bit-vector under a bool environment."""
    value = 0
    for i, bit in enumerate(bits):
        if evaluate(bit, env):
            value |= 1 << i
    return value


def env_for(names_to_bool):
    return Interpretation(bools=dict(names_to_bool))


def var_env(prefix, value, width):
    return {
        "%s:%d" % (prefix, i): bool((value >> i) & 1) for i in range(width)
    }


class TestWidthFor:
    def test_values(self):
        assert width_for(0) == 1
        assert width_for(1) == 1
        assert width_for(2) == 2
        assert width_for(7) == 3
        assert width_for(8) == 4

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            width_for(-1)


class TestConstants:
    def test_bv_const_round_trip(self):
        for value in (0, 1, 5, 12, 255):
            width = width_for(value)
            bits = bv_const(value, width)
            assert eval_bits(bits, env_for({})) == value

    def test_bv_const_overflow_raises(self):
        with pytest.raises(ValueError):
            bv_const(8, 3)
        with pytest.raises(ValueError):
            bv_const(-1, 4)

    def test_zero_extend(self):
        bits = bv_zero_extend(bv_const(5, 3), 6)
        assert len(bits) == 6
        assert eval_bits(bits, env_for({})) == 5
        with pytest.raises(ValueError):
            bv_zero_extend(bv_const(5, 3), 2)


class TestAddConst:
    @settings(max_examples=120, deadline=None)
    @given(value=st.integers(0, 200), k=st.integers(0, 200))
    def test_add_matches_python(self, value, k):
        width = width_for(value + k)
        bits = bv_var("a", width)
        env = env_for(var_env("a", value, width))
        result = bv_add_const(bits, k)
        assert eval_bits(result, env) == value + k

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            bv_add_const(bv_var("a", 4), -1)

    def test_add_zero_is_identity_value(self):
        bits = bv_var("z", 4)
        env = env_for(var_env("z", 11, 4))
        assert eval_bits(bv_add_const(bits, 0), env) == 11


class TestComparators:
    @settings(max_examples=150, deadline=None)
    @given(a=st.integers(0, 63), c=st.integers(0, 63))
    def test_eq_ult_ule_match_python(self, a, c):
        width = 6
        abits = bv_var("x", width)
        cbits = bv_var("y", width)
        env = env_for({**var_env("x", a, width), **var_env("y", c, width)})
        assert evaluate(bv_eq(abits, cbits), env) == (a == c)
        assert evaluate(bv_ult(abits, cbits), env) == (a < c)
        assert evaluate(bv_ule(abits, cbits), env) == (a <= c)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            bv_eq(bv_var("a", 3), bv_var("b", 4))
        with pytest.raises(ValueError):
            bv_ult(bv_var("a", 3), bv_var("b", 4))


class TestMux:
    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(0, 31), c=st.integers(0, 31), sel=st.booleans()
    )
    def test_mux_selects(self, a, c, sel):
        width = 5
        abits = bv_var("m", width)
        cbits = bv_var("n", width)
        cond = BoolVar("sel")
        env = env_for(
            {
                **var_env("m", a, width),
                **var_env("n", c, width),
                "sel": sel,
            }
        )
        out = bv_mux(cond, abits, cbits)
        assert eval_bits(out, env) == (a if sel else c)

    def test_mux_width_mismatch(self):
        with pytest.raises(ValueError):
            bv_mux(TRUE, bv_var("a", 2), bv_var("b", 3))


class TestBvValue:
    def test_decodes_variables_and_constants(self):
        bits = [TRUE, BoolVar("bit1"), FALSE, BoolVar("bit3")]
        model = {BoolVar("bit1"): True, BoolVar("bit3"): False}
        assert bv_value(bits, model) == 0b0011

    def test_missing_variable_defaults_false(self):
        assert bv_value([BoolVar("missing")], {}) == 0

    def test_compound_bit_rejected(self):
        from repro.logic.terms import And

        with pytest.raises(ValueError):
            bv_value([And(BoolVar("a1"), BoolVar("a2"))], {})
