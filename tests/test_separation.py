"""Unit tests for class/domain/SepCnt analysis (paper §4 steps 1–4)."""

from repro.logic import builders as b
from repro.separation.analysis import analyze_separation
from repro.separation.unionfind import DisjointSet


def names(vars_):
    return {v.name for v in vars_}


class TestDisjointSet:
    def test_basic_union_find(self):
        ds = DisjointSet("abcdef")
        ds.union("a", "b")
        ds.union("c", "d")
        assert ds.find("a") == ds.find("b")
        assert ds.find("a") != ds.find("c")
        ds.union("b", "c")
        assert ds.find("a") == ds.find("d")

    def test_groups(self):
        ds = DisjointSet("abcd")
        ds.union("a", "b")
        groups = ds.groups()
        assert sorted(map(tuple, groups)) == [("a", "b"), ("c",), ("d",)]

    def test_union_all(self):
        ds = DisjointSet()
        ds.union_all("xyz")
        assert ds.find("x") == ds.find("z")
        ds.union_all([])  # no-op


class TestClassFormation:
    def test_separate_classes(self):
        x, y, u, v = (b.const(n) for n in "xyuv")
        # Two independent comparison islands -> two classes.
        formula = b.bnot(b.band(b.lt(x, y), b.lt(u, v)))
        analysis = analyze_separation(formula)
        assert len(analysis.classes) == 2
        groups = sorted(names(c.vars) for c in analysis.classes)
        assert groups == [{"u", "v"}, {"x", "y"}]

    def test_atom_merges_classes(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.band(b.lt(x, y), b.lt(y, z))
        analysis = analyze_separation(formula)
        assert len(analysis.classes) == 1
        assert names(analysis.classes[0].vars) == {"x", "y", "z"}

    def test_ite_branches_merge(self):
        x, y, z, w = (b.const(n) for n in "xyzw")
        # ITE(cond, x, y) < z puts x, y, z in one class even though x and
        # y are never compared directly.
        cond = b.lt(w, w)  # folds to false; use a boolean constant instead
        cond = b.bconst("C")
        formula = b.lt(b.ite(cond, x, y), z)
        analysis = analyze_separation(formula)
        assert len(analysis.classes) == 1
        assert names(analysis.classes[0].vars) == {"x", "y", "z"}

    def test_p_vars_not_in_classes(self):
        x, y, u, v = (b.const(n) for n in "xyuv")
        # u = v is positive-only: u, v are p and form no class.
        formula = b.band(b.eq(u, v), b.bnot(b.lt(x, y)))
        analysis = analyze_separation(formula)
        assert names(analysis.p_vars) == {"u", "v"}
        assert len(analysis.classes) == 1
        assert names(analysis.classes[0].vars) == {"x", "y"}

    def test_positive_equality_disabled(self):
        u, v = b.const("u"), b.const("v")
        formula = b.eq(u, v)
        analysis = analyze_separation(formula, positive_equality=False)
        assert not analysis.p_vars
        assert len(analysis.classes) == 1


class TestDomainBounds:
    def test_paper_example(self):
        # Paper: ground terms {v-4, v-2, v, v+3, v+7} give u=7, l=-4.
        v, w = b.const("vv"), b.const("ww")
        formula = b.band(
            b.bnot(b.eq(b.offset(v, -4), w)),
            b.bnot(b.eq(b.offset(v, -2), w)),
            b.bnot(b.eq(v, w)),
            b.bnot(b.eq(b.offset(v, 3), w)),
            b.bnot(b.eq(b.offset(v, 7), w)),
        )
        analysis = analyze_separation(formula)
        vclass = analysis.classes[0]
        assert vclass.upper[v] == 7
        assert vclass.lower[v] == -4
        # range = (7 - (-4) + 1) + (0 - 0 + 1) for w.
        assert vclass.range_size == 13

    def test_range_of_offset_free_class(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.bnot(b.band(b.lt(x, y), b.lt(y, z)))
        analysis = analyze_separation(formula)
        assert analysis.classes[0].range_size == 3

    def test_max_span(self):
        x, y = b.const("x"), b.const("y")
        formula = b.bnot(b.lt(b.offset(x, -6), y))
        analysis = analyze_separation(formula)
        assert analysis.classes[0].max_span == 6


class TestSepCnt:
    def test_simple_atoms_count_one(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.bnot(b.band(b.lt(x, y), b.lt(y, z), b.eq(x, z)))
        analysis = analyze_separation(formula)
        assert analysis.classes[0].sep_count == 3

    def test_ite_multiplies(self):
        x, y, z, w = (b.const(n) for n in "xyzw")
        cond = b.bconst("C")
        # lhs has 2 ground terms, rhs has 2 -> 4 potential predicates.
        formula = b.lt(
            b.ite(cond, x, y), b.ite(cond, z, w)
        )
        analysis = analyze_separation(formula)
        assert analysis.classes[0].sep_count == 4

    def test_total_and_flags(self):
        x, y = b.const("x"), b.const("y")
        formula = b.bnot(b.band(b.lt(x, y), b.eq(b.succ(x), y)))
        analysis = analyze_separation(formula)
        vclass = analysis.classes[0]
        assert analysis.total_sep_count() == 2
        assert vclass.has_inequality
        assert vclass.has_offset

    def test_equality_only_class_flags(self):
        x, y = b.const("x"), b.const("y")
        formula = b.bnot(b.eq(x, y))
        analysis = analyze_separation(formula)
        vclass = analysis.classes[0]
        assert not vclass.has_inequality
        assert not vclass.has_offset

    def test_pure_p_atom_has_no_class(self):
        u, v = b.const("u"), b.const("v")
        formula = b.eq(u, v)
        analysis = analyze_separation(formula)
        assert analysis.classes == []
        atom = next(iter(analysis.atom_class))
        assert analysis.atom_class[atom] is None
