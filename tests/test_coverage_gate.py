"""The CI coverage gate must itself be trustworthy (tools/coverage_gate.py)."""

import importlib.util
import json
import os

_SPEC = importlib.util.spec_from_file_location(
    "coverage_gate",
    os.path.join(
        os.path.dirname(os.path.dirname(__file__)),
        "tools",
        "coverage_gate.py",
    ),
)
coverage_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(coverage_gate)


def _report(
    service_covered,
    service_total,
    other_covered,
    other_total,
    session_covered=95,
    session_total=100,
):
    def summary(covered, total):
        return {
            "summary": {
                "covered_lines": covered,
                "num_statements": total,
            }
        }

    all_covered = service_covered + other_covered + session_covered
    all_total = service_total + other_total + session_total
    return {
        "files": {
            "src/repro/service/cache.py": summary(
                service_covered, service_total
            ),
            "src/repro/engine/session.py": summary(
                session_covered, session_total
            ),
            "src/repro/cli.py": summary(other_covered, other_total),
        },
        "totals": {"percent_covered": 100.0 * all_covered / all_total},
    }


def _run(tmp_path, report, argv=()):
    path = tmp_path / "coverage.json"
    path.write_text(json.dumps(report))
    return coverage_gate.main(["--report", str(path), *argv])


class TestCoverageGate:
    def test_passes_above_both_floors(self, tmp_path, capsys):
        rc = _run(tmp_path, _report(95, 100, 85, 100))
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_fails_when_service_package_below_floor(self, tmp_path, capsys):
        rc = _run(tmp_path, _report(80, 100, 99, 100))
        assert rc == 1
        assert "repro/service/" in capsys.readouterr().out

    def test_fails_when_global_total_below_floor(self, tmp_path):
        report = _report(95, 100, 10, 100)
        assert _run(tmp_path, report) == 1

    def test_floors_are_configurable(self, tmp_path):
        report = _report(80, 100, 80, 100)
        rc = _run(
            tmp_path,
            report,
            argv=["--global-floor", "50", "--package-floor", "75"],
        )
        assert rc == 0

    def test_missing_report_fails(self, tmp_path):
        assert (
            coverage_gate.main(["--report", str(tmp_path / "nope.json")])
            == 1
        )

    def test_fails_when_session_layer_below_floor(self, tmp_path, capsys):
        # engine/session.py is strictly gated by default (>= 90%).
        report = _report(95, 100, 99, 100, session_covered=70)
        rc = _run(tmp_path, report)
        assert rc == 1
        assert "repro/engine/session.py" in capsys.readouterr().out

    def test_default_packages_include_session_layer(self):
        assert "repro/engine/session.py" in coverage_gate.DEFAULT_PACKAGES
        assert "repro/service/" in coverage_gate.DEFAULT_PACKAGES

    def test_package_flag_is_repeatable(self, tmp_path, capsys):
        report = _report(95, 100, 99, 100, session_covered=70)
        rc = _run(
            tmp_path,
            report,
            argv=[
                "--package",
                "repro/service/",
                "--package",
                "repro/engine/session.py",
            ],
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "repro/service/" in out
        assert "repro/engine/session.py" in out

    def test_unmatched_package_fails(self, tmp_path):
        report = _report(95, 100, 95, 100)
        rc = _run(tmp_path, report, argv=["--package", "repro/nosuch/"])
        assert rc == 1

    def test_package_rate_windows_paths(self):
        rate, covered, total = coverage_gate.package_rate(
            {
                "files": {
                    "src\\repro\\service\\server.py": {
                        "summary": {
                            "covered_lines": 9,
                            "num_statements": 10,
                        }
                    }
                }
            },
            "repro/service/",
        )
        assert (covered, total) == (9, 10)
        assert abs(rate - 90.0) < 1e-9
