"""Tests for the lazy (CVC-style) refinement procedure."""

import pytest

from repro.logic import builders as b
from repro.logic.semantics import evaluate
from repro.solvers.lazy import check_validity_lazy


class TestVerdicts:
    def test_valid_transitivity(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.implies(b.band(b.lt(x, y), b.lt(y, z)), b.lt(x, z))
        result = check_validity_lazy(formula)
        assert result.valid is True
        # The Boolean abstraction alone cannot prove this: refinement
        # rounds must have happened.
        assert result.stats.iterations >= 2
        assert result.stats.conflict_clauses_added >= 1

    def test_invalid_with_countermodel(self):
        x, y = b.const("x"), b.const("y")
        formula = b.implies(b.le(x, y), b.lt(x, y))
        result = check_validity_lazy(formula)
        assert result.valid is False
        assert not evaluate(formula, result.counterexample)

    def test_uninterpreted_functions(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.implies(b.eq(x, y), b.eq(f(x), f(y)))
        assert check_validity_lazy(formula).valid is True

    def test_propositional_only_needs_one_iteration(self):
        p = b.bconst("P")
        result = check_validity_lazy(b.bor(p, b.bnot(p)))
        assert result.valid is True
        assert result.stats.iterations == 1

    def test_integer_density(self):
        x, y = b.const("x"), b.const("y")
        formula = b.implies(b.lt(x, y), b.le(b.succ(x), y))
        assert check_validity_lazy(formula).valid is True


class TestRefinementBehaviour:
    def test_conflict_clauses_are_minimal_cycles(self):
        # A formula requiring several distinct cycles to be blocked.
        vs = [b.const("lz%d" % i) for i in range(4)]
        chain = b.band(*[b.lt(vs[i], vs[i + 1]) for i in range(3)])
        formula = b.implies(chain, b.band(
            b.lt(vs[0], vs[2]), b.lt(vs[1], vs[3]), b.lt(vs[0], vs[3])
        ))
        result = check_validity_lazy(formula)
        assert result.valid is True
        assert result.stats.theory_checks == result.stats.iterations - 1 \
            or result.stats.theory_checks == result.stats.iterations

    def test_iteration_limit(self):
        vs = [b.const("il%d" % i) for i in range(6)]
        chain = b.band(*[b.lt(vs[i], vs[i + 1]) for i in range(5)])
        formula = b.implies(chain, b.lt(vs[0], vs[5]))
        result = check_validity_lazy(formula, max_iterations=1)
        # One iteration cannot both find and refute the abstraction.
        assert result.valid in (None, True)
        limited = check_validity_lazy(formula, max_iterations=100)
        assert limited.valid is True

    def test_no_transitivity_constraints_upfront(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.implies(b.band(b.lt(x, y), b.lt(y, z)), b.lt(x, z))
        result = check_validity_lazy(formula)
        # The lazy encoding carries no F_trans: trans_clauses stays 0.
        assert result.stats.encoding.trans_clauses == 0

    def test_equalities_handled(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.implies(
            b.band(b.eq(x, y), b.eq(y, z)), b.eq(x, z)
        )
        assert check_validity_lazy(formula).valid is True
