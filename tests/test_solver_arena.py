"""Arena-representation tests: differential, round-trip, inprocessing.

The PR 7 refactor moved the SAT core from object-per-clause to a flat
int arena; the pre-arena implementation is kept frozen in
``repro.sat.legacy_solver`` as a reference.  These tests pin:

* verdict-for-verdict agreement between the two solvers (hypothesis
  differential, plain and under assumptions),
* the packed-literal and DIMACS round-trips feeding the arena,
* arena structural invariants after a full search (watcher lists point
  at live clauses that really contain the watched literal),
* soundness of the inprocessing passes (vivification and backward
  subsumption only ever leave entailed clauses behind), and
* correctness across ``solve_under_assumptions`` after an explicit
  arena compaction.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.sat.cnf import (
    Cnf,
    pack_clause,
    pack_literal,
    unpack_clause,
    unpack_literal,
)
from repro.sat.dimacs import dumps, loads
from repro.sat.legacy_solver import CdclSolver as LegacySolver
from repro.sat.solver import (
    FLAG_DEAD,
    HEADER,
    CdclSolver,
    solve_cnf,
)


def make_cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    cnf.add_clauses(clauses)
    return cnf


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def implied_by(num_vars, clauses, lits):
    """True iff ``clauses`` entail the clause ``lits`` (brute force)."""
    negated = [[-lit] for lit in lits]
    return not brute_force_sat(num_vars, clauses + negated)


def random_instance(rng, max_vars=7, max_clauses=20, max_width=4):
    num_vars = rng.randint(1, max_vars)
    clauses = [
        [
            rng.choice([1, -1]) * rng.randint(1, num_vars)
            for _ in range(rng.randint(1, max_width))
        ]
        for _ in range(rng.randint(1, max_clauses))
    ]
    return num_vars, clauses


class TestPackedLiterals:
    @given(lit=st.integers(1, 10_000))
    def test_round_trip_both_signs(self, lit):
        assert unpack_literal(pack_literal(lit)) == lit
        assert unpack_literal(pack_literal(-lit)) == -lit

    @given(lit=st.integers(1, 10_000))
    def test_negation_is_xor(self, lit):
        assert pack_literal(-lit) == pack_literal(lit) ^ 1
        assert pack_literal(lit) >> 1 == lit

    def test_clause_round_trip(self):
        clause = [3, -1, 7, -7]
        assert unpack_clause(pack_clause(clause)) == clause


class TestDimacsRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_clauses_survive_dumps_loads(self, seed):
        rng = random.Random(seed)
        num_vars, clauses = random_instance(rng)
        cnf = make_cnf(num_vars, clauses)
        restored = loads(dumps(cnf))
        assert restored.num_vars == cnf.num_vars
        # add_clause canonicalises (dedup, tautology drop), so compare
        # the stored form, which dumps writes verbatim.
        assert restored.clauses == cnf.clauses

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_verdict_unchanged_by_round_trip(self, seed):
        rng = random.Random(seed)
        num_vars, clauses = random_instance(rng)
        cnf = make_cnf(num_vars, clauses)
        direct = solve_cnf(cnf)
        round_tripped = solve_cnf(loads(dumps(cnf)))
        assert direct.status == round_tripped.status


class TestArenaVsLegacyDifferential:
    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_statuses_agree_and_models_check(self, seed):
        rng = random.Random(seed)
        num_vars, clauses = random_instance(rng)
        arena = CdclSolver(make_cnf(num_vars, clauses)).solve()
        legacy = LegacySolver(make_cnf(num_vars, clauses)).solve()
        assert arena.status == legacy.status
        if arena.is_sat:
            for clause in clauses:
                assert any(
                    (lit > 0) == arena.model[abs(lit)] for lit in clause
                )

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_agreement_under_assumptions(self, seed):
        rng = random.Random(seed)
        num_vars, clauses = random_instance(rng)
        arena = CdclSolver(make_cnf(num_vars, clauses))
        legacy = LegacySolver(make_cnf(num_vars, clauses))
        for _ in range(3):
            assumptions = [
                rng.choice([1, -1]) * v
                for v in rng.sample(
                    range(1, num_vars + 1), rng.randint(0, num_vars)
                )
            ]
            a = arena.solve_under_assumptions(assumptions)
            b = legacy.solve_under_assumptions(assumptions)
            assert a.status == b.status
            if a.is_unsat:
                # Both cores must be real: replaying either on a fresh
                # solver reproduces UNSAT.
                assert set(a.core) <= set(assumptions)
                replay = CdclSolver(make_cnf(num_vars, clauses))
                assert replay.solve_under_assumptions(a.core).is_unsat


class TestArenaInvariants:
    def _check_invariants(self, solver):
        arena = solver.arena
        # Stride-walk: every slot is covered by a header + literals.
        pos = 0
        refs = set()
        while pos < len(arena):
            size = arena[pos]
            assert size >= 1
            refs.add(pos)
            pos += HEADER + size
        assert pos == len(arena)
        # Watcher lists reference live clauses, and the watched literal
        # really sits in one of the clause's first two slots.
        for lit, (blockers, wrefs) in enumerate(
            zip(solver.watch_blockers, solver.watch_refs)
        ):
            assert len(blockers) == len(wrefs)
            for ref in wrefs:
                assert ref in refs
                assert arena[ref + 1] != FLAG_DEAD
                watched = (arena[ref + HEADER], arena[ref + HEADER + 1])
                assert lit in watched
        for lit, brefs in enumerate(solver.bin_refs):
            assert len(solver.bin_blockers[lit]) == len(brefs)
            for ref in brefs:
                assert ref in refs
                assert arena[ref] == 2
                assert arena[ref + 1] != FLAG_DEAD
                watched = (arena[ref + HEADER], arena[ref + HEADER + 1])
                assert lit in watched

    def test_invariants_after_search(self):
        rng = random.Random(11)
        num_vars, clauses = random_instance(
            rng, max_vars=8, max_clauses=30
        )
        solver = CdclSolver(make_cnf(num_vars, clauses))
        solver.solve()
        self._check_invariants(solver)

    def test_invariants_after_reduce_and_compact(self):
        rng = random.Random(13)
        num_vars = 8
        clauses = [
            [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(3)
            ]
            for _ in range(60)
        ]
        solver = CdclSolver(make_cnf(num_vars, clauses))
        solver.solve()
        solver._reduce_db()
        solver._compact()
        self._check_invariants(solver)
        # The solver keeps working on the compacted arena.
        expected = brute_force_sat(num_vars, clauses)
        assert solver.solve().is_sat == expected


def conflict_rich_clauses():
    """All sign combinations over vars 1..3 force 4 — learning-heavy."""
    clauses = []
    for a in (1, -1):
        for b in (2, -2):
            for c in (3, -3):
                clauses.append([a, b, c, 4])
    return clauses


class TestInprocessingSoundness:
    def test_inprocess_leaves_only_entailed_clauses(self):
        clauses = conflict_rich_clauses()
        solver = CdclSolver(make_cnf(4, clauses))
        assert solver.solve_under_assumptions([-4]).is_unsat
        assert solver._inprocess() is True
        for lits in solver.learned_signed():
            assert implied_by(4, clauses, lits)

    def test_verdicts_stable_across_inprocessing(self):
        rng = random.Random(29)
        num_vars = 8
        clauses = [
            [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(2, 4))
            ]
            for _ in range(40)
        ]
        solver = CdclSolver(make_cnf(num_vars, clauses))
        for trial in range(5):
            assumptions = [
                rng.choice([1, -1]) * v
                for v in rng.sample(range(1, num_vars + 1), 2)
            ]
            expected = brute_force_sat(
                num_vars, clauses + [[lit] for lit in assumptions]
            )
            result = solver.solve_under_assumptions(assumptions)
            assert result.is_sat == expected
            # Inprocess between calls: vivification/subsumption must
            # never change any later verdict.
            assert solver._inprocess() is True

    def test_subsumed_clause_removed_and_subsuming_kept(self):
        from repro.sat.solver import FLAG_LEARNED

        cnf = make_cnf(5, [[1, 2, 3, 4, 5]])
        solver = CdclSolver(cnf)
        short = solver._alloc(pack_clause([1, 2]), FLAG_LEARNED, 2)
        long = solver._alloc(pack_clause([1, 2, 3]), FLAG_LEARNED, 3)
        for ref in (short, long):
            solver.learned_refs.append(ref)
            solver._watch_clause(ref)
        solver._subsume_learned()
        kept = {tuple(c) for c in solver.learned_signed()}
        assert (1, 2) in kept
        assert (1, 2, 3) not in kept
        assert solver.stats.subsumed_clauses >= 1

    def test_vivification_shortens_redundant_clause(self):
        # With units 1 and 2 in the database, the learned clause
        # (-1, -2, 3) vivifies: -1 and -2 are root-false, so it must
        # shrink to the unit 3 (or be satisfied outright) — and the
        # shrunken form stays entailed.
        from repro.sat.solver import FLAG_LEARNED

        clauses = [[1], [2]]
        solver = CdclSolver(make_cnf(3, clauses))
        assert solver.solve().is_sat
        ref = solver._alloc(pack_clause([-1, -2, 3]), FLAG_LEARNED, 3)
        solver.learned_refs.append(ref)
        solver._watch_clause(ref)
        assert solver._inprocess() is True
        result = solver.solve()
        assert result.is_sat
        assert result.model[3] is True

    def test_root_contradiction_detected_by_vivify(self):
        from repro.sat.solver import FLAG_LEARNED

        solver = CdclSolver(make_cnf(3, [[1], [2], [3]]))
        assert solver.solve().is_sat
        # All literals are root-false: vivification empties the clause
        # (binary clauses are exempt from vivification, so use three).
        ref = solver._alloc(pack_clause([-1, -2, -3]), FLAG_LEARNED, 3)
        solver.learned_refs.append(ref)
        solver._watch_clause(ref)
        assert solver._inprocess() is False
        assert solver.solve().is_unsat


class TestRetentionAcrossCompaction:
    def test_assumption_solving_correct_after_compaction(self):
        rng = random.Random(43)
        num_vars = 8
        clauses = [
            [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(2, 4))
            ]
            for _ in range(45)
        ]
        solver = CdclSolver(make_cnf(num_vars, clauses))
        for trial in range(6):
            assumptions = [
                rng.choice([1, -1]) * v
                for v in rng.sample(range(1, num_vars + 1), 2)
            ]
            expected = brute_force_sat(
                num_vars, clauses + [[lit] for lit in assumptions]
            )
            result = solver.solve_under_assumptions(assumptions)
            assert result.is_sat == expected
            # Kill half the learned DB and force a full compaction:
            # every stored ref (watchers, reasons, learned list) must
            # be remapped consistently.
            solver._reduce_db()
            solver._compact()

    def test_learned_clauses_survive_compaction(self):
        clauses = conflict_rich_clauses()
        solver = CdclSolver(make_cnf(4, clauses))
        assert solver.solve_under_assumptions([-4]).is_unsat
        before = sorted(
            tuple(sorted(c)) for c in solver.learned_signed()
        )
        assert before  # the instance forces real learning
        solver._compact()
        after = sorted(
            tuple(sorted(c)) for c in solver.learned_signed()
        )
        assert before == after
        # And the compacted state still solves correctly.
        assert solver.solve_under_assumptions([4]).is_sat
        assert solver.solve().is_sat
