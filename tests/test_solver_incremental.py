"""Incremental-interface tests for the CDCL solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver


def make_cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    cnf.add_clauses(clauses)
    return cnf


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


class TestIncrementalBasics:
    def test_resolve_after_adding_clause(self):
        solver = CdclSolver(make_cnf(3, [[1, 2], [2, 3]]))
        assert solver.solve().is_sat
        solver.add_clause([-2])
        result = solver.solve()
        assert result.is_sat
        assert result.model[1] and result.model[3]
        solver.add_clause([-1])
        assert solver.solve().is_unsat

    def test_unsat_is_sticky(self):
        solver = CdclSolver(make_cnf(1, [[1]]))
        solver.add_clause([-1])
        assert solver.solve().is_unsat
        assert solver.solve().is_unsat

    def test_invalid_literal_rejected(self):
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        with pytest.raises(ValueError):
            solver.add_clause([3])
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_learned_clauses_survive(self):
        # Force learning, then re-solve: counters keep growing rather
        # than resetting (the state carries over).
        clauses = []
        for a in (1, -1):
            for b in (2, -2):
                for c in (3, -3):
                    clauses.append([a, b, c, 4])
        solver = CdclSolver(make_cnf(4, clauses))
        first = solver.solve()
        assert first.is_sat
        solver.add_clause([-4])
        second = solver.solve()
        assert second.is_unsat
        assert second.stats is first.stats  # shared accumulator

    def test_stats_accumulate_across_calls(self):
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        solver.solve()
        first = solver.stats.propagations
        solver.add_clause([-1])
        solver.solve()
        assert solver.stats.propagations >= first


class TestIncrementalAgainstRestart:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_matches_from_scratch_solving(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 7)
        base = [
            [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(1, 12))
        ]
        extra = [
            [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(1, 5))
        ]
        solver = CdclSolver(make_cnf(num_vars, base))
        assert solver.solve().is_sat == brute_force_sat(num_vars, base)
        accumulated = list(base)
        for clause in extra:
            solver.add_clause(clause)
            accumulated.append(clause)
            expected = brute_force_sat(num_vars, accumulated)
            result = solver.solve()
            assert result.is_sat == expected
            if result.is_sat:
                for cl in accumulated:
                    assert any(
                        (lit > 0) == result.model[abs(lit)] for lit in cl
                    )
