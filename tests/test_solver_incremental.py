"""Incremental-interface tests for the CDCL solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver


def make_cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    cnf.add_clauses(clauses)
    return cnf


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


class TestIncrementalBasics:
    def test_resolve_after_adding_clause(self):
        solver = CdclSolver(make_cnf(3, [[1, 2], [2, 3]]))
        assert solver.solve().is_sat
        solver.add_clause([-2])
        result = solver.solve()
        assert result.is_sat
        assert result.model[1] and result.model[3]
        solver.add_clause([-1])
        assert solver.solve().is_unsat

    def test_unsat_is_sticky(self):
        solver = CdclSolver(make_cnf(1, [[1]]))
        solver.add_clause([-1])
        assert solver.solve().is_unsat
        assert solver.solve().is_unsat

    def test_invalid_literal_rejected(self):
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        with pytest.raises(ValueError):
            solver.add_clause([3])
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_learned_clauses_survive(self):
        # Force learning, then re-solve: counters keep growing rather
        # than resetting (the state carries over).
        clauses = []
        for a in (1, -1):
            for b in (2, -2):
                for c in (3, -3):
                    clauses.append([a, b, c, 4])
        solver = CdclSolver(make_cnf(4, clauses))
        first = solver.solve()
        assert first.is_sat
        solver.add_clause([-4])
        second = solver.solve()
        assert second.is_unsat
        assert second.stats is first.stats  # shared accumulator

    def test_stats_accumulate_across_calls(self):
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        solver.solve()
        first = solver.stats.propagations
        solver.add_clause([-1])
        solver.solve()
        assert solver.stats.propagations >= first


def random_clauses(rng, num_vars, count, width=3):
    return [
        [
            rng.choice([1, -1]) * rng.randint(1, num_vars)
            for _ in range(rng.randint(1, width))
        ]
        for _ in range(count)
    ]


def implied_by(num_vars, clauses, lits):
    """True iff ``clauses`` entail the clause ``lits`` (brute force)."""
    negated = [[-lit] for lit in lits]
    return not brute_force_sat(num_vars, clauses + negated)


class TestAssumptions:
    def test_sat_model_respects_assumptions(self):
        clauses = [[1, 2], [-1, 3]]
        solver = CdclSolver(make_cnf(3, clauses))
        result = solver.solve_under_assumptions([-2])
        assert result.is_sat
        assert result.model[2] is False
        for clause in clauses:
            assert any((lit > 0) == result.model[abs(lit)] for lit in clause)

    def test_unsat_core_over_assumption_literals(self):
        # Assumptions 1 and 2 clash through the clause; 3 is irrelevant
        # and final-conflict analysis must keep it out of the core.
        solver = CdclSolver(make_cnf(3, [[-1, -2]]))
        result = solver.solve_under_assumptions([3, 1, 2])
        assert result.is_unsat
        assert set(result.core) == {1, 2}

    def test_contradictory_assumptions(self):
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        result = solver.solve_under_assumptions([1, -1])
        assert result.is_unsat
        assert set(result.core) == {1, -1}

    def test_globally_unsat_gives_empty_core(self):
        solver = CdclSolver(make_cnf(2, [[1], [-1]]))
        result = solver.solve_under_assumptions([2])
        assert result.is_unsat
        assert result.core == []

    def test_core_resolves_unsat(self):
        clauses = [[-1, 2], [-2, 3], [-3, -1]]
        solver = CdclSolver(make_cnf(4, clauses))
        result = solver.solve_under_assumptions([4, 1])
        assert result.is_unsat
        assert set(result.core) <= {4, 1}
        replay = CdclSolver(make_cnf(4, clauses))
        assert replay.solve_under_assumptions(result.core).is_unsat

    def test_invalid_assumption_literal_rejected(self):
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        with pytest.raises(ValueError):
            solver.solve_under_assumptions([3])
        with pytest.raises(ValueError):
            solver.solve_under_assumptions([0])

    def test_plain_solve_unaffected_after_assumption_calls(self):
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        assert solver.solve_under_assumptions([-1, -2]).is_unsat
        result = solver.solve()
        assert result.is_sat
        assert solver.solve_under_assumptions([-1]).is_sat

    def test_solve_delegates_to_assumption_path(self):
        solver = CdclSolver(make_cnf(2, [[1], [-1]]))
        result = solver.solve()
        assert result.is_unsat
        assert result.core == []


class TestLearnedClauseRetention:
    """Satellite regression: nothing learned may depend on an assumption.

    Assumptions enter conflict analysis as reason-free decisions and are
    never resolved on, so every learned clause is a resolvent of
    database clauses alone.  These tests pin that semantics directly
    (each learned clause is entailed by the original clauses) and
    behaviorally (verdicts stay correct after the assumption is
    retracted or flipped).
    """

    def _conflict_rich(self):
        # All sign combinations over vars 1..3 force 4: solving under
        # the assumption -4 generates real conflict-driven learning.
        clauses = []
        for a in (1, -1):
            for b in (2, -2):
                for c in (3, -3):
                    clauses.append([a, b, c, 4])
        return clauses

    def test_learned_clauses_entailed_by_database_alone(self):
        clauses = self._conflict_rich()
        solver = CdclSolver(make_cnf(4, clauses))
        assert solver.solve_under_assumptions([-4]).is_unsat
        assert solver.stats.conflicts > 0
        for lits in solver.learned_signed():
            assert implied_by(4, clauses, lits)

    def test_verdicts_survive_assumption_retraction(self):
        clauses = self._conflict_rich()
        solver = CdclSolver(make_cnf(4, clauses))
        assert solver.solve_under_assumptions([-4]).is_unsat
        # Retract: the instance itself is satisfiable, and any learned
        # state from the -4 call must not leak into the verdict.
        result = solver.solve()
        assert result.is_sat
        assert result.model[4] is True
        assert solver.solve_under_assumptions([4]).is_sat

    def test_activity_and_phase_retained_across_calls(self):
        clauses = self._conflict_rich()
        solver = CdclSolver(make_cnf(4, clauses))
        first = solver.solve_under_assumptions([-4])
        assert first.is_unsat
        assert any(a > 0 for a in solver.activity[1:])
        activity = list(solver.activity)
        learned_before = len(solver.live_learned_refs())
        second = solver.solve_under_assumptions([4])
        assert second.is_sat
        assert second.stats is first.stats  # shared accumulator
        # The second call starts from (and then extends) the first
        # call's heuristic state rather than resetting it.
        assert len(solver.live_learned_refs()) >= learned_before
        assert all(
            after >= before
            for before, after in zip(activity, solver.activity)
        )

    def test_reduce_db_keeps_assumption_solving_correct(self):
        rng = random.Random(7)
        num_vars = 8
        clauses = random_clauses(rng, num_vars, 40)
        solver = CdclSolver(make_cnf(num_vars, clauses))
        for trial in range(6):
            assumptions = [
                rng.choice([1, -1]) * v
                for v in rng.sample(range(1, num_vars + 1), 2)
            ]
            expected = brute_force_sat(
                num_vars, clauses + [[lit] for lit in assumptions]
            )
            assert (
                solver.solve_under_assumptions(assumptions).is_sat
                == expected
            )
            # Shrink the learned database between calls: retention is an
            # optimization, never a soundness requirement.
            solver._reduce_db()

    def test_ensure_nvars_grows_variable_space(self):
        solver = CdclSolver(make_cnf(2, [[1, 2]]))
        solver.ensure_nvars(4)
        assert solver.nvars == 4
        solver.add_clause([3, 4])
        solver.add_clause([-3])
        result = solver.solve_under_assumptions([-1])
        assert result.is_sat
        assert result.model[2] is True
        assert result.model[4] is True
        solver.ensure_nvars(3)  # never shrinks
        assert solver.nvars == 4


class TestAssumptionDifferential:
    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_matches_scratch_and_cores_check(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 6)
        clauses = random_clauses(rng, num_vars, rng.randint(1, 12))
        solver = CdclSolver(make_cnf(num_vars, clauses))
        for _ in range(4):
            assumptions = [
                rng.choice([1, -1]) * v
                for v in rng.sample(
                    range(1, num_vars + 1),
                    rng.randint(0, num_vars),
                )
            ]
            expected = brute_force_sat(
                num_vars, clauses + [[lit] for lit in assumptions]
            )
            result = solver.solve_under_assumptions(assumptions)
            assert result.is_sat == expected
            if result.is_sat:
                for clause in clauses:
                    assert any(
                        (lit > 0) == result.model[abs(lit)]
                        for lit in clause
                    )
                for lit in assumptions:
                    assert (lit > 0) == result.model[abs(lit)]
            else:
                assert set(result.core) <= set(assumptions)
                assert not brute_force_sat(
                    num_vars,
                    clauses + [[lit] for lit in result.core],
                )
        # The incremental state never pollutes a plain solve.
        assert solver.solve().is_sat == brute_force_sat(num_vars, clauses)


class TestIncrementalAgainstRestart:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_matches_from_scratch_solving(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 7)
        base = [
            [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(1, 12))
        ]
        extra = [
            [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(1, 5))
        ]
        solver = CdclSolver(make_cnf(num_vars, base))
        assert solver.solve().is_sat == brute_force_sat(num_vars, base)
        accumulated = list(base)
        for clause in extra:
            solver.add_clause(clause)
            accumulated.append(clause)
            expected = brute_force_sat(num_vars, accumulated)
            result = solver.solve()
            assert result.is_sat == expected
            if result.is_sat:
                for cl in accumulated:
                    assert any(
                        (lit > 0) == result.model[abs(lit)] for lit in cl
                    )
