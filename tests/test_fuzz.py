"""Tests for the differential/metamorphic fuzzing subsystem itself.

The smoke campaign here (fixed seed, 200 iterations) is the pytest entry
point the CI target runs; the self-check proves the harness can actually
catch and shrink an injected encoder bug.
"""

import os
import random

import pytest

from helpers import random_suf_formula
from repro.cli import main as cli_main
from repro.fuzz import (
    PROFILES,
    FuzzConfig,
    TRANSFORMS,
    apply_transform,
    default_methods,
    differential_check,
    generate_formula,
    inject_strictness_bug,
    run_campaign,
    shrink,
)
from repro.fuzz.oracle import consensus_verdict
from repro.logic.parser import parse_formula
from repro.logic.printer import to_sexpr
from repro.logic.smtlib import parse_smtlib
from repro.logic.terms import And, Lt, Not
from repro.logic.traversal import collect_atoms, dag_size, iter_dag
from repro.solvers.brute import brute_force_valid


class TestGenerator:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_deterministic(self, profile):
        for seed in range(10):
            a = generate_formula(seed, profile)
            c = generate_formula(seed, profile)
            assert a is c  # hash consing makes determinism exact

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_seeds_vary(self, profile):
        formulas = {generate_formula(seed, profile) for seed in range(20)}
        assert len(formulas) > 10

    def test_profiles_shape_output(self):
        def kinds(profile):
            has_lt = has_app = False
            for seed in range(30):
                for node in iter_dag(generate_formula(seed, profile)):
                    has_lt = has_lt or isinstance(node, Lt)
                    has_app = has_app or type(node).__name__ in (
                        "FuncApp",
                        "PredApp",
                    )
            return has_lt, has_app

        eq_lt, eq_app = kinds("equality")
        assert not eq_lt and not eq_app
        uf_lt, uf_app = kinds("uf")
        assert uf_app
        off_lt, _ = kinds("offset")
        assert off_lt

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            generate_formula(0, "bogus")


class TestTransforms:
    @pytest.mark.parametrize("name", [name for name, _ in TRANSFORMS])
    @pytest.mark.parametrize("profile", ["equality", "mixed"])
    def test_verdict_preserved(self, name, profile):
        methods = default_methods(names=["brute", "hybrid"])
        checked = 0
        for seed in range(12):
            formula = generate_formula(seed, profile)
            variant = apply_transform(name, formula, random.Random(seed))
            if variant is None:
                continue
            base = consensus_verdict(formula, methods)
            after = consensus_verdict(variant, methods)
            if base is None or after is None:
                continue
            assert after == base, "%s flipped seed %d" % (name, seed)
            checked += 1
        assert checked >= 4  # the transform actually applied

    def test_inapplicable_returns_none(self):
        from repro.logic import builders as b

        pure_bool = b.bconst("P")
        assert apply_transform("rename_vars", pure_bool, random.Random(0))
        assert (
            apply_transform("translate_offsets", pure_bool, random.Random(0))
            is None
        )
        assert (
            apply_transform("introduce_ite", pure_bool, random.Random(0))
            is None
        )


class TestShrinker:
    def test_shrinks_to_single_atom(self):
        from repro.logic import builders as b

        x, y, z = b.const("x"), b.const("y"), b.const("z")
        big = b.band(
            b.implies(b.eq(x, y), b.lt(y, z)),
            b.bor(b.lt(x, z), b.eq(y, z)),
            b.lt(b.succ(x), y),
        )

        def has_lt(candidate):
            return any(isinstance(n, Lt) for n in iter_dag(candidate))

        small = shrink(big, has_lt)
        assert has_lt(small)
        assert dag_size(small) < dag_size(big)
        assert dag_size(small) <= 4  # one < atom over two constants

    def test_respects_check_budget(self):
        from repro.fuzz.shrink import shrink_report

        formula = generate_formula(3, "mixed")
        result = shrink_report(formula, lambda f: True, max_checks=7)
        assert result.checks <= 7


class TestOracle:
    def test_clean_sample_has_no_discrepancy(self):
        methods = default_methods()
        formula = generate_formula(0, "mixed")
        assert differential_check(formula, methods) is None

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            default_methods(names=["hybrid", "zchaff"])

    def test_injected_bug_is_visible(self):
        # x < y is falsifiable but its weakened form x <= y changes the
        # set of countermodels; across samples the oracle must notice.
        methods = inject_strictness_bug(default_methods(), victim="hybrid")
        found = None
        for seed in range(40):
            formula = generate_formula(seed, "offset")
            found = differential_check(formula, methods)
            if found is not None:
                break
        assert found is not None


class TestCampaign:
    def test_smoke_200_iterations_clean(self):
        report = run_campaign(
            FuzzConfig(iterations=200, seed=0, out_dir=None)
        )
        assert report.ok, "\n".join(report.summary_lines())
        assert report.iterations_run == 200
        assert report.decided >= 190  # almost every sample fully decided
        assert report.metamorphic_checks > 100
        assert "seed=0" in report.summary_lines()[0]

    def test_injected_bug_caught_and_shrunk(self, tmp_path):
        methods = inject_strictness_bug(default_methods(), victim="hybrid")
        report = run_campaign(
            FuzzConfig(
                iterations=120,
                seed=0,
                methods=methods,
                out_dir=str(tmp_path),
                max_failures=1,
            )
        )
        assert not report.ok
        failure = report.failures[0]
        assert len(collect_atoms(failure.shrunk)) <= 10
        assert dag_size(failure.shrunk) <= dag_size(failure.original)
        # Both reproducer formats parse back.
        sexpr_files = list(tmp_path.glob("*.sexpr"))
        smt_files = list(tmp_path.glob("*.smt2"))
        assert sexpr_files and smt_files
        text = sexpr_files[0].read_text()
        assert parse_formula(text) is failure.shrunk
        script = parse_smtlib(smt_files[0].read_text())
        assert script.check_sat_requested

    def test_campaign_deterministic(self):
        config = FuzzConfig(iterations=60, seed=7, out_dir=None)
        first = run_campaign(config)
        second = run_campaign(config)
        assert first.ok and second.ok
        assert (first.decided, first.valid_count, first.invalid_count) == (
            second.decided,
            second.valid_count,
            second.invalid_count,
        )


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        code = cli_main(
            ["fuzz", "--iterations", "30", "--seed", "3", "--out", ""]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "seed=3" in out
        assert "no discrepancies" in out

    def test_bad_profile_is_usage_error(self, capsys):
        code = cli_main(["fuzz", "--iterations", "1", "--profile", "nope"])
        assert code == 2
        assert "unknown profile" in capsys.readouterr().err

    def test_bad_method_is_usage_error(self, capsys):
        code = cli_main(["fuzz", "--iterations", "1", "--methods", "z3"])
        assert code == 2

    def test_self_check_catches_injected_bug(self, capsys):
        code = cli_main(
            [
                "fuzz",
                "--iterations",
                "120",
                "--seed",
                "0",
                "--self-check",
                "--no-shrink",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # self-check: catching the bug is success
        assert "self-check passed" in out

    def test_discrepancy_exits_one(self, monkeypatch, capsys):
        import repro.fuzz
        from repro.fuzz.harness import FuzzFailure, FuzzReport
        from repro.fuzz.oracle import Discrepancy

        def fake_campaign(config, log=None):
            report = FuzzReport(config=config, iterations_run=1)
            formula = generate_formula(0, "mixed")
            report.failures.append(
                FuzzFailure(
                    iteration=0,
                    profile="mixed",
                    discrepancy=Discrepancy(
                        kind="verdict",
                        formula=formula,
                        detail="decided verdicts disagree",
                    ),
                    original=formula,
                    shrunk=formula,
                )
            )
            return report

        monkeypatch.setattr(repro.fuzz, "run_campaign", fake_campaign)
        code = cli_main(["fuzz", "--iterations", "1", "--out", ""])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_method_subset_runs(self, capsys):
        code = cli_main(
            [
                "fuzz",
                "--iterations",
                "10",
                "--methods",
                "brute,hybrid",
                "--out",
                "",
            ]
        )
        assert code == 0


class TestCachedArm:
    def test_default_methods_include_cached(self):
        assert "cached" in default_methods()

    def test_cached_arm_agrees_and_hits(self):
        from repro.fuzz.oracle import _cached_method

        run = _cached_method()
        for seed in range(20):
            formula = generate_formula(seed, "mixed")
            outcome = run(formula)
            # A decided cold solve must be re-served from the cache and
            # shared with its alpha-renamed variant; _cached_method turns
            # any violation into an error.
            assert outcome.error is None, (seed, outcome.error)
            assert outcome.countermodel_ok in (None, True)

    def test_cached_arm_cold_per_registry(self):
        from repro.fuzz.oracle import _cached_method

        formula = generate_formula(1, "equality")
        first = _cached_method()
        first(formula)
        # A fresh arm has a fresh (cold) cache: the first solve of the
        # same formula is a miss again, caught via the hit-requirement
        # erroring if we pre-warm with a different closure.
        second = _cached_method()
        outcome = second(formula)
        assert outcome.error is None

    def test_cached_arm_in_campaign(self):
        report = run_campaign(
            FuzzConfig(
                iterations=40,
                seed=11,
                methods=default_methods(
                    names=["brute", "hybrid", "cached"]
                ),
                out_dir=None,
            )
        )
        assert report.ok, "\n".join(report.summary_lines())

    def test_oracle_catches_poisoned_cache(self):
        # Flip the stored verdict behind the arm's back: the poisoned
        # INVALID must surface as a countermodel/verdict discrepancy
        # against the honest engines instead of being trusted.
        from repro.engine.contract import SolveRequest
        from repro.fuzz.oracle import _cached_method, check_outcomes
        from repro.logic.canonical import canonicalize
        from repro.service import cache as cache_mod

        formula = parse_formula("(=> (= x y) (= (f x) (f y)))")
        run = _cached_method()
        engine = next(
            cell.cell_contents
            for cell in run.__closure__
            if isinstance(cell.cell_contents, cache_mod.CachedEngine)
        )
        assert run(formula).error is None
        form = canonicalize(formula)
        fingerprint = cache_mod.config_fingerprint(
            "hybrid", SolveRequest(formula=form.formula)
        )
        poisoned = cache_mod.CacheEntry(
            status="INVALID",
            countermodel=cache_mod.interp_from_jsonable(
                {"vars": {"v0": 0, "v1": 0}}
            ),
            engine="hybrid",
        )
        with engine._cache._lock:
            assert (form.key, fingerprint) in engine._cache._memory
            engine._cache._memory[(form.key, fingerprint)] = poisoned
        outcome = run(formula)
        outcome.name = "cached"
        assert outcome.valid is False  # the cache served the lie...
        assert outcome.countermodel_ok is False  # ...and replay caught it
        honest = default_methods(names=["hybrid"])["hybrid"](formula)
        discrepancy = check_outcomes(formula, [honest, outcome])
        assert discrepancy is not None
        assert discrepancy.kind in ("countermodel", "verdict")


class TestIncrementalArm:
    def test_default_methods_include_incremental(self):
        assert "incremental" in default_methods()

    def test_incremental_arm_agrees_with_scratch(self):
        from repro.fuzz.oracle import _incremental_method

        run = _incremental_method()
        decided = 0
        for seed in range(40):
            formula = generate_formula(seed, "mixed")
            outcome = run(formula)
            # _incremental_method turns any incremental-vs-scratch
            # mismatch, bad model, or failed core re-solve into an error.
            assert outcome.error is None, (seed, outcome.error)
            assert outcome.countermodel_ok in (None, True)
            decided += outcome.valid is not None
        assert decided >= 30

    def test_incremental_arm_reuses_one_session(self):
        from repro.engine.session import Session
        from repro.fuzz.oracle import _incremental_method

        run = _incremental_method()
        session = next(
            cell.cell_contents
            for cell in run.__closure__
            if isinstance(cell.cell_contents, Session)
        )
        for seed in range(10):
            run(generate_formula(seed, "offset"))
        # Frames are unwound after every sample, but the one persistent
        # session (and its solver state) served all of them.
        assert session.depth == 0
        assert session.assertions() == []
        assert session.stats.checks >= 10

    def test_incremental_arm_in_campaign(self):
        report = run_campaign(
            FuzzConfig(
                iterations=40,
                seed=13,
                methods=default_methods(
                    names=["brute", "hybrid", "incremental"]
                ),
                out_dir=None,
            )
        )
        assert report.ok, "\n".join(report.summary_lines())


class TestPreprocessConfigs:
    def test_default_methods_include_preprocess_arms(self):
        methods = default_methods()
        assert "sd+preprocess" in methods
        assert "hybrid+preprocess" in methods

    def test_preprocess_arm_agrees_with_bare_method(self):
        from repro.fuzz.generator import generate_formula

        methods = default_methods(names=["hybrid"])
        methods.update(
            {
                k: v
                for k, v in default_methods().items()
                if k == "hybrid+preprocess"
            }
        )
        for seed in range(25):
            formula = generate_formula(seed, profile="mixed")
            outcomes = {
                name: fn(formula) for name, fn in methods.items()
            }
            verdicts = {n: o.valid for n, o in outcomes.items()}
            assert len(set(verdicts.values())) == 1, (seed, verdicts)
            for outcome in outcomes.values():
                # Any countermodel (including reconstructed ones) must
                # have re-validated against the input formula.
                assert outcome.countermodel_ok in (None, True)
                assert outcome.error is None


class TestSmtlibRoundtripArm:
    def test_default_methods_include_smtlib_roundtrip(self):
        assert "smtlib-roundtrip" in default_methods()

    def test_roundtrip_arm_agrees_with_brute(self):
        methods = default_methods(names=["brute", "smtlib-roundtrip"])
        for seed in range(25):
            formula = random_suf_formula(seed)
            arm = methods["smtlib-roundtrip"](formula)
            ref = methods["brute"](formula)
            assert arm.error is None, (seed, arm.error)
            if None not in (arm.valid, ref.valid):
                assert arm.valid == ref.valid, seed
            assert arm.countermodel_ok in (None, True)

    def test_roundtrip_arm_reports_key_drift_as_error(self):
        # A printer that mangles the formula must be caught by the key
        # check, not silently solved.
        from unittest import mock

        from repro.logic import builders as b
        from repro.logic.smtlib import to_smtlib_script as real_printer

        formula = random_suf_formula(3)

        def mangling_printer(f, **kwargs):
            return real_printer(
                b.band(f, b.lt(b.const("vx"), b.const("vy"))), **kwargs
            )

        with mock.patch(
            "repro.logic.smtlib.to_smtlib_script", mangling_printer
        ):
            outcome = default_methods(names=["smtlib-roundtrip"])[
                "smtlib-roundtrip"
            ](formula)
        assert outcome.error is not None
        assert "canonical key" in outcome.error


class TestCorpusMode:
    CORPUS = os.path.join(
        os.path.dirname(__file__), "fixtures", "smtlib", "corpus"
    )

    def test_campaign_over_fixture_corpus(self):
        config = FuzzConfig(
            iterations=8,
            seed=7,
            metamorphic=True,
            shrink=False,
            out_dir=None,
            methods=default_methods(names=["brute", "hybrid"]),
            corpus_dir=self.CORPUS,
        )
        report = run_campaign(config)
        assert report.ok, [f.discrepancy.describe() for f in report.failures]
        assert report.iterations_run == 8
        assert report.decided == 8

    def test_corpus_mutation_is_deterministic(self):
        from repro.fuzz.harness import _load_corpus, _mutate_sample
        from repro.logic.printer import to_sexpr

        samples = _load_corpus(self.CORPUS)
        assert len(samples) >= 20
        base = samples[0][1]
        one = _mutate_sample(base, random.Random("corpus:0:5"))
        two = _mutate_sample(base, random.Random("corpus:0:5"))
        assert to_sexpr(one) == to_sexpr(two)

    def test_empty_corpus_rejected(self, tmp_path):
        from repro.fuzz.harness import _load_corpus

        with pytest.raises(ValueError, match="no parseable"):
            _load_corpus(str(tmp_path))

    def test_cli_corpus_flag(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "fuzz",
                "--iterations",
                "4",
                "--seed",
                "2",
                "--methods",
                "brute,hybrid",
                "--corpus",
                self.CORPUS,
                "--no-shrink",
                "--out",
                "",
            ]
        )
        assert rc == 0
        assert "no discrepancies" in capsys.readouterr().out

    def test_cli_missing_corpus_dir(self, capsys):
        from repro.cli import main

        rc = main(["fuzz", "--corpus", "/nonexistent/corpus/dir"])
        assert rc == 2
