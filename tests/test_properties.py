"""Deeper hypothesis property tests spanning multiple layers.

These complement the per-module unit tests with whole-pipeline invariants:

* the small-model property of the SD domains (an invalid formula has a
  countermodel whose class values fit the computed ranges);
* decoded countermodels are genuine models in every encoding;
* the encoders' ``F_bool`` is *equivalid* with the input (not merely
  equisatisfiable);
* translation invariance: renaming constants does not change validity;
* negation duality: formula valid implies its negation invalid (on
  satisfiable-negation cases).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import check_validity
from repro.encodings.hybrid import encode_eij, encode_hybrid, encode_sd
from repro.logic import builders as b
from repro.logic.semantics import Interpretation, evaluate
from repro.logic.terms import Var, clear_intern_cache
from repro.logic.traversal import collect_vars, map_terms
from repro.sat.solver import solve_cnf
from repro.sat.tseitin import to_cnf
from repro.separation.analysis import analyze_separation
from repro.solvers.brute import (
    BruteForceLimitExceeded,
    brute_force_countermodel_sep,
)
from repro.transform.func_elim import eliminate_applications

from helpers import random_sep_formula, random_suf_formula


class TestSmallModelProperty:
    """The paper's §2.1.2 claim: satisfiable separation formulas have
    models polynomially bounded by the formula — concretely, bounded by
    the per-class ranges the SD analysis computes."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_countermodel_fits_sd_ranges(self, seed):
        formula = random_sep_formula(seed, max_vars=3, depth=2)
        analysis = analyze_separation(formula)
        try:
            model = brute_force_countermodel_sep(formula, limit=100_000)
        except BruteForceLimitExceeded:
            return
        if model is None:
            return  # valid formula: nothing to check
        # The SD encoding searches values in [0, range-1] per class; it
        # must find *some* countermodel there, so SD must agree the
        # formula is invalid.
        result = check_validity(formula, method="sd")
        assert result.valid is False

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_decoded_sd_model_within_ranges(self, seed):
        formula = random_sep_formula(seed, max_vars=3, depth=2)
        result = check_validity(formula, method="sd")
        if result.valid is not False:
            return
        analysis = analyze_separation(formula)
        model = result.counterexample
        for vclass in analysis.classes:
            for var in vclass.vars:
                value = model.vars[var.name]
                assert 0 <= value < max(vclass.range_size, 1)


class TestEquivalidity:
    """F_bool = (F_trans => F_bvar) must be valid iff the input is."""

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_f_bool_validity_matches(self, seed):
        formula = random_sep_formula(seed, max_vars=3, depth=2)
        for encoder in (encode_sd, encode_eij, encode_hybrid):
            encoding = encoder(formula)
            sat_neg = solve_cnf(to_cnf(encoding.check_formula))
            via_encoding = sat_neg.is_unsat
            try:
                expected = (
                    brute_force_countermodel_sep(formula, limit=100_000)
                    is None
                )
            except BruteForceLimitExceeded:
                return
            assert via_encoding == expected, encoder.__name__


class TestRenamingInvariance:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    @given(seed=st.integers(0, 1_000_000))
    def test_validity_stable_under_renaming(self, seed):
        formula = random_suf_formula(seed, max_vars=3)
        renamed = map_terms(
            formula,
            lambda t: Var("renamed_" + t.name)
            if isinstance(t, Var)
            else t,
        )
        a = check_validity(formula, want_countermodel=False).valid
        c = check_validity(renamed, want_countermodel=False).valid
        assert a == c


class TestNegationDuality:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_not_both_valid(self, seed):
        formula = random_sep_formula(seed, max_vars=3, depth=2)
        a = check_validity(formula, want_countermodel=False).valid
        na = check_validity(b.bnot(formula), want_countermodel=False).valid
        assert not (a and na)


class TestCountermodelsAreModels:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000), method=st.sampled_from(
        ["sd", "eij", "hybrid", "static"]
    ))
    def test_every_method_decodes_real_countermodels(self, seed, method):
        formula = random_suf_formula(seed)
        result = check_validity(formula, method=method)
        if result.valid is False:
            assert not evaluate(formula, result.counterexample)


class TestFunctionTableConsistency:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_lifted_tables_are_functions(self, seed):
        formula = random_suf_formula(seed, max_funcs=2)
        result = check_validity(formula)
        if result.valid is not False:
            return
        model = result.counterexample
        for symbol, table in model.funcs.items():
            # A dict is a function by construction; check argument arity
            # is consistent within each table.
            arities = {len(args) for args in table}
            assert len(arities) <= 1, symbol
