"""Focused tests for countermodel decoding (repro.core.decision internals)."""

import pytest

from repro.core.decision import (
    check_validity,
    decode_countermodel,
    lift_countermodel,
)
from repro.encodings.hybrid import encode_eij, encode_sd
from repro.logic import builders as b
from repro.logic.semantics import evaluate, evaluate_term
from repro.sat.solver import solve_cnf
from repro.sat.tseitin import to_cnf
from repro.logic.terms import BoolVar
from repro.transform.func_elim import eliminate_applications


def boolvar_model(cnf, model):
    return {
        name: model[var]
        for var, name in cnf.names.items()
        if isinstance(name, BoolVar) and var in model
    }


class TestDecodeSd:
    def test_values_respect_atoms(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.bnot(b.band(b.lt(x, y), b.lt(y, z)))
        encoding = encode_sd(formula)
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat  # the formula is invalid
        model = decode_countermodel(
            encoding, boolvar_model(cnf, result.model)
        )
        assert model.vars["x"] < model.vars["y"] < model.vars["z"]


class TestDecodeEij:
    def test_bound_completion(self):
        x, y = b.const("x"), b.const("y")
        formula = b.bnot(b.lt(b.succ(x), y))  # invalid: pick y > x + 1
        encoding = encode_eij(formula)
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(encoding, boolvar_model(cnf, result.model))
        assert model.vars["x"] + 1 < model.vars["y"]

    def test_equality_partition(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        # Invalid: needs x = y but y != z.
        formula = b.bnot(b.band(b.eq(x, y), b.bnot(b.eq(y, z))))
        encoding = encode_eij(formula)
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(encoding, boolvar_model(cnf, result.model))
        assert model.vars["x"] == model.vars["y"]
        assert model.vars["y"] != model.vars["z"]


class TestLift:
    def test_function_table_matches_ite_semantics(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.bnot(
            b.band(b.eq(x, y), b.bnot(b.eq(f(x), f(y))))
        )
        # Valid (functional consistency): no countermodel.
        assert check_validity(formula).valid

        # An invalid variant: f(x) != f(y) is satisfiable when x != y.
        formula2 = b.eq(f(x), f(y))
        result = check_validity(formula2)
        assert result.valid is False
        model = result.counterexample
        fx = model.apply_func("f", (model.vars["x"],))
        fy = model.apply_func("f", (model.vars["y"],))
        assert fx != fy

    def test_predicate_tables_lifted(self):
        x, y = b.const("x"), b.const("y")
        p = b.pred_symbol("p")
        formula = b.implies(p(x), p(y))
        result = check_validity(formula)
        assert result.valid is False
        model = result.counterexample
        assert model.apply_pred("p", (model.vars["x"],)) is True
        assert model.apply_pred("p", (model.vars["y"],)) is False

    def test_lift_handles_vanished_arguments(self):
        # Single-occurrence application: its argument's constant vanishes
        # from F_sep entirely; the lift must still build a table.
        x, y = b.const("x"), b.const("y")
        g = b.func("g")
        formula = b.eq(g(b.succ(x)), y)
        result = check_validity(formula)
        assert result.valid is False
        model = result.counterexample
        assert not evaluate(formula, model)
        assert "x" in model.vars


class TestMixedClassDecoding:
    def test_sd_and_eij_classes_together(self):
        # Two classes: one pushed to SD by a tiny threshold, one kept EIJ.
        x, y = b.const("x"), b.const("y")
        u, v = b.const("u"), b.const("v")
        big = b.band(*[
            b.lt(b.offset(x, -i), b.offset(y, i)) for i in range(3)
        ])
        small = b.lt(u, v)
        formula = b.bnot(b.band(big, small))
        from repro.encodings.hybrid import encode_hybrid
        from repro.separation.analysis import analyze_separation

        analysis = analyze_separation(formula)
        counts = sorted(c.sep_count for c in analysis.classes)
        encoding = encode_hybrid(formula, sep_thold=counts[0])
        assert set(encoding.method_of_class.values()) == {"SD", "EIJ"}
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(encoding, boolvar_model(cnf, result.model))
        assert not evaluate(formula, model)
