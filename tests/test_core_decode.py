"""Focused tests for countermodel decoding (repro.core.decision internals)."""

import pytest

from repro.core.decision import (
    check_validity,
    decode_countermodel,
    lift_countermodel,
)
from repro.encodings.hybrid import encode_eij, encode_sd
from repro.logic import builders as b
from repro.logic.semantics import evaluate, evaluate_term
from repro.sat.solver import solve_cnf
from repro.sat.tseitin import to_cnf
from repro.logic.terms import BoolVar
from repro.logic.traversal import collect_vars
from repro.transform.func_elim import eliminate_applications


def boolvar_model(cnf, model):
    return {
        name: model[var]
        for var, name in cnf.names.items()
        if isinstance(name, BoolVar) and var in model
    }


class TestDecodeSd:
    def test_values_respect_atoms(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.bnot(b.band(b.lt(x, y), b.lt(y, z)))
        encoding = encode_sd(formula)
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat  # the formula is invalid
        model = decode_countermodel(
            encoding, boolvar_model(cnf, result.model)
        )
        assert model.vars["x"] < model.vars["y"] < model.vars["z"]


class TestDecodeEij:
    def test_bound_completion(self):
        x, y = b.const("x"), b.const("y")
        formula = b.bnot(b.lt(b.succ(x), y))  # invalid: pick y > x + 1
        encoding = encode_eij(formula)
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(encoding, boolvar_model(cnf, result.model))
        assert model.vars["x"] + 1 < model.vars["y"]

    def test_equality_partition(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        # Invalid: needs x = y but y != z.
        formula = b.bnot(b.band(b.eq(x, y), b.bnot(b.eq(y, z))))
        encoding = encode_eij(formula)
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(encoding, boolvar_model(cnf, result.model))
        assert model.vars["x"] == model.vars["y"]
        assert model.vars["y"] != model.vars["z"]


class TestLift:
    def test_function_table_matches_ite_semantics(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.bnot(
            b.band(b.eq(x, y), b.bnot(b.eq(f(x), f(y))))
        )
        # Valid (functional consistency): no countermodel.
        assert check_validity(formula).valid

        # An invalid variant: f(x) != f(y) is satisfiable when x != y.
        formula2 = b.eq(f(x), f(y))
        result = check_validity(formula2)
        assert result.valid is False
        model = result.counterexample
        fx = model.apply_func("f", (model.vars["x"],))
        fy = model.apply_func("f", (model.vars["y"],))
        assert fx != fy

    def test_predicate_tables_lifted(self):
        x, y = b.const("x"), b.const("y")
        p = b.pred_symbol("p")
        formula = b.implies(p(x), p(y))
        result = check_validity(formula)
        assert result.valid is False
        model = result.counterexample
        assert model.apply_pred("p", (model.vars["x"],)) is True
        assert model.apply_pred("p", (model.vars["y"],)) is False

    def test_lift_handles_vanished_arguments(self):
        # Single-occurrence application: its argument's constant vanishes
        # from F_sep entirely; the lift must still build a table.
        x, y = b.const("x"), b.const("y")
        g = b.func("g")
        formula = b.eq(g(b.succ(x)), y)
        result = check_validity(formula)
        assert result.valid is False
        model = result.counterexample
        assert not evaluate(formula, model)
        assert "x" in model.vars


class TestEqualityOnlyClasses:
    """Equality-only EIJ classes decode through the eq-var union-find,
    not through difference bounds (`_decode_equality_class`)."""

    def test_transitive_merge_collapses_to_one_value(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        # Falsified by x = y = z: both eq-vars true, one merged group.
        formula = b.bnot(b.band(b.eq(x, y), b.eq(y, z)))
        encoding = encode_eij(formula)
        assert encoding.uses_eq_vars
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(
            encoding, boolvar_model(cnf, result.model)
        )
        assert model.vars["x"] == model.vars["y"] == model.vars["z"]

    def test_all_false_eq_vars_stay_distinct(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        # Falsified only when all three constants are pairwise distinct.
        formula = b.bor(b.eq(x, y), b.eq(y, z), b.eq(x, z))
        encoding = encode_eij(formula)
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(
            encoding, boolvar_model(cnf, result.model)
        )
        assert len({model.vars[n] for n in ("x", "y", "z")}) == 3
        assert not evaluate(formula, model)

    def test_uncompared_constant_defaults(self):
        # A constant never compared in any atom still gets a value.
        x, y, w = b.const("x"), b.const("y"), b.const("w")
        formula = b.band(b.eq(x, y), b.eq(w, w))  # w folds away
        encoding = encode_eij(formula)
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(
            encoding, boolvar_model(cnf, result.model)
        )
        assert not evaluate(formula, model)


class TestPureVpOffsetAtoms:
    """Atoms comparing only positive-equality (V_p) constants — possibly
    through offsets — are recorded by no separation class; the maximal-
    diversity spacing must still exceed every offset in the formula."""

    def test_offset_between_two_vp_constants(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        # f(x) and f(y) become V_p constants; the atom compares them
        # through an offset larger than any class-recorded span.
        formula = b.eq(f(x), b.offset(f(y), 7))
        result = check_validity(formula, method="hybrid")
        assert result.valid is False
        assert not evaluate(formula, result.counterexample)

    def test_vp_spacing_exceeds_offsets(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.eq(f(x), b.offset(f(y), 7))
        f_sep, _ = eliminate_applications(formula)
        encoding = encode_eij(f_sep)
        analysis = encoding.analysis
        assert len(analysis.p_vars) >= 2
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(
            encoding, boolvar_model(cnf, result.model)
        )
        p_values = sorted(
            model.vars[v.name] for v in analysis.p_vars
        )
        for lo, hi in zip(p_values, p_values[1:]):
            assert hi - lo > 7  # spacing beats the largest offset
        assert not evaluate(f_sep, model)

    def test_vp_values_clear_general_values(self):
        x, y, u = b.const("x"), b.const("y"), b.const("u")
        f = b.func("f")
        formula = b.implies(b.lt(u, x), b.eq(f(x), b.offset(f(y), 3)))
        result = check_validity(formula, method="eij")
        assert result.valid is False
        assert not evaluate(formula, result.counterexample)


class TestSingleOccurrenceApplications:
    """The first occurrence of ``f(a)`` is replaced by its fresh constant
    alone, so ``a``'s constants can vanish from F_sep; the lift must
    re-materialize them (with defaults) to build the table key."""

    def test_nested_single_occurrences(self):
        x, y = b.const("x"), b.const("y")
        f, g = b.func("f"), b.func("g")
        formula = b.eq(g(f(x)), y)
        result = check_validity(formula)
        assert result.valid is False
        model = result.counterexample
        assert not evaluate(formula, model)
        # The chain must be table-consistent: g(f(x)) evaluated through
        # the lifted tables equals the value the atom was decided on.
        fx = model.apply_func("f", (evaluate_term(x, model),))
        gfx = model.apply_func("g", (fx,))
        assert gfx != model.vars["y"]

    def test_single_occurrence_predicate(self):
        x = b.const("x")
        p = b.pred_symbol("p")
        formula = p(b.succ(x))
        result = check_validity(formula)
        assert result.valid is False
        model = result.counterexample
        assert not evaluate(formula, model)
        assert model.apply_pred("p", (model.vars["x"] + 1,)) is False

    def test_lift_defaults_vanished_constants_directly(self):
        from repro.logic.semantics import Interpretation

        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.eq(f(x), y)
        f_sep, info = eliminate_applications(formula)
        # A sep-level model that only mentions what survives in F_sep.
        sep_names = {v.name for v in collect_vars(f_sep)}
        assert "x" not in sep_names  # x vanished with the single occurrence
        sep_model = Interpretation(
            vars={name: 5 for name in sep_names}, bools={}
        )
        lifted = lift_countermodel(info, f_sep, sep_model)
        assert "x" in lifted.vars  # defaulted, not KeyError
        assert lifted.apply_func("f", (lifted.vars["x"],)) == 5


class TestMixedClassDecoding:
    def test_sd_and_eij_classes_together(self):
        # Two classes: one pushed to SD by a tiny threshold, one kept EIJ.
        x, y = b.const("x"), b.const("y")
        u, v = b.const("u"), b.const("v")
        big = b.band(*[
            b.lt(b.offset(x, -i), b.offset(y, i)) for i in range(3)
        ])
        small = b.lt(u, v)
        formula = b.bnot(b.band(big, small))
        from repro.encodings.hybrid import encode_hybrid
        from repro.separation.analysis import analyze_separation

        analysis = analyze_separation(formula)
        counts = sorted(c.sep_count for c in analysis.classes)
        encoding = encode_hybrid(formula, sep_thold=counts[0])
        assert set(encoding.method_of_class.values()) == {"SD", "EIJ"}
        cnf = to_cnf(encoding.check_formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        model = decode_countermodel(encoding, boolvar_model(cnf, result.model))
        assert not evaluate(formula, model)
