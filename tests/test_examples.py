"""Smoke tests: the example scripts import cleanly and the quick ones run.

The long-running examples (`encoding_comparison`, `queue_invariant`) are
only import-checked here; they are exercised manually / by the benchmark
harness.
"""

import importlib.util
import io
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

ALL_EXAMPLES = [
    "quickstart",
    "pipeline_verification",
    "queue_invariant",
    "translation_validation",
    "encoding_comparison",
    "smtlib_interop",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)

    @pytest.mark.parametrize("name", ["quickstart", "smtlib_interop"])
    def test_quick_examples_run(self, name):
        module = load_example(name)
        old_stdout = sys.stdout
        sys.stdout = io.StringIO()
        try:
            module.main()
            output = sys.stdout.getvalue()
        finally:
            sys.stdout = old_stdout
        assert "VALID" in output or "unsat" in output
