"""Per-family structural tests for the benchmark generators.

`test_benchgen.py` covers validity and suite shape; this file pins down
the *qualitative features* each family must exhibit, because the paper's
evaluation story depends on them (DESIGN.md §4).
"""

import pytest

from repro.benchgen import (
    make_cache,
    make_driver,
    make_invariant,
    make_loadstore,
    make_ooo,
    make_pipeline,
    make_transval,
)
from repro.logic.traversal import collect_atoms, dag_size, iter_dag
from repro.logic.terms import Lt
from repro.separation.analysis import analyze_separation
from repro.transform.func_elim import eliminate_applications


def analysis_of(bench):
    f_sep, _ = eliminate_applications(bench.formula)
    return analyze_separation(f_sep)


class TestPipelineFamily:
    def test_grows_with_stages(self):
        sizes = [
            make_pipeline(stages=s, reads=2, seed=1).dag_size
            for s in (2, 4, 6)
        ]
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]

    def test_equality_only_classes(self):
        analysis = analysis_of(make_pipeline(stages=4, reads=2, seed=1))
        assert analysis.classes
        for vclass in analysis.classes:
            assert not vclass.has_inequality
            assert not vclass.has_offset

    def test_has_p_functions(self):
        analysis = analysis_of(make_pipeline(stages=3, reads=2, seed=1))
        # The top-level ALU results are positive-equality applications;
        # everything feeding the bypass comparisons is general (their
        # equalities sit in ITE conditions, which are bipolar).
        assert len(analysis.p_vars) == 2
        assert all(v.name.startswith("$vf") for v in analysis.p_vars)


class TestLoadstoreFamily:
    def test_mixed_character(self):
        analysis = analysis_of(
            make_loadstore(entries=4, pointers=8, seed=1)
        )
        kinds = {
            (c.has_inequality or c.has_offset) for c in analysis.classes
        }
        assert kinds == {True, False}  # one pointer class, one address class


class TestOooFamily:
    def test_sepcnt_grows_quadratically(self):
        small = analysis_of(make_ooo(tags=6, seed=1)).total_sep_count()
        large = analysis_of(make_ooo(tags=12, seed=1)).total_sep_count()
        assert large > 3 * small

    def test_single_tag_class(self):
        analysis = analysis_of(make_ooo(tags=8, seed=1))
        big = max(analysis.classes, key=lambda c: len(c.vars))
        assert len(big.vars) >= 8
        assert big.has_inequality


class TestCacheFamily:
    def test_disjunctive_and_equality_only(self):
        bench = make_cache(caches=3, seed=1)
        analysis = analysis_of(bench)
        for vclass in analysis.classes:
            assert not vclass.has_inequality
        from repro.logic.terms import Or

        assert any(
            isinstance(n, Or) for n in iter_dag(bench.formula)
        )

    def test_mutation_is_missing_invalidate(self):
        good = make_cache(caches=3, seed=1)
        bad = make_cache(caches=3, seed=1, valid=False)
        assert good.formula is not bad.formula
        assert bad.dag_size < good.dag_size  # the guard ITE was dropped


class TestDriverFamily:
    def test_counter_class_has_offsets(self):
        analysis = analysis_of(make_driver(steps=6, seed=1))
        big = max(analysis.classes, key=lambda c: len(c.vars))
        assert big.has_offset
        assert big.has_inequality

    def test_boolean_lock_state_present(self):
        from repro.logic.traversal import collect_bool_vars

        bench = make_driver(steps=4, seed=1)
        assert len(collect_bool_vars(bench.formula)) >= 4


class TestTransvalFamily:
    def test_size_parameter_scales(self):
        small = make_transval(size=2, inputs=3, seed=1).dag_size
        large = make_transval(size=12, inputs=3, seed=1).dag_size
        assert large > small

    def test_equality_only(self):
        analysis = analysis_of(make_transval(size=4, inputs=4, seed=1))
        for vclass in analysis.classes:
            assert not vclass.has_inequality
            assert not vclass.has_offset

    def test_sepcnt_capped_by_pairs(self):
        analysis = analysis_of(make_transval(size=4, inputs=4, seed=1))
        for vclass in analysis.classes:
            n = len(vclass.vars)
            assert vclass.sep_count <= n * (n - 1) // 2


class TestInvariantFamily:
    def test_low_sepcnt_large_class(self):
        analysis = analysis_of(make_invariant(cells=12, seed=1))
        assert len(analysis.classes) == 1
        vclass = analysis.classes[0]
        # The paper's regime: few predicates, many constants.
        assert vclass.sep_count < 100
        assert len(vclass.vars) >= 14

    def test_inequality_dominated(self):
        bench = make_invariant(cells=8, seed=1)
        atoms = collect_atoms(bench.formula)
        lt_atoms = [a for a in atoms if isinstance(a, Lt)]
        assert len(lt_atoms) >= len(atoms) * 0.8

    def test_no_p_functions(self):
        analysis = analysis_of(make_invariant(cells=8, seed=1))
        assert not analysis.p_vars

    def test_deterministic_gap_diversity(self):
        # Distinct gap constants are what break the per-constraint method;
        # the generator must produce several distinct offsets.
        from repro.logic.terms import Offset

        bench = make_invariant(cells=10, seed=1)
        offsets = {
            n.k for n in iter_dag(bench.formula) if isinstance(n, Offset)
        }
        assert len(offsets) >= 4
