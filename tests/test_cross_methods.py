"""The repository's central property test: every decision procedure agrees.

Six independent implementations — brute-force enumeration, the three eager
encodings (SD, EIJ, HYBRID), the static hybrid, the lazy refinement loop,
and the SVC-style case splitter — are run on randomly generated SUF
formulas and must return the same verdict.  Counterexamples produced by
the eager procedures must falsify the original formula under the reference
semantics.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import check_validity
from repro.logic.semantics import evaluate
from repro.solvers.brute import (
    BruteForceLimitExceeded,
    brute_force_valid,
)
from repro.solvers.lazy import check_validity_lazy
from repro.solvers.svclike import check_validity_svc

from helpers import random_sep_formula, random_suf_formula


EAGER_METHODS = ("sd", "eij", "hybrid", "static")


def oracle(formula):
    try:
        return brute_force_valid(formula, limit=200_000)
    except BruteForceLimitExceeded:
        return None


class TestEagerAgainstBruteForce:
    @settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    @given(seed=st.integers(0, 1_000_000))
    def test_suf_formulas(self, seed):
        formula = random_suf_formula(seed)
        expected = oracle(formula)
        if expected is None:
            return
        for method in EAGER_METHODS:
            result = check_validity(formula, method=method)
            assert result.valid == expected, (method, formula)
            if result.valid is False:
                assert not evaluate(formula, result.counterexample), (
                    method,
                    formula,
                )

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_separation_formulas(self, seed):
        formula = random_sep_formula(seed, max_vars=4, depth=3)
        expected = oracle(formula)
        if expected is None:
            return
        for method in EAGER_METHODS:
            assert check_validity(formula, method=method).valid == expected


class TestBaselinesAgainstBruteForce:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_lazy_and_svc(self, seed):
        formula = random_suf_formula(seed)
        expected = oracle(formula)
        if expected is None:
            return
        lazy = check_validity_lazy(formula)
        assert lazy.valid == expected, ("lazy", formula)
        if lazy.valid is False and lazy.counterexample is not None:
            assert not evaluate(formula, lazy.counterexample)
        svc = check_validity_svc(formula, max_splits=200_000)
        assert svc.valid == expected, ("svc", formula)


class TestAllSixAgree:
    """A direct pairwise-agreement run on a fixed seed batch (fast, no
    oracle needed — disagreement between any two is a failure).  The
    baselines may hit their resource limits on adversarial random
    formulas; a limited run (``None``) is excluded from the comparison
    rather than treated as a verdict."""

    @pytest.mark.parametrize("seed", range(0, 30))
    def test_verdicts_match(self, seed):
        formula = random_suf_formula(seed * 7919 + 13)
        verdicts = {}
        for method in EAGER_METHODS:
            verdicts[method] = check_validity(
                formula, method=method, want_countermodel=False
            ).valid
        assert len(set(verdicts.values())) == 1, verdicts
        eager = next(iter(verdicts.values()))
        lazy = check_validity_lazy(
            formula, time_limit=30.0, want_countermodel=False
        ).valid
        if lazy is not None:
            assert lazy == eager
        svc = check_validity_svc(
            formula,
            time_limit=30.0,
            max_splits=100_000,
            want_countermodel=False,
        ).valid
        if svc is not None:
            assert svc == eager
