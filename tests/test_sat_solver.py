"""CDCL solver tests: hand cases, hypothesis vs brute force, hard instances."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver, solve_cnf, _luby


def brute_force_sat(cnf):
    for bits in itertools.product((False, True), repeat=cnf.num_vars):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
            for clause in cnf.clauses
        ):
            return True
    return False


def make_cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    cnf.add_clauses(clauses)
    return cnf


def check_model(cnf, model):
    for clause in cnf.clauses:
        assert any((lit > 0) == model[abs(lit)] for lit in clause), clause


class TestBasics:
    def test_empty_cnf_is_sat(self):
        assert solve_cnf(Cnf()).is_sat

    def test_unit_propagation(self):
        cnf = make_cnf(3, [[1], [-1, 2], [-2, 3]])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model == {1: True, 2: True, 3: True}

    def test_trivially_unsat(self):
        cnf = make_cnf(1, [[1], [-1]])
        assert solve_cnf(cnf).is_unsat

    def test_empty_clause_unsat(self):
        cnf = make_cnf(1, [[]])
        assert solve_cnf(cnf).is_unsat

    def test_tautological_clause_ignored(self):
        cnf = make_cnf(2, [[1, -1], [2]])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[2]

    def test_duplicate_literals_handled(self):
        cnf = make_cnf(2, [[1, 1, 2], [-1, -1], [2, 2]])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model == {1: False, 2: True}

    def test_model_satisfies_clauses(self):
        cnf = make_cnf(
            4, [[1, 2], [-1, 3], [-2, -3], [3, 4], [-4, 1], [2, 3, 4]]
        )
        result = solve_cnf(cnf)
        assert result.is_sat
        check_model(cnf, result.model)


class TestLuby:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [_luby(i) for i in range(1, 16)] == expected


def php(pigeons, holes):
    """Pigeonhole CNF: UNSAT when pigeons > holes."""
    cnf = Cnf()
    var = {
        (p, h): cnf.new_var()
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class TestHardInstances:
    def test_pigeonhole_unsat(self):
        result = solve_cnf(php(6, 5))
        assert result.is_unsat
        assert result.stats.conflicts > 10  # genuinely needed search

    def test_pigeonhole_sat(self):
        result = solve_cnf(php(5, 5))
        assert result.is_sat
        check_model(php(5, 5), result.model)

    def test_conflict_limit_returns_unknown(self):
        result = solve_cnf(php(7, 6), max_conflicts=5)
        assert result.status == "UNKNOWN"

    def test_time_limit_returns_unknown(self):
        result = solve_cnf(php(9, 8), time_limit=0.01)
        assert result.status in ("UNKNOWN", "UNSAT")

    def test_stats_populated(self):
        result = solve_cnf(php(6, 5))
        stats = result.stats
        assert stats.decisions > 0
        assert stats.propagations > 0
        assert stats.learned_clauses > 0
        assert stats.conflicts >= stats.learned_clauses
        assert stats.time_seconds > 0


class TestRandomizedAgainstBruteForce:
    @settings(max_examples=300, deadline=None)
    @given(data=st.data())
    def test_random_3cnf(self, data):
        num_vars = data.draw(st.integers(1, 8), label="vars")
        num_clauses = data.draw(st.integers(0, 35), label="clauses")
        lit = st.integers(1, num_vars).flatmap(
            lambda v: st.sampled_from([v, -v])
        )
        clauses = data.draw(
            st.lists(
                st.lists(lit, min_size=1, max_size=3),
                min_size=0,
                max_size=num_clauses,
            ),
            label="cnf",
        )
        cnf = make_cnf(num_vars, clauses)
        expected = brute_force_sat(cnf)
        result = solve_cnf(cnf)
        assert result.is_sat == expected
        if result.is_sat:
            check_model(cnf, result.model)


class TestClauseDatabaseReduction:
    def test_long_run_with_reduction_stays_correct(self):
        # A larger pigeonhole forces many learned clauses and at least
        # exercises the reduce/restart machinery.
        result = solve_cnf(php(8, 7))
        assert result.is_unsat


class TestLbdRetention:
    """Glucose-style LBD-aware learned-clause retention in _reduce_db."""

    @staticmethod
    def _solver_with_learned(specs):
        """Build a solver over fresh vars and inject learned clauses.

        ``specs`` is a list of (lits, lbd, activity) triples; clauses are
        placed straight into the arena with the given header metadata.
        """
        from repro.sat.cnf import pack_clause
        from repro.sat.solver import FLAG_LEARNED

        nvars = max(abs(l) for lits, _, _ in specs for l in lits)
        cnf = Cnf()
        for _ in range(nvars):
            cnf.new_var()
        solver = CdclSolver(cnf)
        for lits, lbd, activity in specs:
            ref = solver._alloc(pack_clause(lits), FLAG_LEARNED, lbd)
            solver.arena[ref + 3] = activity
            solver.learned_refs.append(ref)
            solver._watch_clause(ref)
        return solver

    def test_glue_clauses_survive_reduction(self):
        # Six learned clauses, half must go; the low-LBD ("glue") ones
        # are exempt no matter how stale their activity is.
        from repro.sat.solver import FLAG_DEAD

        specs = [
            ([1, 2, 3], 2, 0.0),   # glue: immortal
            ([2, 3, 4], 3, 0.0),   # glue boundary: immortal
            ([3, 4, 5], 7, 0.0),   # high LBD, cold: deleted
            ([4, 5, 6], 8, 0.0),   # high LBD, cold: deleted
            ([5, 6, 7], 9, 0.0),   # high LBD, cold: deleted
            ([6, 7, 8], 4, 5.0),   # above glue but hot: survives (2nd half)
        ]
        solver = self._solver_with_learned(specs)
        solver._reduce_db()
        kept = {tuple(c) for c in solver.learned_signed()}
        assert (1, 2, 3) in kept
        assert (2, 3, 4) in kept
        assert solver.stats.deleted_clauses == 3
        # Deleted clauses must also be gone from every watch list.
        for refs in solver.watch_refs + solver.bin_refs:
            for ref in refs:
                assert solver.arena[ref + 1] != FLAG_DEAD

    def test_binary_learned_clauses_never_deleted(self):
        specs = [([1, 2], 9, 0.0)] + [
            ([i, i + 1, i + 2], 9, float(i)) for i in range(1, 7)
        ]
        solver = self._solver_with_learned(specs)
        solver._reduce_db()
        assert (1, 2) in {tuple(c) for c in solver.learned_signed()}

    def test_lbd_stamped_on_learned_clauses(self):
        # Pigeonhole generates plenty of conflicts; every learned clause
        # must carry a positive LBD once search finishes.
        result = solve_cnf(php(5, 4))
        assert result.is_unsat
        assert result.stats.learned_clauses > 0

    def test_propagation_with_blockers_still_correct(self):
        # The blocking-literal fast path must not change verdicts on a
        # propagation-heavy chain instance.
        n = 40
        clauses = [[1]] + [[-i, i + 1] for i in range(1, n)]
        result = solve_cnf(make_cnf(n, clauses))
        assert result.is_sat
        assert all(result.model[v] for v in range(1, n + 1))
