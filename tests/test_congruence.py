"""Congruence-closure substrate tests."""

import pytest

from repro.logic import builders as b
from repro.theory.congruence import CongruenceClosure


class TestBasicClosure:
    def test_merge_and_query(self):
        cc = CongruenceClosure()
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        cc.merge(x, y)
        assert cc.equal(x, y)
        assert not cc.equal(x, z)
        cc.merge(y, z)
        assert cc.equal(x, z)

    def test_congruence_propagates(self):
        cc = CongruenceClosure()
        f = b.func("f")
        x, y = b.const("x"), b.const("y")
        cc.add_term(f(x))
        cc.add_term(f(y))
        assert not cc.equal(f(x), f(y))
        cc.merge(x, y)
        assert cc.equal(f(x), f(y))

    def test_nested_congruence(self):
        cc = CongruenceClosure()
        f = b.func("f")
        x, y = b.const("x"), b.const("y")
        cc.add_term(f(f(x)))
        cc.add_term(f(f(y)))
        cc.merge(x, y)
        assert cc.equal(f(f(x)), f(f(y)))

    def test_multi_arity(self):
        cc = CongruenceClosure()
        g = b.func("g")
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        cc.add_term(g(x, z))
        cc.add_term(g(y, z))
        cc.merge(x, y)
        assert cc.equal(g(x, z), g(y, z))
        assert not cc.equal(g(x, z), g(z, x))

    def test_offsets_as_wrappers(self):
        cc = CongruenceClosure()
        x, y = b.const("x"), b.const("y")
        cc.add_term(b.succ(x))
        cc.add_term(b.succ(y))
        cc.merge(x, y)
        assert cc.equal(b.succ(x), b.succ(y))
        assert not cc.equal(b.succ(x), b.offset(x, 2))

    def test_ite_rejected(self):
        cc = CongruenceClosure()
        x, y = b.const("x"), b.const("y")
        with pytest.raises(ValueError):
            cc.add_term(b.ite(b.eq(x, y), x, y))


class TestDisequalities:
    def test_consistency(self):
        cc = CongruenceClosure()
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        cc.assert_diseq(x, y)
        assert cc.consistent()
        cc.merge(y, z)
        cc.merge(x, z)
        assert not cc.consistent()
        assert cc.first_conflict() == (x, y)

    def test_functional_consistency_conflict(self):
        # The classic: x = y, f(x) != f(y) is inconsistent.
        cc = CongruenceClosure()
        f = b.func("f")
        x, y = b.const("x"), b.const("y")
        cc.assert_diseq(f(x), f(y))
        cc.merge(x, y)
        assert not cc.consistent()

    def test_no_conflict_when_distinct(self):
        cc = CongruenceClosure()
        f = b.func("f")
        x, y = b.const("x"), b.const("y")
        cc.assert_diseq(f(x), f(y))
        assert cc.consistent()
        assert cc.first_conflict() is None


class TestAgainstFuncElim:
    """Conjunctive EUF problems: congruence closure agrees with the eager
    pipeline (an independent cross-check of function elimination)."""

    @pytest.mark.parametrize(
        "eqs,diseqs,expect_consistent",
        [
            # x=y, y=z, f(x)!=f(z): inconsistent
            ([("x", "y"), ("y", "z")], [("fx", "fz")], False),
            # x=y, f(x)!=f(z): consistent
            ([("x", "y")], [("fx", "fz")], True),
            # f(x)=x, f(f(x))!=x ... f(f(x)) = f(x) = x: inconsistent
            ([("fx", "x")], [("ffx", "x")], False),
        ],
    )
    def test_euf_conjunctions(self, eqs, diseqs, expect_consistent):
        f = b.func("f")
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        terms = {
            "x": x,
            "y": y,
            "z": z,
            "fx": f(x),
            "fy": f(y),
            "fz": f(z),
            "ffx": f(f(x)),
        }
        cc = CongruenceClosure()
        literals = []
        for lhs, rhs in eqs:
            cc.merge(terms[lhs], terms[rhs])
            literals.append(b.eq(terms[lhs], terms[rhs]))
        for lhs, rhs in diseqs:
            cc.assert_diseq(terms[lhs], terms[rhs])
            literals.append(b.bnot(b.eq(terms[lhs], terms[rhs])))
        assert cc.consistent() == expect_consistent

        # Cross-check with the eager decision procedure: the conjunction
        # is satisfiable iff its negation is not valid.
        from repro.core import check_validity

        result = check_validity(b.bnot(b.band(*literals)))
        assert result.valid == (not expect_consistent)
