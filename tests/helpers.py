"""Shared test utilities: random SUF formula generation and oracles."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.logic import builders as b
from repro.logic.terms import Formula, Term


def random_term(rng: random.Random, vars_, funcs, depth: int) -> Term:
    if depth == 0 or rng.random() < 0.4:
        term = rng.choice(vars_)
    else:
        choice = rng.random()
        if choice < 0.4 and funcs:
            func = rng.choice(funcs)
            term = func(random_term(rng, vars_, funcs, depth - 1))
        elif choice < 0.7:
            term = b.ite(
                random_formula(rng, vars_, funcs, [], depth - 1),
                random_term(rng, vars_, funcs, depth - 1),
                random_term(rng, vars_, funcs, depth - 1),
            )
        else:
            term = random_term(rng, vars_, funcs, depth - 1)
    if rng.random() < 0.4:
        term = b.offset(term, rng.randint(-2, 2))
    return term


def random_formula(rng: random.Random, vars_, funcs, bools, depth: int) -> Formula:
    if depth == 0 or rng.random() < 0.35:
        choice = rng.random()
        if choice < 0.45 or (choice >= 0.8 and not bools):
            return b.eq(
                random_term(rng, vars_, funcs, depth),
                random_term(rng, vars_, funcs, depth),
            )
        if choice < 0.8:
            return b.lt(
                random_term(rng, vars_, funcs, depth),
                random_term(rng, vars_, funcs, depth),
            )
        return rng.choice(bools)
    choice = rng.random()
    if choice < 0.25:
        return b.bnot(random_formula(rng, vars_, funcs, bools, depth - 1))
    if choice < 0.5:
        return b.band(
            random_formula(rng, vars_, funcs, bools, depth - 1),
            random_formula(rng, vars_, funcs, bools, depth - 1),
        )
    if choice < 0.75:
        return b.bor(
            random_formula(rng, vars_, funcs, bools, depth - 1),
            random_formula(rng, vars_, funcs, bools, depth - 1),
        )
    if choice < 0.9:
        return b.implies(
            random_formula(rng, vars_, funcs, bools, depth - 1),
            random_formula(rng, vars_, funcs, bools, depth - 1),
        )
    return b.iff(
        random_formula(rng, vars_, funcs, bools, depth - 1),
        random_formula(rng, vars_, funcs, bools, depth - 1),
    )


def random_suf_formula(
    seed: int,
    max_vars: int = 3,
    max_funcs: int = 2,
    max_bools: int = 1,
    depth: Optional[int] = None,
) -> Formula:
    """A deterministic random SUF formula for cross-method testing."""
    rng = random.Random(seed)
    vars_ = [b.const("v%d" % i) for i in range(rng.randint(1, max_vars))]
    funcs = [b.func("f"), b.func("g")][: rng.randint(0, max_funcs)]
    bools = [b.bconst("P"), b.bconst("Q")][: rng.randint(0, max_bools)]
    if depth is None:
        depth = rng.randint(1, 3)
    return random_formula(rng, vars_, funcs, bools, depth)


def random_sep_formula(seed: int, max_vars: int = 4, depth: int = 3) -> Formula:
    """A random application-free separation-logic formula."""
    rng = random.Random(seed)
    vars_ = [b.const("s%d" % i) for i in range(rng.randint(1, max_vars))]
    return random_formula(rng, vars_, [], [b.bconst("B")], depth)
