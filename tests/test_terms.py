"""Unit tests for the hash-consed AST (:mod:`repro.logic.terms`)."""

import pytest

from repro.logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    FALSE,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Not,
    Offset,
    Or,
    PredApp,
    TRUE,
    Var,
)


class TestHashConsing:
    def test_vars_are_interned(self):
        assert Var("x") is Var("x")
        assert Var("x") is not Var("y")

    def test_compound_nodes_are_interned(self):
        x, y = Var("x"), Var("y")
        assert Eq(x, y) is Eq(x, y)
        assert And(Eq(x, y), Lt(x, y)) is And(Eq(x, y), Lt(x, y))

    def test_structural_equality_and_hash(self):
        x, y = Var("x"), Var("y")
        a = Or(Eq(x, y), Lt(y, x))
        c = Or(Eq(x, y), Lt(y, x))
        assert a == c
        assert hash(a) == hash(c)

    def test_uids_are_unique_and_ordered(self):
        a = Var("uid_a")
        c = Var("uid_c")
        assert a.uid != c.uid


class TestOffsets:
    def test_zero_offset_is_identity(self):
        x = Var("x")
        assert Offset(x, 0) is x

    def test_nested_offsets_collapse(self):
        x = Var("x")
        assert Offset(Offset(x, 3), -1) is Offset(x, 2)
        assert Offset(Offset(x, 2), -2) is x

    def test_succ_pred_cancel(self):
        # The paper's rewrite rules succ(pred(T)) -> T hold structurally.
        x = Var("x")
        assert Offset(Offset(x, -1), 1) is x

    def test_offset_requires_term(self):
        with pytest.raises(TypeError):
            Offset(TRUE, 1)


class TestIte:
    def test_constant_condition_collapses(self):
        x, y = Var("x"), Var("y")
        assert Ite(TRUE, x, y) is x
        assert Ite(FALSE, x, y) is y

    def test_equal_branches_collapse(self):
        x, y = Var("x"), Var("y")
        assert Ite(Eq(x, y), x, x) is x

    def test_type_checks(self):
        x, y = Var("x"), Var("y")
        with pytest.raises(TypeError):
            Ite(x, x, y)
        with pytest.raises(TypeError):
            Ite(Eq(x, y), TRUE, y)


class TestBooleanSimplification:
    def test_not_involution(self):
        p = BoolVar("p")
        assert Not(Not(p)) is p
        assert Not(TRUE) is FALSE
        assert Not(FALSE) is TRUE

    def test_and_flattening_and_units(self):
        p, q, r = BoolVar("p"), BoolVar("q"), BoolVar("r")
        assert And(p, And(q, r)) is And(p, q, r)
        assert And(p, TRUE) is p
        assert And(p, FALSE) is FALSE
        assert And() is TRUE
        assert And(p, p) is p

    def test_or_flattening_and_units(self):
        p, q, r = BoolVar("p"), BoolVar("q"), BoolVar("r")
        assert Or(p, Or(q, r)) is Or(p, q, r)
        assert Or(p, FALSE) is p
        assert Or(p, TRUE) is TRUE
        assert Or() is FALSE
        assert Or(p, p) is p

    def test_implies_units(self):
        p, q = BoolVar("p"), BoolVar("q")
        assert Implies(TRUE, p) is p
        assert Implies(FALSE, p) is TRUE
        assert Implies(p, TRUE) is TRUE
        assert Implies(p, FALSE) is Not(p)

    def test_iff_units(self):
        p, q = BoolVar("p"), BoolVar("q")
        assert Iff(TRUE, p) is p
        assert Iff(p, TRUE) is p
        assert Iff(FALSE, p) is Not(p)
        assert Iff(p, p) is TRUE

    def test_bool_const_identity(self):
        assert BoolConst(True) is TRUE
        assert BoolConst(False) is FALSE


class TestAtomFolding:
    def test_eq_reflexive(self):
        x = Var("x")
        assert Eq(x, x) is TRUE

    def test_eq_same_base_offsets_fold(self):
        x = Var("x")
        assert Eq(Offset(x, 2), Offset(x, 2)) is TRUE
        assert Eq(Offset(x, 1), Offset(x, 3)) is FALSE
        assert Eq(x, Offset(x, 1)) is FALSE

    def test_eq_canonical_order(self):
        x, y = Var("x"), Var("y")
        assert Eq(x, y) is Eq(y, x)

    def test_lt_irreflexive(self):
        x = Var("x")
        assert Lt(x, x) is FALSE

    def test_lt_same_base_offsets_fold(self):
        x = Var("x")
        assert Lt(x, Offset(x, 1)) is TRUE
        assert Lt(Offset(x, 1), x) is FALSE
        assert Lt(Offset(x, -3), Offset(x, -1)) is TRUE


class TestApplications:
    def test_func_app_needs_args(self):
        with pytest.raises(ValueError):
            FuncApp("f", [])

    def test_pred_app_needs_args(self):
        with pytest.raises(ValueError):
            PredApp("p", [])

    def test_func_app_arg_types(self):
        with pytest.raises(TypeError):
            FuncApp("f", [TRUE])

    def test_children(self):
        x, y = Var("x"), Var("y")
        app = FuncApp("f", [x, y])
        assert app.children() == (x, y)
        assert app.symbol == "f"
