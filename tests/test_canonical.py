"""Properties of the alpha-invariant canonical key (`logic/canonical`).

The key is the load-bearing wall of the result cache: two formulas share
a key iff the cache will serve one's verdict for the other.  The
properties below pin both directions and the countermodel-lifting path:

* alpha-renamed formulas share a key (completeness of the dedupe);
* key collisions never span semantically different formulas — whenever
  two generated formulas (including mutated ones) share a key, their
  verdicts and their behaviour under the reference semantics agree
  (soundness: the cache can never change a verdict);
* canonicalization is idempotent and process-stable (subprocess pin);
* lifting a countermodel of the canonical representative through the
  renaming map falsifies the original formula.
"""

import json
import random
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fuzz.generator import generate_formula
from repro.fuzz.oracle import _alpha_variant
from repro.logic.canonical import (
    CANONICAL_VERSION,
    canonical_key,
    canonicalize,
    lift_interpretation,
    rename_symbols,
)
from repro.logic.parser import parse_formula
from repro.logic.printer import to_sexpr
from repro.logic.semantics import evaluate
from repro.logic.terms import Eq, Var
from repro.logic.traversal import (
    collect_atoms,
    collect_bool_vars,
    collect_func_symbols,
    collect_pred_symbols,
    collect_vars,
)

from helpers import random_suf_formula

PROFILES = ("equality", "offset", "uf", "mixed")


def _profile_for(seed):
    return PROFILES[seed % len(PROFILES)]


def _random_renaming(formula, seed):
    """A random injective renaming over every symbol kind."""
    rng = random.Random(seed)

    def scramble(names, prefix):
        names = list(names)
        fresh = ["%s_%d" % (prefix, i) for i in range(len(names))]
        rng.shuffle(fresh)
        return dict(zip(names, fresh))

    return rename_symbols(
        formula,
        vars=scramble([v.name for v in collect_vars(formula)], "zz"),
        bools=scramble([v.name for v in collect_bool_vars(formula)], "pp"),
        funcs=scramble(collect_func_symbols(formula), "gg"),
        preds=scramble(collect_pred_symbols(formula), "qq"),
    )


class TestAlphaInvariance:
    @settings(max_examples=200, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_renamed_formulas_share_key(self, seed):
        formula = generate_formula(seed, _profile_for(seed))
        renamed = _random_renaming(formula, seed * 31 + 7)
        assert canonical_key(formula) == canonical_key(renamed)

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_helpers_generator_agrees(self, seed):
        formula = random_suf_formula(seed)
        renamed = _random_renaming(formula, seed + 1)
        assert canonical_key(formula) == canonical_key(renamed)

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_canonicalize_is_idempotent(self, seed):
        formula = generate_formula(seed, _profile_for(seed))
        form = canonicalize(formula)
        again = canonicalize(form.formula)
        assert again.key == form.key
        assert again.text == form.text
        # The canonical representative of a canonical formula is itself.
        assert again.formula is form.formula

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fuzz_alpha_variant_shares_key(self, seed):
        formula = generate_formula(seed, _profile_for(seed))
        assert canonical_key(formula) == canonical_key(
            _alpha_variant(formula)
        )


def _mutate(formula, seed):
    """A structural mutation that usually changes semantics."""
    from repro.fuzz.rewrite import rebuild
    from repro.logic.terms import Formula, Not, Offset

    rng = random.Random(seed)
    atoms = collect_atoms(formula)
    choice = rng.randrange(3)
    if choice == 0 or not atoms:
        return Not(formula)
    target = rng.choice(atoms)
    if choice == 1:

        def flip(node):
            if node is target:
                return Not(node)
            return node

        return rebuild(formula, formula_fn=flip)

    def shift(node):
        if node is target and isinstance(node, Eq):
            return Eq(node.lhs, Offset(node.rhs, 1))
        return node

    return rebuild(formula, formula_fn=shift)


class TestKeyCollisionsPreserveVerdicts:
    """A shared key must never bridge formulas with different verdicts.

    The cache serves one formula's verdict for any other formula with
    the same key, so the correctness contract is exactly: key collision
    implies verdict agreement.  We cannot enumerate all collisions, so
    we hunt for violations — independently generated formulas, and
    formulas against semantics-changing mutations of themselves (the
    pairs most likely to be structurally close).  Whenever a pair shares
    a key, the decision procedure must give both the same verdict.
    """

    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        other=st.integers(min_value=0, max_value=5_000),
    )
    def test_generated_pair_collision_implies_same_verdict(
        self, seed, other
    ):
        from repro.engine import registry

        f = generate_formula(seed, _profile_for(seed))
        g = generate_formula(other, _profile_for(other))
        if canonical_key(f) == canonical_key(g):
            engine = registry.get("hybrid")
            assert engine.decide(f).valid == engine.decide(g).valid

    @settings(max_examples=150, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_mutation_changes_key_or_preserves_verdict(self, seed):
        from repro.engine import registry

        f = generate_formula(seed, _profile_for(seed))
        g = _mutate(f, seed * 37 + 5)
        if canonical_key(f) == canonical_key(g):
            engine = registry.get("hybrid")
            assert engine.decide(f).valid == engine.decide(g).valid

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_negation_always_changes_key(self, seed):
        from repro.logic.terms import Not

        f = generate_formula(seed, _profile_for(seed))
        assert canonical_key(f) != canonical_key(Not(f))


class TestMutationsChangeKey:
    def test_operand_swap_on_implies(self):
        f = parse_formula("(=> (= x y) (= (f x) (f y)))")
        g = parse_formula("(=> (= (f x) (f y)) (= x y))")
        assert canonical_key(f) != canonical_key(g)

    def test_offset_constant_matters(self):
        f = parse_formula("(= x (+ y 1))")
        g = parse_formula("(= x (+ y 2))")
        assert canonical_key(f) != canonical_key(g)

    def test_polarity_matters(self):
        f = parse_formula("(and (= x y) (< x z))")
        g = parse_formula("(and (not (= x y)) (< x z))")
        assert canonical_key(f) != canonical_key(g)

    def test_variable_sharing_pattern_matters(self):
        # Same shape, different sharing: x=y & y<z  vs  x=y & x<z are
        # related by renaming, but x=y & y<y is not.
        f = parse_formula("(and (= x y) (< y z))")
        g = parse_formula("(and (= x y) (< y y))")
        h = parse_formula("(and (= a b) (< b c))")
        assert canonical_key(f) != canonical_key(g)
        assert canonical_key(f) == canonical_key(h)

    def test_eq_argument_order_is_canonical(self):
        # Eq is symmetric; hash-consing may store either orientation
        # depending on interning order, which the key must not leak.
        x, y = Var("x"), Var("y")
        assert canonical_key(Eq(x, y)) == canonical_key(Eq(y, x))


class TestCountermodelLifting:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_lifted_countermodel_falsifies_original(self, seed):
        from repro.engine import registry

        formula = generate_formula(seed, _profile_for(seed))
        form = canonicalize(formula)
        outcome = registry.get("hybrid").decide(form.formula)
        if outcome.valid is False and outcome.counterexample is not None:
            assert evaluate(form.formula, outcome.counterexample) is False
            lifted = lift_interpretation(outcome.counterexample, form)
            assert evaluate(formula, lifted) is False


class TestRenameSymbols:
    def test_rejects_non_injective_var_map(self):
        f = parse_formula("(= x y)")
        with pytest.raises(ValueError):
            rename_symbols(f, vars={"x": "z", "y": "z"})

    def test_rejects_non_injective_func_map(self):
        f = parse_formula("(= (f x) (g x))")
        with pytest.raises(ValueError):
            rename_symbols(f, funcs={"f": "h", "g": "h"})

    def test_identity_rename_is_same_node(self):
        f = parse_formula("(=> (= x y) (= (f x) (f y)))")
        assert rename_symbols(f) is f


class TestProcessStability:
    """The key must be identical across interpreter processes.

    uid-based interning order differs between processes depending on
    import/evaluation order, and PYTHONHASHSEED randomises str hashes —
    neither may leak into the key (the disk cache tier and the serve
    protocol both rely on this).
    """

    def test_key_stable_across_subprocess(self):
        formulas = [
            "(=> (= x y) (= (f x) (f y)))",
            "(and (or B0 (= v0 (+ v1 2))) (not (< v1 v0)))",
            "(iff (P (g a)) (= a b))",
        ]
        parent = {
            text: canonical_key(parse_formula(text)) for text in formulas
        }
        script = (
            "import json, sys\n"
            "from repro.logic.canonical import canonical_key\n"
            "from repro.logic.parser import parse_formula\n"
            "texts = json.load(sys.stdin)\n"
            # Parse in reverse, so interning (uid) order differs from the
            # parent process on purpose.
            "keys = {}\n"
            "for t in reversed(texts):\n"
            "    keys[t] = canonical_key(parse_formula(t))\n"
            "print(json.dumps(keys))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(formulas),
            capture_output=True,
            text=True,
            check=True,
        )
        child = json.loads(out.stdout)
        assert child == parent

    def test_version_is_part_of_the_digest(self):
        # Changing CANONICAL_VERSION must change every key; pin the
        # binding so a version bump cannot silently be a no-op.
        import hashlib

        f = parse_formula("(= x y)")
        form = canonicalize(f)
        expected = hashlib.sha256(
            ("suf-canonical-v%d\n%s" % (CANONICAL_VERSION, form.text)).encode()
        ).hexdigest()
        assert form.key == expected

    def test_generator_formulas_stable_across_subprocess(self):
        seeds = [3, 17, 91]
        texts = [
            to_sexpr(generate_formula(seed, _profile_for(seed)))
            for seed in seeds
        ]
        parent = [canonical_key(parse_formula(t)) for t in texts]
        script = (
            "import json, sys\n"
            "from repro.logic.canonical import canonical_key\n"
            "from repro.logic.parser import parse_formula\n"
            "texts = json.load(sys.stdin)\n"
            "print(json.dumps([canonical_key(parse_formula(t)) "
            "for t in texts]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(texts),
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(out.stdout) == parent


class TestBenchmarkKeyUnification:
    def test_benchmark_canonical_key_uses_shared_helper(self):
        from repro.benchgen.suite import benchmark_by_name

        bench = benchmark_by_name("pipeline_s2_r2_1")
        assert bench is not None
        assert bench.canonical_key == canonical_key(bench.formula)
