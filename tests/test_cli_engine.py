"""CLI tests for the engine-layer surface: portfolio, bench-smoke, --stats."""

import io
import json
import sys

import pytest

from repro.cli import build_parser, main
from repro.engine import registry


def run_cli(argv, stdin_text=None):
    """Run the CLI capturing stdout; returns (exit_code, output)."""
    old_stdout, old_stdin = sys.stdout, sys.stdin
    sys.stdout = io.StringIO()
    if stdin_text is not None:
        sys.stdin = io.StringIO(stdin_text)
    try:
        code = main(argv)
        return code, sys.stdout.getvalue()
    finally:
        sys.stdout = old_stdout
        sys.stdin = old_stdin


VALID_F = "(=> (and (< x y) (< y z)) (< x z))"


class TestCheckViaRegistry:
    def test_method_choices_come_from_registry(self):
        parser = build_parser()
        args = parser.parse_args(["check", "f", "--method", "portfolio"])
        assert args.method == "portfolio"
        args = parser.parse_args(["check", "f", "--method", "brute"])
        assert args.method == "brute"

    def test_check_portfolio_reports_winner(self):
        code, out = run_cli(
            ["check", "-", "--method", "portfolio"], stdin_text=VALID_F
        )
        assert code == 0
        assert "VALID" in out
        assert "winner: " in out
        winner = [
            l for l in out.splitlines() if l.startswith("winner: ")
        ][0].split(": ")[1]
        assert winner in registry.list_engines()

    def test_check_brute_method(self):
        code, out = run_cli(
            ["check", "-", "--method", "brute"], stdin_text=VALID_F
        )
        assert code == 0
        assert "VALID" in out

    def test_stats_prints_stage_telemetry(self):
        code, out = run_cli(
            ["check", "-", "--stats"], stdin_text=VALID_F
        )
        assert code == 0
        assert "stages (hybrid):" in out
        assert "func-elim" in out
        # Preprocessing may close the instance outright, in which case
        # the sat stage never runs; one of the two must be reported.
        assert "preprocess" in out or "sat" in out

    def test_stats_without_preprocessing_reaches_sat(self):
        code, out = run_cli(
            ["check", "-", "--stats", "--no-preprocess"],
            stdin_text=VALID_F,
        )
        assert code == 0
        assert "sat" in out
        assert "preprocess" not in out

    def test_stats_with_portfolio(self):
        code, out = run_cli(
            ["check", "-", "--method", "portfolio", "--stats"],
            stdin_text=VALID_F,
        )
        assert code == 0
        assert "stages (" in out


class TestPortfolioCommand:
    def test_single_file(self, tmp_path):
        path = tmp_path / "f.suf"
        path.write_text(VALID_F)
        code, out = run_cli(["portfolio", str(path), "--sequential"])
        assert code == 0
        assert "VALID" in out
        assert "winner=" in out

    def test_multiple_files_batch(self, tmp_path):
        valid = tmp_path / "valid.suf"
        valid.write_text(VALID_F)
        invalid = tmp_path / "invalid.suf"
        invalid.write_text("(= x y)")
        code, out = run_cli(
            ["portfolio", str(valid), str(invalid), "--jobs", "2"]
        )
        assert code == 1  # one INVALID
        lines = [l for l in out.splitlines() if "winner=" in l]
        assert len(lines) == 2
        assert "VALID" in lines[0] and "INVALID" in lines[1]

    def test_engine_subset(self, tmp_path):
        path = tmp_path / "f.suf"
        path.write_text(VALID_F)
        code, out = run_cli(
            [
                "portfolio",
                str(path),
                "--engines",
                "eij,hybrid",
                "--sequential",
            ]
        )
        assert code == 0
        assert "winner=eij" in out

    def test_unknown_engine_rejected(self, tmp_path):
        path = tmp_path / "f.suf"
        path.write_text(VALID_F)
        code, _ = run_cli(
            ["portfolio", str(path), "--engines", "nope"]
        )
        assert code == 2


class TestBenchSmokeCommand:
    def test_writes_report(self, tmp_path):
        out_path = tmp_path / "BENCH_PR2.json"
        code, out = run_cli(
            [
                "bench-smoke",
                "--out",
                str(out_path),
                "--engines",
                "hybrid,eij",
                "--timeout",
                "10",
            ]
        )
        assert code == 0
        assert "engine" in out
        report = json.loads(out_path.read_text())
        assert set(report["engines"]) == {"hybrid", "eij"}
        for rows in report["engines"].values():
            assert set(rows) == set(report["meta"]["benchmarks"])
            for row in rows.values():
                assert row["status"] == "VALID"
                assert row["wall_seconds"] >= 0
                assert "encode_seconds" in row and "sat_seconds" in row


class TestBenchViaRegistry:
    @pytest.mark.parametrize("method", ["lazy", "svc", "portfolio"])
    def test_bench_new_methods(self, method):
        code, out = run_cli(
            ["bench", "pipeline_s2_r2_1", "--method", method]
        )
        assert code == 0
        assert "VALID" in out
