"""Cube-and-conquer engine tests: verdicts, countermodels, re-splits."""

import pytest

from repro.core.status import Status
from repro.engine import registry
from repro.engine.bench_smoke import pigeonhole_cnf
from repro.engine.contract import SolveRequest
from repro.engine.cube import conquer
from repro.core.result import StageRecord
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.terms import BoolVar

FORMULAS = [
    ("(=> (and (< x y) (< y z)) (< x z))", True),
    ("(= x y)", False),
    ("(=> (= a b) (= (f a) (f b)))", True),
    ("(< x (+ x 1))", True),
    ("(< (+ x 1) x)", False),
]


def solve_cube(text, **options):
    return registry.get("cube").solve(
        SolveRequest(formula=parse_formula(text), options=options)
    )


class TestEngine:
    def test_registered_before_portfolio(self):
        names = registry.list_engines()
        assert "cube" in names
        assert names.index("cube") < names.index("portfolio")

    @pytest.mark.parametrize("text,expected", FORMULAS)
    def test_sequential_agrees_with_hybrid(self, text, expected):
        outcome = solve_cube(text, cube_procs=1, cube_depth=2)
        hybrid = registry.get("hybrid").solve(
            SolveRequest(formula=parse_formula(text))
        )
        assert outcome.valid == expected
        assert outcome.valid == hybrid.valid
        assert outcome.engine == "cube"
        assert outcome.stats.method == "CUBE(HYBRID)"

    @pytest.mark.parametrize("text,expected", FORMULAS[:2])
    def test_parallel_agrees(self, text, expected):
        outcome = solve_cube(text, cube_procs=2, cube_depth=2)
        assert outcome.valid == expected

    def test_countermodel_falsifies_formula(self):
        text = "(=> (< x y) (< y x))"
        formula = parse_formula(text)
        outcome = solve_cube(text, cube_procs=2)
        assert outcome.status == Status.INVALID
        assert outcome.counterexample is not None
        assert not evaluate(formula, outcome.counterexample)

    def test_sat_stage_reports_cube_counters(self):
        outcome = solve_cube(FORMULAS[0][0], cube_procs=1)
        sat_stages = [
            s for s in outcome.stats.stages if s.name == "sat"
        ]
        if sat_stages:  # preprocessing may solve the formula outright
            assert "cubes" in sat_stages[0].counters

    def test_deterministic_across_runs(self):
        verdicts = set()
        for _ in range(3):
            verdicts.add(solve_cube(FORMULAS[1][0], cube_procs=1).valid)
        assert verdicts == {False}


def conquer_cnf(cnf, **options):
    request = SolveRequest(
        formula=BoolVar("test_cube_dummy"), options=options
    )
    record = StageRecord("sat", 0.0)
    result = conquer(cnf, request, record, [])
    return result, record


class TestConductor:
    def test_parallel_refutes_pigeonhole(self):
        result, record = conquer_cnf(
            pigeonhole_cnf(6, 5), cube_depth=3, cube_procs=2
        )
        assert result.status == "UNSAT"
        assert record.counters["workers"] == 2
        assert record.counters["refuted_cubes"] > 0

    def test_tiny_budget_forces_resplits(self):
        # A 20-conflict budget cannot refute any depth-2 cube of this
        # instance, so the conductor must re-split to finish.
        result, record = conquer_cnf(
            pigeonhole_cnf(7, 6),
            cube_depth=2,
            cube_procs=2,
            cube_budget=20,
        )
        assert result.status == "UNSAT"
        assert record.counters["resplits"] > 0

    def test_sharing_counters_live_on_unsat(self):
        result, record = conquer_cnf(
            pigeonhole_cnf(7, 6), cube_depth=3, cube_procs=2
        )
        assert result.status == "UNSAT"
        assert record.counters["exported"] > 0

    def test_no_share_disables_conduit(self):
        result, record = conquer_cnf(
            pigeonhole_cnf(6, 5),
            cube_depth=3,
            cube_procs=2,
            cube_share=False,
        )
        assert result.status == "UNSAT"
        assert record.counters["shared_clauses"] == 0
        assert record.counters["imported"] == 0

    def test_sequential_time_limit_returns_unknown(self):
        request = SolveRequest(
            formula=BoolVar("test_cube_dummy"),
            time_limit=0.0,
            options={"cube_procs": 1, "cube_depth": 3},
        )
        record = StageRecord("sat", 0.0)
        result = conquer(pigeonhole_cnf(8, 7), request, record, [])
        assert result.status == "UNKNOWN"
