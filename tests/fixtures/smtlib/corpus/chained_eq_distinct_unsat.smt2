; chained = folds into pairwise conjunction; distinct contradicts it
(set-logic QF_IDL)
(set-info :status unsat)
(declare-const a Int)
(declare-const b Int)
(declare-const c Int)
(assert (= a b c))
(assert (distinct a c))
(check-sat)
