;; a comment-heavy script with ignored commands
(set-option :produce-models true)
(set-logic QF_IDL)          ; trailing comment
(set-info :source "hand-written conformance corpus")
(set-info :status sat)
(echo "solving")
(declare-const   x   Int)   ; extra whitespace
(get-info :name)
(assert
  ; a comment inside an assert
  (< x 10))
(check-sat)
(get-model)
(exit)
