; (+ 1 2 x) folds its literal operands into one offset
(set-logic QF_IDL)
(set-info :status sat)
(declare-const x Int)
(declare-const y Int)
(assert (= (+ 1 2 x) (+ x 3)))
(assert (= y (- x 2)))
(check-sat)
