; |0| and |let| are plain symbols, never a numeral or reserved word
(set-logic QF_IDL)
(set-info :status sat)
(declare-const |0| Int)
(declare-const |let| Int)
(declare-const |two words| Int)
(assert (= |0| (+ |let| 1)))
(assert (< |two words| |0|))
(check-sat)
