; SMT-LIB let is *parallel*: both bindings read the outer environment,
; so (let ((x y) (y x)) ...) swaps the two values.  A sequential
; (mis)reading would make this script unsat.
(set-logic QF_IDL)
(set-info :status sat)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (= x 1))
(assert (= y 2))
(assert (let ((x y) (y x)) (and (= x 2) (= y 1))))
(check-sat)
