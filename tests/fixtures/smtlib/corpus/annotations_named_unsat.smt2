; (! term :named label) annotations wrap contradictory assertions
(set-logic QF_IDL)
(set-info :status unsat)
(declare-const a Int)
(declare-const b Int)
(assert (! (< a b) :named lower))
(assert (! (< b a) :named upper))
(check-sat)
