; 0-arity define-fun acts as a named alias
(set-logic QF_IDL)
(set-info :status unsat)
(declare-const base Int)
(define-fun origin () Int (+ base 10))
(assert (< origin base))
(assert (< base origin))
(check-sat)
