; define-fun is a macro: (inc (inc x)) expands to x + 2
(set-logic QF_UFIDL)
(set-info :status unsat)
(declare-fun x () Int)
(define-fun inc ((a Int)) Int (+ a 1))
(define-fun twice-inc ((a Int)) Int (inc (inc a)))
(assert (not (= (twice-inc x) (+ x 2))))
(check-sat)
