; the inner t shadows the outer one: t = (x+1)+1 = x+2, never equal x
(set-logic QF_IDL)
(set-info :status unsat)
(declare-const x Int)
(assert (let ((t (+ x 1)))
          (let ((t (+ t 1)))
            (= t x))))
(check-sat)
