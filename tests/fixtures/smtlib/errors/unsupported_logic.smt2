; expect-error: QF_LIA
; expect-line: 3
(set-logic QF_LIA)
(declare-const x Int)
(assert (< x 3))
(check-sat)
