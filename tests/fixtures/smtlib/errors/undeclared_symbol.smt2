; expect-error: undeclared
(set-logic QF_IDL)
(declare-const x Int)
(assert (< x undeclared_thing))
(check-sat)
