; expect-error: reserved word
; expect-line: 5
; expect-column: 16
(set-logic QF_IDL)
(declare-const let Int)
(assert true)
(check-sat)
