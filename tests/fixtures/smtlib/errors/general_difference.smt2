; expect-error: difference
(set-logic QF_IDL)
(declare-const a Int)
(declare-const b Int)
(assert (< (- a b) 3))
(check-sat)
