; expect-error: outside the SUF fragment
; expect-line: 7
; expect-column: 13
(set-logic QF_IDL)
(declare-const x Int)
(declare-const y Int)
(assert (< (* 2 x) y))
(check-sat)
