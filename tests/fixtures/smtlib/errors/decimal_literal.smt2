; expect-error: decimal
(set-logic QF_IDL)
(declare-const x Int)
(assert (< x 3.5))
(check-sat)
