; expect-error: share a sort
(set-logic QF_UF)
(declare-const x Int)
(assert (= x true))
(check-sat)
