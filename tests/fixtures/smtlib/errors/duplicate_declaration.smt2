; expect-error: declared twice
(set-logic QF_IDL)
(declare-const x Int)
(declare-const x Int)
(assert (< x 3))
(check-sat)
