; expect-error: incremental
(set-logic QF_IDL)
(declare-const x Int)
(push 1)
(assert (< x 3))
(pop 1)
(check-sat)
