; expect-error: :status
(set-logic QF_IDL)
(set-info :status maybe)
(declare-const x Int)
(assert (< x 3))
(check-sat)
