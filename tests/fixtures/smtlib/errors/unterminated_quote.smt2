; expect-error: unterminated
(set-logic QF_IDL)
(declare-const |oops Int)
(check-sat)
