; expect-error: missing closing parenthesis
(set-logic QF_IDL)
(declare-const x Int)
(assert (< x 3)
