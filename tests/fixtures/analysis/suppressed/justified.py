"""Fixture: every seeded violation here carries a suppression."""


def render_inline(tags):
    return ",".join(set(tags))  # repro: ignore[RD202] -- human log line only


def render_block(tags):
    # The joined string feeds a progress message, never a cache key,
    # so the arbitrary set order is harmless.
    # repro: ignore[RD202] -- cosmetic output, not a key
    return ";".join(set(tags))


def render_blanket(tags):
    return "|".join(set(tags))  # repro: ignore -- demo of the no-code form
