"""Fixture: RE305 — a Session opened without guaranteed close."""


class Session:
    def assert_formula(self, formula):
        pass

    def check_sat(self):
        return True

    def close(self):
        pass


def probe(formulas):
    session = Session()  # seeded RE305: assert/check below may raise
    for formula in formulas:
        session.assert_formula(formula)
    verdict = session.check_sat()
    session.close()
    return verdict
