"""Fixture: RP401 — container allocated per iteration of a hot loop."""


def propagate(watches, vals):  # repro: hot-loop
    out = []
    for lit, ref in watches:
        tmp, lit = lit, tmp  # swap idiom: exempt
        pair = (1, 2)  # all-constant tuple: folded, exempt
        out.append((lit, ref))  # seeded RP401: fresh tuple every round
    return out, pair
