"""Fixture: RC101 — lock-guarded attribute mutated without the lock."""

import threading


class EventLog:
    def __init__(self):
        self._lock = threading.Lock()
        self.events = []

    def record(self, item):
        with self._lock:
            self.events.append(item)

    def reset(self):
        self.events.clear()  # seeded RC101: no lock held here
