"""Fixture: RD203 — wall-clock time folded into a digest."""

import hashlib
import time


def stamp_key(payload):
    h = hashlib.sha256()
    h.update(payload)
    h.update(str(time.time()).encode("ascii"))  # seeded RD203
    return h.digest()
