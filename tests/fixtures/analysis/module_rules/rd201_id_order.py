"""Fixture: RD201 — id() driving a sort order."""


def stable_order(nodes):
    return sorted(nodes, key=id)  # seeded RD201: allocator-dependent order


def memo_lookup_is_fine(nodes, memo):
    # id() as a plain memo key never escapes the process; not a finding.
    return [memo[id(n)] for n in nodes]
