"""Fixture: RD205 — statements no path can reach after a return."""


def classify(flag):
    if flag:
        return "on"
    return "off"
    flag = not flag  # seeded RD205: follows an unconditional return
    return "revised"
