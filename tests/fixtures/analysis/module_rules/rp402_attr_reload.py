"""Fixture: RP402 — the same attribute chain re-resolved per iteration."""


class Walker:
    # repro: hot-loop
    def drain(self, items):
        total = 0
        for item in items:
            self.stats.visited += 1  # seeded RP402: self.stats twice
            total += self.stats.weight
        return total
