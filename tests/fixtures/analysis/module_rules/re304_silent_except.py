"""Fixture: RE304 — a worker loop that swallows failures silently."""


def drain(jobs):
    drained = []
    for job in jobs:
        try:
            drained.append(job.run())
        except Exception:  # seeded RE304: failure vanishes
            pass
    return drained
