"""Fixture: RC103 — a process target that cannot be pickled."""

import multiprocessing


def launch(items):
    worker = multiprocessing.Process(
        target=lambda: sum(items),  # seeded RC103: lambda target
    )
    worker.start()
    return worker
