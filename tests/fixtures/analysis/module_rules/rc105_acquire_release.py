"""Fixture: RC105 — an acquire() whose release a raise path can skip."""

import threading

_STATS_LOCK = threading.Lock()


def _recount(counts):
    return sum(counts.values())


def bump(counts, key):
    _STATS_LOCK.acquire()  # seeded RC105: _recount below may raise first
    counts[key] = counts.get(key, 0) + 1
    total = _recount(counts)
    _STATS_LOCK.release()
    return total
