"""Fixture: RD204 — persisted digest with no schema version folded in."""

import hashlib


def cache_key(payload):
    return hashlib.sha256(payload).hexdigest()  # seeded RD204
