"""Fixture: RL503 — a mkstemp path leaked when the write raises."""

import os
import tempfile


def snapshot(payload):
    fd, path = tempfile.mkstemp(prefix="snap-")  # seeded RL503
    handle = os.fdopen(fd, "w")
    handle.write(payload)
    handle.close()
    os.unlink(path)
