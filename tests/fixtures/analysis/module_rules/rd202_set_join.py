"""Fixture: RD202 — join() over an unordered set."""


def render_tags(tags):
    return ",".join(set(tags))  # seeded RD202: arbitrary concat order
