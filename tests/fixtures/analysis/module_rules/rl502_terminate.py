"""Fixture: RL502 — terminate() with no join() reachable afterwards."""


def kill_worker(proc, log):
    proc.terminate()  # seeded RL502: nothing joins the terminated child
    log.append("terminated")
