"""Fixture: RC102 — guard flag raised before the protected init."""

import threading

_LOCK = threading.Lock()
_READY = False
_TABLE = {}


def _defaults():
    return {"a": 1}


def ensure_loaded():
    global _READY
    if _READY:
        return
    with _LOCK:
        if not _READY:
            _READY = True  # seeded RC102: flag up, state still missing
            _TABLE.update(_defaults())
