"""Fixture: RL501 — a worker Process a raise path leaves unjoined."""

import multiprocessing


def _work(n):
    return n * n


def run_once(jobs):
    proc = multiprocessing.Process(target=_work, args=(3,))  # seeded RL501
    proc.start()
    jobs.pop()
    proc.join()
