"""Fixture half: acquires REGISTRY_LOCK, then CACHE_LOCK (A -> B)."""

import threading

REGISTRY_LOCK = threading.Lock()
CACHE_LOCK = threading.Lock()


def refresh(entries):
    with REGISTRY_LOCK:
        with CACHE_LOCK:  # seeded RC104: opposite order in order_ba.py
            entries.clear()
