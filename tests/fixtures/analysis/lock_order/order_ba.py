"""Fixture half: acquires CACHE_LOCK, then REGISTRY_LOCK (B -> A)."""

from order_ab import CACHE_LOCK, REGISTRY_LOCK


def evict(entries, key):
    with CACHE_LOCK:
        with REGISTRY_LOCK:  # the B -> A edge closing the cycle
            entries.pop(key)
