"""True negatives for the flow-sensitive rules: every resource here is
finalized on all paths, so RL5xx/RE305/RC105/RD205 must stay silent."""

import multiprocessing
import os
import tempfile
import threading

_STATE_LOCK = threading.Lock()


class Session:
    def close(self):
        pass


def _work(n):
    return n + 1


def guarded_bump(counts, key):
    # RC105 true negative: the release is in a finally.
    _STATE_LOCK.acquire()
    try:
        counts[key] = counts.get(key, 0) + 1
    finally:
        _STATE_LOCK.release()


def run_joined(jobs):
    # RL501 true negative: the join is guaranteed by the finally, which
    # covers every statement that can raise after creation.
    proc = multiprocessing.Process(target=_work, args=(1,))
    try:
        proc.start()
        jobs.pop()
    finally:
        proc.join()


def stop_worker(proc):
    # RL502 true negative: terminate is followed by a bounded join.
    proc.terminate()
    proc.join(timeout=1.0)


def atomic_write(path, payload):
    # RL503 true negative: replaced on success, unlinked on failure.
    fd, tmp_path = tempfile.mkstemp(prefix="atomic-")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp_path, path)
    except BaseException:
        os.unlink(tmp_path)
        raise


def probe_closed(formulas, check):
    # RE305 true negative: close() is in a finally.
    session = Session()
    try:
        for formula in formulas:
            check(session, formula)
    finally:
        session.close()


def first_even(numbers):
    # RD205 true negative: the post-loop return is reachable via the
    # loop's exhaustion edge even though the body can break.
    for number in numbers:
        if number % 2 == 0:
            return number
    return None
