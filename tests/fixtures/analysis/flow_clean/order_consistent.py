"""RC104 true negative: both call paths take the locks in the same
REGISTRY -> CACHE order, so the acquisition graph is acyclic."""

import threading

REGISTRY_LOCK = threading.Lock()
CACHE_LOCK = threading.Lock()


def refresh(entries):
    with REGISTRY_LOCK:
        with CACHE_LOCK:
            entries.clear()


def evict(entries, key):
    with REGISTRY_LOCK:
        with CACHE_LOCK:
            entries.pop(key)
