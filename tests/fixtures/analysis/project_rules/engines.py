"""Fixture mini-project: engine classes RE301 checks for registration."""

import abc


class Engine(abc.ABC):
    name = ""

    @abc.abstractmethod
    def solve(self, request):
        raise NotImplementedError


class GhostEngine(Engine):  # seeded RE301: never registered
    name = "ghost"

    def solve(self, request):
        return ("valid", request)


class RosterEngine(Engine):
    name = "roster"

    def solve(self, request):
        return ("invalid", request)


def register(engine):
    return engine


register(RosterEngine())
