"""Fixture mini-project: a partial Status dispatch with no fallback."""

from core.status import Status

EXIT_CODES = {  # seeded RE302: UNKNOWN missing, consumed via [] below
    Status.VALID: 0,
    Status.INVALID: 1,
}


def exit_code_for(record, status):
    # Threads StageRecord.name / .seconds so only ghost_counter is orphaned.
    return EXIT_CODES[status], record.name, record.seconds
