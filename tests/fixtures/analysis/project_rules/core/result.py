"""Fixture mini-project: stats dataclasses RE303 checks for threading."""


class StageRecord:
    name: str = ""
    seconds: float = 0.0
    ghost_counter: int = 0  # seeded RE303: never referenced elsewhere
