"""Fixture mini-project: the Status vocabulary RE302 checks against."""


class Status:
    VALID = "valid"
    INVALID = "invalid"
    UNKNOWN = "unknown"
