"""Incremental session layer tests (src/repro/engine/session.py).

Three verification subsystems from the PR's test archetype:

* a **differential incremental-vs-scratch harness**: every incremental
  ``check_sat`` is replayed as a fresh one-shot solve of the conjoined
  assertion stack and the verdicts must match;
* a **hypothesis state machine** driving random push/pop/assert/check
  sequences, cross-checked against the registered engines;
* an **unsat-core checker**: every returned core re-solves UNSAT both
  through a fresh session and through a scratch engine solve.
"""

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.status import Status
from repro.engine import registry
from repro.engine.contract import SolveRequest
from repro.engine.session import (
    SAT,
    UNKNOWN,
    UNSAT,
    CheckResult,
    Session,
    SessionError,
)
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.terms import (
    And,
    BoolVar,
    Eq,
    FALSE,
    FuncApp,
    Lt,
    Not,
    Offset,
    Or,
    TRUE,
    Var,
)
from repro.service.cache import ResultCache, config_fingerprint, solve_cached

VARS = [Var("x"), Var("y"), Var("z"), Var("w")]
BOOLS = [BoolVar("p"), BoolVar("q")]


def random_formula(rng, allow_uf=False, depth=2):
    """A random separation-fragment formula (optionally with UF atoms)."""
    if depth > 0 and rng.random() < 0.6:
        kind = rng.choice(["not", "and", "or"])
        if kind == "not":
            return Not(random_formula(rng, allow_uf, depth - 1))
        lhs = random_formula(rng, allow_uf, depth - 1)
        rhs = random_formula(rng, allow_uf, depth - 1)
        return And(lhs, rhs) if kind == "and" else Or(lhs, rhs)
    if rng.random() < 0.15:
        return rng.choice(BOOLS)
    if allow_uf and rng.random() < 0.3:
        f_of = FuncApp("f", (rng.choice(VARS),))
        g_of = FuncApp("f", (rng.choice(VARS),))
        return Eq(f_of, g_of)
    lhs = Offset(rng.choice(VARS), rng.randint(-2, 2))
    rhs = Offset(rng.choice(VARS), rng.randint(-2, 2))
    return Lt(lhs, rhs) if rng.random() < 0.5 else Eq(lhs, rhs)


def scratch_status(assertions, engine="hybrid", time_limit=10.0):
    """One-shot scratch verdict for the conjoined assertion stack.

    The conjunction is satisfiable iff its negation is INVALID under the
    engine contract.
    """
    conjunction = And(*assertions) if assertions else TRUE
    outcome = registry.get(engine).solve(
        SolveRequest(formula=Not(conjunction), time_limit=time_limit)
    )
    if outcome.status is Status.VALID:
        return UNSAT
    if outcome.status is Status.INVALID:
        return SAT
    return UNKNOWN


def check_against_scratch(session, engine="hybrid"):
    """Differential step: check incrementally, replay from scratch,
    insist on identical verdicts, then validate the model or the core."""
    active = list(session.assertions())
    result = session.check_sat()
    expected = scratch_status(active, engine=engine)
    assert result.status == expected, (
        "incremental %s != scratch %s on stack %r"
        % (result.status, expected, active)
    )
    if result.status == SAT:
        model = result.model
        assert model is not None
        conjunction = And(*active) if active else TRUE
        assert evaluate(conjunction, model) is True
    elif result.status == UNSAT:
        assert_core_checks(result, active, engine=engine)
    return result


def assert_core_checks(result, active, engine="hybrid"):
    """The unsat-core checker: the core is a subset of the live
    assertions and re-solves UNSAT on its own."""
    core = result.core
    assert core is not None and core == result.core
    assert core, "UNSAT answer must carry a non-empty core"
    active_set = set(active)
    assert all(f in active_set for f in core)
    # Scratch re-solve of just the core.
    assert scratch_status(core, engine=engine) == UNSAT
    # Fresh-session re-solve of just the core.
    replay = Session(engine=engine)
    for formula in core:
        replay.assert_formula(formula)
    assert replay.check_sat().status == UNSAT


class TestSessionBasics:
    def test_empty_stack_is_sat(self):
        session = Session()
        result = session.check_sat()
        assert result.status == SAT
        assert result.backend == "trivial"
        assert session.model() is not None

    def test_push_pop_scoping(self):
        session = Session()
        f1 = parse_formula("(< x y)")
        f2 = parse_formula("(< y x)")
        session.assert_formula(f1)
        assert session.depth == 0
        assert session.push() == 1
        session.assert_formula(f2)
        assert session.assertions() == [f1, f2]
        assert session.check_sat().status == UNSAT
        assert session.pop() == 0
        assert session.assertions() == [f1]
        assert session.check_sat().status == SAT

    def test_pop_below_bottom_raises(self):
        session = Session()
        with pytest.raises(SessionError):
            session.pop()
        session.push()
        session.push()
        assert session.pop(2) == 0
        with pytest.raises(SessionError):
            session.pop()

    def test_pop_level_validation(self):
        session = Session()
        session.push()
        with pytest.raises(ValueError):
            session.pop(0)
        with pytest.raises(ValueError):
            session.pop(-1)

    def test_assert_rejects_non_formula(self):
        session = Session()
        with pytest.raises(TypeError):
            session.assert_formula(Var("x"))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Session(engine="nosuch")

    def test_closed_session_raises(self):
        session = Session()
        session.close()
        assert session.closed
        with pytest.raises(SessionError):
            session.check_sat()
        with pytest.raises(SessionError):
            session.assert_formula(TRUE)
        with pytest.raises(SessionError):
            session.push()

    def test_false_assertion_short_circuits(self):
        session = Session()
        session.assert_formula(parse_formula("(< x y)"))
        session.assert_formula(FALSE)
        result = session.check_sat()
        assert result.status == UNSAT
        assert result.backend == "trivial"
        assert result.core == [FALSE]
        assert session.last_core() == [FALSE]

    def test_assert_formula_returns_stack_index(self):
        session = Session()
        assert session.assert_formula(parse_formula("(< x y)")) == 0
        session.push()
        assert session.assert_formula(parse_formula("(< y z)")) == 1

    def test_state_key_matches_check_key(self):
        session = Session()
        session.assert_formula(parse_formula("(< x y)"))
        key = session.state_key()
        assert session.check_sat().key == key

    def test_reasserting_same_formula_reuses_encoding(self):
        session = Session()
        f = parse_formula("(< x y)")
        session.assert_formula(f)
        assert session.check_sat().status == SAT
        backend = session._backend
        selectors_before = len(backend._selectors)
        session.push()
        session.assert_formula(f)
        assert session.check_sat().status == SAT
        assert len(backend._selectors) == selectors_before


class TestEngineFallback:
    def test_uf_assertions_fall_back_to_engine(self):
        session = Session(engine="hybrid")
        session.assert_formula(parse_formula("(= x y)"))
        session.assert_formula(parse_formula("(not (= (f x) (f y)))"))
        result = session.check_sat()
        assert result.status == UNSAT
        assert result.backend == "engine"
        assert session.stats.engine_checks == 1
        # Fallback cores are the full active stack: sound, not minimal.
        assert result.core == session.assertions()

    def test_uf_sat_model_from_engine(self):
        session = Session(engine="hybrid")
        f = parse_formula("(not (= (f x) (f y)))")
        session.assert_formula(f)
        result = session.check_sat()
        assert result.status == SAT
        assert result.backend == "engine"
        assert evaluate(f, result.model) is True

    def test_mixed_stack_recovers_after_pop(self):
        # A UF assertion forces the engine path; popping it returns the
        # session to the incremental backend.
        session = Session(engine="hybrid")
        session.assert_formula(parse_formula("(< x y)"))
        session.push()
        session.assert_formula(parse_formula("(= (f x) x)"))
        assert session.check_sat().backend == "engine"
        session.pop()
        assert session.check_sat().backend == "incremental"


class TestSessionCacheComposition:
    def test_sessions_share_cache_entries(self):
        cache = ResultCache()
        stack = [parse_formula("(< x y)"), parse_formula("(< y x)")]
        first = Session(cache=cache)
        for f in stack:
            first.assert_formula(f)
        assert first.check_sat().status == UNSAT
        assert first.stats.stores == 1
        second = Session(cache=cache)
        for f in stack:
            second.assert_formula(f)
        result = second.check_sat()
        assert result.status == UNSAT
        assert result.backend == "cache"
        # A cache-served UNSAT still carries a sound core.
        assert scratch_status(result.core) == UNSAT

    def test_isomorphic_session_states_share_entries(self):
        cache = ResultCache()
        first = Session(cache=cache)
        first.assert_formula(parse_formula("(< a b)"))
        assert first.check_sat().status == SAT
        renamed = Session(cache=cache)
        renamed.assert_formula(parse_formula("(< u v)"))
        result = renamed.check_sat()
        assert result.backend == "cache"
        assert evaluate(parse_formula("(< u v)"), result.model) is True

    def test_engine_seeded_cache_hits_session(self):
        cache = ResultCache()
        g = parse_formula("(< a b)")
        request = SolveRequest(formula=Not(g))
        fingerprint = config_fingerprint("hybrid", request)
        solve_cached(
            request,
            lambda r: registry.get("hybrid").solve(r),
            cache,
            fingerprint,
            "hybrid",
        )
        session = Session(engine="hybrid", cache=cache)
        session.assert_formula(g)
        result = session.check_sat()
        assert result.backend == "cache"
        assert evaluate(g, result.model) is True

    def test_session_seeded_cache_hits_engine_path(self):
        cache = ResultCache()
        h = parse_formula("(< p q)")
        session = Session(engine="hybrid", cache=cache)
        session.assert_formula(h)
        assert session.check_sat().status == SAT
        request = SolveRequest(formula=Not(h))
        fingerprint = config_fingerprint("hybrid", request)
        outcome = solve_cached(
            request,
            lambda r: registry.get("hybrid").solve(r),
            cache,
            fingerprint,
            "hybrid",
        )
        assert outcome.status is Status.INVALID
        assert outcome.stats.cache.hits_memory == 1
        assert evaluate(h, outcome.counterexample) is True


class TestDifferentialHarness:
    """Every incremental check replayed as a fresh scratch solve.

    300 randomized sessions (the acceptance floor for this PR) with
    random assert/push/pop/check schedules, a shared engine fallback
    path (UF atoms in ~15% of sessions), and full model/core checking
    on every answer.
    """

    SESSIONS = 300

    def test_randomized_sessions_replay_clean(self):
        rng = random.Random(20260808)
        checks = 0
        unsat_seen = 0
        for index in range(self.SESSIONS):
            allow_uf = index % 7 == 0
            session = Session(engine="hybrid")
            for _ in range(rng.randint(1, 6)):
                op = rng.random()
                if op < 0.55 or not session.assertions():
                    session.assert_formula(
                        random_formula(rng, allow_uf=allow_uf)
                    )
                elif op < 0.7:
                    session.push()
                elif op < 0.8 and session.depth > 0:
                    session.pop()
                else:
                    result = check_against_scratch(session)
                    checks += 1
                    unsat_seen += result.status == UNSAT
            result = check_against_scratch(session)
            checks += 1
            unsat_seen += result.status == UNSAT
        assert checks >= self.SESSIONS
        assert unsat_seen > 10  # the harness is exercising both verdicts

    def test_prefix_sharing_chain(self):
        # The motivating workload: a growing stack checked at every
        # step, then unwound — verdicts must match scratch throughout.
        rng = random.Random(5)
        session = Session(engine="hybrid")
        depth = 0
        for _ in range(12):
            session.push()
            depth += 1
            session.assert_formula(random_formula(rng))
            check_against_scratch(session)
        while depth:
            session.pop()
            depth -= 1
            check_against_scratch(session)


def _machine_for(engine_name):
    class SessionMachine(RuleBasedStateMachine):
        """Random push/pop/assert/check sequences vs scratch solving."""

        @initialize(seed=st.integers(0, 2**32 - 1))
        def setup(self, seed):
            self.rng = random.Random(seed)
            self.session = Session(engine=engine_name)
            self.shadow = [[]]  # mirrored assertion stack

        @rule()
        def do_assert(self):
            formula = random_formula(self.rng)
            self.session.assert_formula(formula)
            self.shadow[-1].append(formula)

        @rule()
        def do_push(self):
            self.session.push()
            self.shadow.append([])

        @rule()
        def do_pop(self):
            if len(self.shadow) > 1:
                self.session.pop()
                self.shadow.pop()
            else:
                with pytest.raises(SessionError):
                    self.session.pop()

        @rule()
        def do_check(self):
            check_against_scratch(self.session, engine=engine_name)

        @invariant()
        def stacks_agree(self):
            flat = [f for frame in self.shadow for f in frame]
            assert self.session.assertions() == flat
            assert self.session.depth == len(self.shadow) - 1

    SessionMachine.__name__ = "SessionMachine_%s" % engine_name
    return SessionMachine


# Drive the state machine against every registered one-shot engine the
# fallback can route to (portfolio/cached are compositions of these and
# are exercised separately above and in test_serve.py).
MACHINE_ENGINES = ["hybrid", "static", "lazy", "svc", "sd", "eij", "brute"]


@pytest.mark.parametrize("engine_name", MACHINE_ENGINES)
def test_session_state_machine(engine_name):
    machine = _machine_for(engine_name)
    machine.TestCase.settings = settings(
        max_examples=8, stateful_step_count=12, deadline=None
    )
    runner = machine.TestCase()
    runner.runTest()
