"""Serialization round-trip properties over fuzz-generated formulas.

Three serializers must be lossless:

* s-expression printer <-> parser (exact, by hash-consing identity);
* SMT-LIB script printer <-> :func:`repro.logic.smtlib.parse_smtlib`
  (exact up to the ``not`` the script wraps around the formula);
* Tseitin CNF <-> DIMACS text (structural, and verdict-preserving).

The sample source is the fuzz generator, so every profile's shape (ITEs,
offsets, applications, Boolean skeletons) flows through each printer.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz import PROFILES, generate_formula
from repro.logic import builders as b
from repro.logic.parser import parse_formula
from repro.logic.printer import pretty, to_sexpr
from repro.logic.smtlib import parse_smtlib, to_smtlib, to_smtlib_script
from repro.logic.terms import Not
from repro.sat.dimacs import dumps, loads
from repro.sat.solver import solve_cnf
from repro.sat.tseitin import to_cnf

SAMPLES = [
    (profile, seed)
    for profile, seed in itertools.product(sorted(PROFILES), range(12))
]


def _ids(sample):
    return "%s-%d" % sample


@pytest.mark.parametrize("sample", SAMPLES, ids=_ids)
class TestEveryProfileEverySerializer:
    def test_sexpr_round_trip_is_identity(self, sample):
        profile, seed = sample
        formula = generate_formula(seed, profile)
        assert parse_formula(to_sexpr(formula)) is formula

    def test_pretty_round_trip_is_identity(self, sample):
        profile, seed = sample
        formula = generate_formula(seed, profile)
        assert parse_formula(pretty(formula)) is formula

    def test_smtlib_script_round_trip_is_identity(self, sample):
        profile, seed = sample
        formula = generate_formula(seed, profile)
        script = parse_smtlib(to_smtlib_script(formula))
        # The script asserts (not F); un-negating must give F back
        # exactly (Not(Not(F)) folds to F under hash consing).
        assert Not(script.conjunction()) is formula

    def test_dimacs_round_trip_preserves_cnf(self, sample):
        from repro.encodings.hybrid import encode_hybrid
        from repro.transform.func_elim import eliminate_applications

        profile, seed = sample
        formula = generate_formula(seed, profile)
        # Tseitin expects the propositional check formula, i.e. the
        # output of the encoding pipeline, not the raw SUF formula.
        f_sep, _ = eliminate_applications(formula)
        cnf = to_cnf(encode_hybrid(f_sep).check_formula)
        back = loads(dumps(cnf, comment="round-trip"))
        assert back.num_vars == cnf.num_vars
        assert [sorted(c) for c in back.clauses] == [
            sorted(c) for c in cnf.clauses
        ]
        assert solve_cnf(back).is_sat == solve_cnf(cnf).is_sat


class TestSmtlibPrinterDetails:
    def test_unnegated_script(self):
        x, y = b.const("x"), b.const("y")
        formula = b.lt(x, y)
        script = parse_smtlib(to_smtlib_script(formula, negate=False))
        assert script.conjunction() is formula

    def test_logic_auto_selection(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        assert "QF_IDL" in to_smtlib_script(b.lt(b.succ(x), y))
        assert "QF_UF" in to_smtlib_script(b.eq(f(x), x))
        assert "QF_UFIDL" in to_smtlib_script(
            b.band(b.eq(f(x), x), b.lt(b.succ(x), y))
        )

    def test_quoted_symbols_round_trip(self):
        ugly = b.const("two words")
        formula = b.eq(ugly, b.const("x"))
        assert "|two words|" in to_smtlib(formula)
        script = parse_smtlib(to_smtlib_script(formula))
        assert Not(script.conjunction()) is formula

    @given(
        name=st.text(
            alphabet=st.characters(
                whitelist_categories=("Ll", "Lu", "Nd"),
                whitelist_characters=" .-",
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_symbol_quoting_property(self, name):
        if name.strip() != name or "|" in name or "\\" in name:
            return  # outside the printable-symbol contract
        formula = b.eq(b.const(name), b.const("rt"))
        if formula is b.true():
            return  # name == "rt" folds the atom away
        script = parse_smtlib(to_smtlib_script(formula))
        assert Not(script.conjunction()) is formula


class TestVerdictSurvivesSmtlibRoundTrip:
    """``check-sat`` on the emitted script must answer ``unsat`` exactly
    for valid formulas (SMT-LIB semantics of asserting the negation)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_verdicts_agree(self, seed):
        from repro.core.decision import check_validity
        from repro.logic.smtlib import check_sat_smtlib

        formula = generate_formula(seed, "mixed")
        direct = check_validity(formula, want_countermodel=False)
        answer = check_sat_smtlib(to_smtlib_script(formula))
        assert (answer == "unsat") == (direct.valid is True)
