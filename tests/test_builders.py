"""Unit tests for :mod:`repro.logic.builders`."""

from repro.logic import builders as b
from repro.logic.semantics import Interpretation, evaluate
from repro.logic.terms import BoolVar, FuncApp, Lt, Offset, PredApp, Var


def interp(**vars_):
    return Interpretation(vars=vars_)


class TestTermBuilders:
    def test_const_and_func(self):
        assert isinstance(b.const("x"), Var)
        f = b.func("f")
        app = f(b.const("x"))
        assert isinstance(app, FuncApp)
        assert app.symbol == "f"
        assert f() is Var("f")  # zero arity collapses to a constant

    def test_pred_symbol(self):
        p = b.pred_symbol("p")
        app = p(b.const("x"))
        assert isinstance(app, PredApp)
        assert p() is BoolVar("p")

    def test_succ_pred_offset(self):
        x = b.const("x")
        assert b.succ(x) is Offset(x, 1)
        assert b.pred(x) is Offset(x, -1)
        assert b.succ(x, 3) is Offset(x, 3)
        assert b.pred(b.succ(x)) is x
        assert b.offset(x, 0) is x


class TestDerivedComparisons:
    def test_le_is_lt_succ(self):
        x, y = b.const("x"), b.const("y")
        assert b.le(x, y) is Lt(x, Offset(y, 1))

    def test_semantics_of_derived(self):
        x, y = b.const("x"), b.const("y")
        cases = [(1, 2), (2, 2), (3, 2)]
        for xv, yv in cases:
            env = interp(x=xv, y=yv)
            assert evaluate(b.le(x, y), env) == (xv <= yv)
            assert evaluate(b.ge(x, y), env) == (xv >= yv)
            assert evaluate(b.gt(x, y), env) == (xv > yv)
            assert evaluate(b.lt(x, y), env) == (xv < yv)
            assert evaluate(b.neq(x, y), env) == (xv != yv)

    def test_xor(self):
        p, q = b.bconst("p"), b.bconst("q")
        for pv in (False, True):
            for qv in (False, True):
                env = Interpretation(bools={"p": pv, "q": qv})
                assert evaluate(b.xor(p, q), env) == (pv != qv)


class TestDistinct:
    def test_distinct_semantics(self):
        xs = [b.const(n) for n in ("x", "y", "z")]
        formula = b.distinct(xs)
        assert evaluate(formula, interp(x=1, y=2, z=3))
        assert not evaluate(formula, interp(x=1, y=2, z=1))

    def test_distinct_small(self):
        assert b.distinct([]) is b.true()
        assert b.distinct([b.const("x")]) is b.true()


class TestConjoinDisjoin:
    def test_conjoin(self):
        p, q = b.bconst("p"), b.bconst("q")
        assert b.conjoin([p, q]) is b.band(p, q)
        assert b.conjoin([]) is b.true()

    def test_disjoin(self):
        p, q = b.bconst("p"), b.bconst("q")
        assert b.disjoin([p, q]) is b.bor(p, q)
        assert b.disjoin([]) is b.false()
