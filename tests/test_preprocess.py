"""Tests for the SatELite-style CNF preprocessor.

Each simplification rule gets a targeted unit test, the model
reconstruction stack is checked both directly and through the full
eager pipeline, and a randomized property test cross-checks
equisatisfiability plus reconstructed-model validity against the plain
CDCL solver.
"""

import random

import pytest

from repro.logic import builders as b
from repro.sat.cnf import Cnf
from repro.sat.preprocess import (
    DEFAULT_MAX_ROUNDS,
    PreprocessResult,
    preprocess_cnf,
)
from repro.sat.solver import solve_cnf


def make_cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    cnf.add_clauses(clauses)
    return cnf


def assert_model_satisfies(cnf, model):
    # Vars untouched by both solver and stack default to False.
    for clause in cnf.clauses:
        assert any(
            (lit > 0) == model.get(abs(lit), False) for lit in clause
        ), "clause %r unsatisfied by %r" % (clause, model)


def solve_and_reconstruct(cnf):
    """Preprocess, solve the simplified CNF, reconstruct; returns
    (status, model-or-None)."""
    pre = preprocess_cnf(cnf)
    if pre.status == "UNSAT":
        return "UNSAT", None
    result = solve_cnf(pre.simplified)
    if result.is_unsat:
        return "UNSAT", None
    return "SAT", pre.reconstruct(result.model)


class TestUnitPropagation:
    def test_units_fixed_to_fixpoint(self):
        # 1 forces 2 forces 3; all clauses disappear.
        cnf = make_cnf(3, [[1], [-1, 2], [-2, 3]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.units_fixed == 3
        assert pre.stats.clauses_after == 0
        assert pre.status == "SAT"
        model = pre.reconstruct({})
        assert model[1] and model[2] and model[3]

    def test_conflicting_units_unsat(self):
        cnf = make_cnf(1, [[1], [-1]])
        pre = preprocess_cnf(cnf)
        assert pre.status == "UNSAT"
        # The simplified CNF must agree with the verdict.
        assert solve_cnf(pre.simplified).is_unsat

    def test_propagation_derives_empty_clause(self):
        cnf = make_cnf(2, [[1], [2], [-1, -2]])
        assert preprocess_cnf(cnf).status == "UNSAT"

    def test_input_not_mutated(self):
        cnf = make_cnf(2, [[1], [-1, 2]])
        before = [list(c) for c in cnf.clauses]
        preprocess_cnf(cnf)
        assert cnf.clauses == before


class TestPureLiterals:
    def test_pure_literal_removes_clauses(self):
        # 3 occurs only positively; both its clauses go away, leaving
        # nothing — but the reconstruction must still satisfy them.
        cnf = make_cnf(3, [[1, 3], [2, 3]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.pure_literals >= 1
        assert pre.stats.clauses_after == 0
        _, model = solve_and_reconstruct(cnf)
        assert_model_satisfies(cnf, model)

    def test_pure_literal_negative_polarity(self):
        cnf = make_cnf(2, [[-1, 2], [-1, -2]])
        status, model = solve_and_reconstruct(cnf)
        assert status == "SAT"
        assert_model_satisfies(cnf, model)
        assert model[1] is False


class TestSubsumption:
    def test_subsumed_clause_removed(self):
        # [1, 2] subsumes [1, 2, 3].
        cnf = make_cnf(3, [[1, 2], [1, 2, 3]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.clauses_subsumed == 1

    def test_duplicate_clause_subsumed(self):
        cnf = make_cnf(2, [[1, 2], [1, 2]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.clauses_subsumed == 1

    def test_no_false_subsumption(self):
        # Neither clause subsumes the other.
        cnf = make_cnf(3, [[1, 2], [1, 3]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.clauses_subsumed == 0

    def test_tautology_dropped_on_ingest(self):
        cnf = make_cnf(2, [[1, -1], [1, 2]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.clauses_before == 2
        # the tautology is gone without counting as subsumption
        assert pre.stats.clauses_subsumed == 0


class TestSelfSubsumption:
    def test_clause_strengthened(self):
        # (1 2) self-subsumes (-1 2 3): resolving on 1 gives (2 3),
        # which replaces the longer clause.
        cnf = make_cnf(3, [[1, 2], [-1, 2, 3]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.literals_strengthened == 1
        # Later passes may simplify further; the result stays SAT and
        # the reconstruction covers whatever was removed.
        status, model = solve_and_reconstruct(cnf)
        assert status == "SAT"
        assert_model_satisfies(cnf, model)

    def test_strengthening_to_unit_cascades(self):
        # (1 2) strengthens (-1 2) to (2); the unit then satisfies both.
        cnf = make_cnf(2, [[1, 2], [-1, 2]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.clauses_after == 0
        model = pre.reconstruct({})
        assert model[2] is True
        assert_model_satisfies(cnf, model)


class TestVariableElimination:
    def test_variable_resolved_away(self):
        # Every variable occurs in both polarities (so pure-literal
        # elimination stays out of the way); 1 is cheapest to resolve
        # away: (1 2) x (-1 3) gives the single resolvent (2 3).
        cnf = make_cnf(3, [[1, 2], [-1, 3], [-2, -3], [2, 3]])
        pre = preprocess_cnf(cnf)
        assert pre.stats.vars_eliminated >= 1
        assert all(
            1 not in (abs(l) for l in c) for c in pre.simplified.clauses
        )
        status, model = solve_and_reconstruct(cnf)
        assert status == "SAT"
        assert_model_satisfies(cnf, model)

    def test_reconstruction_restores_eliminated_var(self):
        # After eliminating 1 the solver never sees it, but the
        # reconstructed model must satisfy the original clauses.
        cnf = make_cnf(3, [[1, 2], [-1, 3], [2, 3]])
        status, model = solve_and_reconstruct(cnf)
        assert status == "SAT"
        assert set(model) >= {1, 2, 3}
        assert_model_satisfies(cnf, model)

    def test_reconstruction_with_forced_polarity(self):
        # 2 is forced false, so eliminating 1 from (1 2) requires the
        # reconstruction to set 1 true.
        cnf = make_cnf(2, [[1, 2], [-2]])
        status, model = solve_and_reconstruct(cnf)
        assert status == "SAT"
        assert model[2] is False
        assert model[1] is True

    def test_elimination_detects_unsat(self):
        cnf = make_cnf(2, [[1, 2], [1, -2], [-1, 2], [-1, -2]])
        status, _ = solve_and_reconstruct(cnf)
        assert status == "UNSAT"


class TestStatsAndResult:
    def test_size_counters(self):
        cnf = make_cnf(3, [[1, 2], [1, 2, 3], [-3, 1]])
        pre = preprocess_cnf(cnf)
        stats = pre.stats
        assert stats.vars_before == 3
        assert stats.clauses_before == 3
        assert stats.literals_before == 7
        assert stats.clauses_after <= stats.clauses_before
        assert stats.rounds >= 1
        assert stats.rounds <= DEFAULT_MAX_ROUNDS
        assert stats.seconds >= 0.0

    def test_result_shares_variable_numbering(self):
        cnf = Cnf()
        x = cnf.new_var("x")
        y = cnf.new_var("y")
        cnf.add_clauses([[x], [x, y]])
        pre = preprocess_cnf(cnf)
        assert pre.simplified.num_vars == cnf.num_vars
        assert pre.simplified.lookup("x") == x
        assert pre.simplified.names[y] == "y"

    def test_empty_cnf_is_sat(self):
        pre = preprocess_cnf(Cnf())
        assert pre.status == "SAT"
        assert pre.reconstruct({}) == {}


class TestRandomizedEquisat:
    def test_random_cnfs_agree_with_solver(self):
        rng = random.Random(20260806)
        for trial in range(150):
            n = rng.randint(2, 12)
            m = rng.randint(1, 35)
            cnf = Cnf()
            for _ in range(n):
                cnf.new_var()
            for _ in range(m):
                k = rng.randint(1, 4)
                cnf.add_clause(
                    [
                        rng.choice([-1, 1]) * rng.randint(1, n)
                        for _ in range(k)
                    ]
                )
            reference = solve_cnf(cnf)
            status, model = solve_and_reconstruct(cnf)
            assert status == reference.status, "trial %d" % trial
            if status == "SAT":
                assert_model_satisfies(cnf, model)


class TestPipelineIntegration:
    def test_verdicts_match_with_and_without_preprocessing(self):
        from repro.engine import registry
        from repro.engine.contract import SolveRequest
        from repro.logic.semantics import evaluate

        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formulas = [
            b.implies(b.band(b.eq(x, y), b.eq(y, z)), b.eq(x, z)),
            b.implies(b.eq(x, y), b.eq(y, z)),
            b.implies(b.lt(x, y), b.bnot(b.eq(x, y))),
            b.band(b.lt(x, y), b.lt(y, x)),
        ]
        for method in ("sd", "hybrid"):
            engine = registry.get(method)
            for formula in formulas:
                with_pre = engine.solve(
                    SolveRequest(formula=formula, preprocess=True)
                )
                without = engine.solve(
                    SolveRequest(formula=formula, preprocess=False)
                )
                assert with_pre.status == without.status
                if with_pre.counterexample is not None:
                    # The reconstructed countermodel must falsify the
                    # input formula, exactly like the raw one.
                    assert not evaluate(formula, with_pre.counterexample)

    def test_preprocess_stage_recorded(self):
        from repro.engine import registry
        from repro.engine.contract import SolveRequest

        x, y = b.const("x"), b.const("y")
        formula = b.implies(b.eq(x, y), b.eq(y, x))
        outcome = registry.get("hybrid").solve(SolveRequest(formula=formula))
        names = [record.name for record in outcome.stages]
        assert "preprocess" in names
        assert outcome.stats.preprocess is not None
        record = next(r for r in outcome.stages if r.name == "preprocess")
        assert record.counters["clauses_before"] >= record.counters[
            "clauses_after"
        ]

    def test_no_preprocess_skips_stage(self):
        from repro.engine import registry
        from repro.engine.contract import SolveRequest

        x, y = b.const("x"), b.const("y")
        formula = b.implies(b.eq(x, y), b.eq(y, x))
        outcome = registry.get("hybrid").solve(
            SolveRequest(formula=formula, preprocess=False)
        )
        assert "preprocess" not in [r.name for r in outcome.stages]
        assert outcome.stats.preprocess is None
