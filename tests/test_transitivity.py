"""Transitivity-constraint generation tests.

The central property (completeness): for any truth assignment to the EIJ
Boolean variables, the generated constraints are all satisfied *iff* the
asserted difference bounds have no negative cycle.  This is exactly what
makes ``F_trans ⟹ F_bvar`` equivalid with the input formula.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.encodings.sepvars import SepVarRegistry
from repro.encodings.transitivity import (
    TransitivityBudgetExceeded,
    TransitivityStats,
    generate_transitivity,
)
from repro.logic.terms import And, Var
from repro.theory.difference import check_bounds


def make_vars(n):
    return [Var("tv%d" % i) for i in range(n)]


class TestBasicGeneration:
    def test_empty_registry(self):
        registry = SepVarRegistry()
        assert generate_transitivity(registry, make_vars(3)) == []

    def test_triangle_chain(self):
        registry = SepVarRegistry()
        x, y, z = make_vars(3)
        registry.literal(x, y, 0)
        registry.literal(y, z, 0)
        registry.literal(x, z, 0)
        clauses = generate_transitivity(registry, [x, y, z])
        assert clauses  # at least the chained implication

    def test_budget_exceeded(self):
        registry = SepVarRegistry()
        vars_ = make_vars(8)
        rng = random.Random(0)
        for _ in range(40):
            a, c = rng.sample(vars_, 2)
            registry.literal(a, c, rng.randint(-5, 5))
        stats = TransitivityStats()
        with pytest.raises(TransitivityBudgetExceeded):
            generate_transitivity(registry, vars_, budget=3, stats=stats)

    def test_stats_populated(self):
        registry = SepVarRegistry()
        x, y, z = make_vars(3)
        registry.literal(x, y, 1)
        registry.literal(y, z, -2)
        registry.literal(x, z, 0)
        stats = TransitivityStats()
        generate_transitivity(registry, [x, y, z], stats=stats)
        assert stats.eliminated_nodes == 3
        assert stats.clauses > 0

    def test_other_class_vars_ignored(self):
        registry = SepVarRegistry()
        x, y, u, v = make_vars(4)
        registry.literal(x, y, 0)
        registry.literal(u, v, 0)
        clauses = generate_transitivity(registry, [x, y])
        # No pair inside {x, y} can chain with (u, v).
        for clause in clauses:
            for node in clause.children() or [clause]:
                pass  # structure only; just ensure generation ran
        assert isinstance(clauses, list)


def assignment_consistent(registry, assignment):
    """Theory-consistency of a full Boolean assignment via Bellman-Ford."""
    bounds = registry.asserted_bounds(assignment)
    return check_bounds(bounds).consistent


def constraints_satisfied(clauses, assignment, registry):
    """Is there an extension of ``assignment`` (to the derived variables)
    satisfying every transitivity clause?  Decided with the SAT solver."""
    from repro.sat.solver import solve_cnf
    from repro.sat.tseitin import to_cnf

    cnf = to_cnf(And(*clauses))
    for var, value in assignment.items():
        idx = cnf.var_for(var)
        cnf.add_clause([idx if value else -idx])
    return solve_cnf(cnf).is_sat


class TestCompleteness:
    """The paper's requirement: F_trans rules out exactly the assignments
    with no corresponding integer model."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_consistent_iff_extendable(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        vars_ = make_vars(n)
        registry = SepVarRegistry()
        atoms = []
        for _ in range(rng.randint(1, 7)):
            a, c = rng.sample(vars_, 2)
            atoms.append(registry.literal(a, c, rng.randint(-3, 3)))
        original_vars = registry.all_vars()
        clauses = generate_transitivity(registry, vars_)

        # Sample full assignments to the original variables.
        for _ in range(min(2 ** len(original_vars), 8)):
            assignment = {
                v: rng.random() < 0.5 for v in original_vars
            }
            consistent = assignment_consistent(registry, assignment)
            satisfied = constraints_satisfied(
                clauses, assignment, registry
            )
            # Consistent assignments extend to satisfy F_trans;
            # inconsistent ones must violate it under every extension.
            assert satisfied == consistent
