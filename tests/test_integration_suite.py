"""Suite-level integration regression: the evaluation's load-bearing facts.

A compact, fast subset of the full experiment claims, pinned as ordinary
tests so regressions in the encoders/benchmarks surface in `pytest tests/`
without running the multi-minute benchmark harness.
"""

import pytest

from repro.benchgen.suite import (
    benchmark_by_name,
    invariant_suite,
    non_invariant_suite,
)
from repro.core import check_validity
from repro.experiments.runner import (
    CALIBRATED_SEP_THOLD,
    DEFAULT_TRANS_BUDGET,
)


def decide(bench, method, **kw):
    return check_validity(
        bench.formula,
        method=method,
        sep_thold=kw.pop("sep_thold", CALIBRATED_SEP_THOLD),
        trans_budget=DEFAULT_TRANS_BUDGET,
        sat_time_limit=kw.pop("sat_time_limit", 30.0),
        want_countermodel=False,
        **kw,
    )


class TestInvariantRegime:
    """One representative invariant benchmark shows the Figure-5 facts."""

    @pytest.fixture(scope="class")
    def bench(self):
        return invariant_suite()[2]  # cells=12

    def test_eij_translation_explodes(self, bench):
        result = decide(bench, "eij")
        assert result.status == "TRANSLATION_LIMIT"

    def test_hybrid_default_follows_eij(self, bench):
        result = decide(bench, "hybrid")
        assert result.status == "TRANSLATION_LIMIT"

    def test_sd_completes(self, bench):
        result = decide(bench, "sd")
        assert result.valid is True

    def test_lowered_threshold_switches_to_sd(self, bench):
        result = decide(bench, "hybrid", sep_thold=30)
        assert result.valid is True


class TestNonInvariantRegime:
    def test_equality_heavy_eij_fast_sd_struggles(self):
        bench = benchmark_by_name("cache_c5_4")
        eij = decide(bench, "eij")
        assert eij.valid is True
        assert eij.stats.total_seconds < 8.0
        hybrid = decide(bench, "hybrid")
        assert hybrid.valid is True

    def test_offset_heavy_eij_fails_hybrid_switches(self):
        bench = benchmark_by_name("driver_s16_6")
        eij = decide(bench, "eij")
        assert eij.status == "TRANSLATION_LIMIT"
        hybrid = decide(bench, "hybrid")
        assert hybrid.valid is True  # SepCnt > threshold -> SD class

    def test_hybrid_decides_a_cross_section(self):
        picks = non_invariant_suite()[::9]
        for bench in picks:
            result = decide(bench, "hybrid")
            assert result.valid is True, bench.name


class TestThresholdEndpoints:
    def test_threshold_zero_matches_sd(self):
        bench = benchmark_by_name("ooo_t8_4")
        hybrid0 = decide(bench, "hybrid", sep_thold=0)
        sd = decide(bench, "sd")
        assert hybrid0.valid == sd.valid is True
        assert (
            hybrid0.stats.encoding.sd_classes
            == sd.stats.encoding.sd_classes
        )

    def test_threshold_infinity_matches_eij(self):
        bench = benchmark_by_name("loadstore_e7_p14_3")
        hybrid_inf = decide(bench, "hybrid", sep_thold=10**9)
        eij = decide(bench, "eij")
        assert hybrid_inf.valid == eij.valid is True
        assert hybrid_inf.stats.encoding.eij_classes == (
            eij.stats.encoding.eij_classes
        )
