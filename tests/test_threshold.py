"""Tests for the SEP_THOLD auto-selection procedure (paper §4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encodings.threshold import (
    select_threshold,
    two_cluster_split,
)


class TestTwoClusterSplit:
    def test_obvious_gap(self):
        values = [1.0, 1.1, 1.2, 100.0, 101.0]
        assert two_cluster_split(values) == 3

    def test_gap_at_end(self):
        values = [1.0, 1.0, 1.0, 50.0]
        assert two_cluster_split(values) == 3

    def test_tiny_inputs(self):
        assert two_cluster_split([]) == 0
        assert two_cluster_split([5.0]) == 1
        assert two_cluster_split([1.0, 100.0]) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        low=st.lists(st.floats(0.1, 2.0), min_size=2, max_size=8),
        high=st.lists(st.floats(100.0, 130.0), min_size=2, max_size=8),
    )
    def test_separated_clusters_found(self, low, high):
        # Two tight clusters with a wide gap: the variance-minimising
        # split lands on the gap.  (With a very *spread* second cluster
        # the metric can legitimately shave its extremes off, so the
        # strategy keeps each cluster's spread well below the gap.)
        values = sorted(low) + sorted(high)
        assert two_cluster_split(values) == len(low)


class TestSelectThreshold:
    def test_paper_style_selection(self):
        # Fast cluster up to 676 separation predicates, slow beyond:
        # the selected threshold is the next multiple of 100 above 676.
        samples = [
            (50, 0.5),
            (120, 0.8),
            (300, 1.2),
            (676, 2.0),
            (900, 300.0),
            (1500, 400.0),
        ]
        selection = select_threshold(samples)
        assert selection.boundary_sep_count == 676
        assert selection.threshold == 700

    def test_threshold_is_multiple_of_rounding(self):
        samples = [(33, 0.1), (62, 0.2), (410, 99.0), (800, 120.0)]
        selection = select_threshold(samples)
        assert selection.threshold % 100 == 0
        assert selection.threshold > selection.boundary_sep_count

    def test_custom_rounding(self):
        samples = [(7, 0.1), (9, 0.2), (40, 50.0)]
        selection = select_threshold(samples, round_to=10)
        assert selection.threshold == 10

    def test_single_sample(self):
        selection = select_threshold([(42, 1.0)])
        assert selection.threshold == 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            select_threshold([])

    def test_timeouts_land_in_slow_cluster(self):
        # Timed-out benchmarks carry a sentinel time; they must not drag
        # the boundary below the fast benchmarks.
        samples = [(10, 0.1), (20, 0.2), (30, 0.3), (5000, 1e6), (6000, 1e6)]
        selection = select_threshold(samples)
        assert selection.boundary_sep_count == 30
        assert selection.threshold == 100
