"""Tests for the SVC-style case-splitting procedure."""

import pytest

from repro.logic import builders as b
from repro.logic.semantics import evaluate
from repro.solvers.svclike import check_validity_svc


class TestVerdicts:
    def test_valid_chain(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.implies(b.band(b.lt(x, y), b.lt(y, z)), b.lt(x, z))
        result = check_validity_svc(formula)
        assert result.valid is True
        assert result.stats.theory_checks > 0

    def test_invalid_with_countermodel(self):
        x, y = b.const("x"), b.const("y")
        formula = b.implies(b.le(x, y), b.eq(x, y))
        result = check_validity_svc(formula)
        assert result.valid is False
        assert not evaluate(formula, result.counterexample)

    def test_disequality_split(self):
        # not(x = y) forces the x < y vs y < x case split.
        x, y = b.const("x"), b.const("y")
        formula = b.implies(
            b.bnot(b.eq(x, y)), b.bor(b.lt(x, y), b.lt(y, x))
        )
        assert check_validity_svc(formula).valid is True

    def test_uninterpreted_functions(self):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.implies(b.eq(x, y), b.eq(f(x), f(y)))
        assert check_validity_svc(formula).valid is True

    def test_ite_flattening(self):
        x, y = b.const("x"), b.const("y")
        maxi = b.ite(b.lt(x, y), y, x)
        formula = b.le(x, maxi)
        assert check_validity_svc(formula).valid is True

    def test_boolean_vars(self):
        p = b.bconst("P")
        x, y = b.const("x"), b.const("y")
        assert check_validity_svc(b.bor(p, b.bnot(p))).valid is True
        assert check_validity_svc(b.implies(p, b.lt(x, y))).valid is False


class TestConjunctionVsDisjunction:
    """The paper's observed SVC profile: conjunctions are cheap,
    disjunction-heavy formulas explode in case splits."""

    def test_conjunction_decided_with_few_splits(self):
        vs = [b.const("cv%d" % i) for i in range(8)]
        conj = b.band(*[b.lt(vs[i], vs[i + 1]) for i in range(7)])
        # A conjunction (invalid as a formula: countermodel found fast).
        result = check_validity_svc(conj)
        assert result.valid is False
        assert result.stats.splits <= 40

    def test_disjunctive_formula_needs_many_splits(self):
        p = [b.bconst("dv%d" % i) for i in range(10)]
        # XOR chain: every assignment must be enumerated to prove it
        # non-valid... actually to find one falsifying one; use a valid
        # formula built from many disjunctions instead.
        x = [b.const("dx%d" % i) for i in range(6)]
        disjuncts = []
        for i in range(5):
            disjuncts.append(
                b.bor(b.lt(x[i], x[i + 1]), b.le(x[i + 1], x[i]))
            )
        formula = b.band(*disjuncts)  # valid: total order
        result = check_validity_svc(formula)
        assert result.valid is True
        conj_result = check_validity_svc(
            b.implies(b.band(*[b.lt(x[i], x[i + 1]) for i in range(5)]),
                      b.lt(x[0], x[5]))
        )
        assert conj_result.valid is True
        # The disjunctive formula required at least as many splits.
        assert result.stats.splits >= conj_result.stats.splits

    def test_split_limit_returns_unknown(self):
        x = [b.const("sl%d" % i) for i in range(8)]
        parts = []
        for i in range(7):
            parts.append(b.bor(b.lt(x[i], x[i + 1]), b.lt(x[i + 1], x[i])))
        formula = b.bor(b.band(*parts), b.eq(x[0], x[1]))
        result = check_validity_svc(formula, max_splits=1)
        assert result.valid is None

    def test_time_limit_returns_unknown(self):
        x = [b.const("tl%d" % i) for i in range(12)]
        parts = [
            b.bor(b.lt(x[i], x[i + 1]), b.lt(x[i + 1], x[i]))
            for i in range(11)
        ]
        result = check_validity_svc(b.band(*parts), time_limit=0.0)
        assert result.valid is None


class TestPruning:
    def test_theory_pruning_counts(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.implies(
            b.band(b.lt(x, y), b.lt(y, z), b.lt(z, x)), b.false()
        )
        # Antecedent is theory-inconsistent: branches get pruned.
        result = check_validity_svc(formula)
        assert result.valid is True
        assert result.stats.pruned_branches > 0
