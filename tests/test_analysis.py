"""Tests for the repo-specific static analysis suite.

Three layers: the framework core (suppressions, registry, reporters),
each rule against a fixture seeded with exactly one violation, and the
acceptance criterion that the real tree under ``src/repro`` is clean.
"""

import io
import json
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    ModuleContext,
    Project,
    Rule,
    all_rules,
    analyze_paths,
    analyze_project,
    is_lock_expr,
    register_rule,
    rules_by_code,
)
from repro.analysis.reporters import (
    render_human,
    render_json,
    render_rule_catalog,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"
MODULE_FIXTURES = FIXTURES / "module_rules"

ALL_CODES = (
    "RC101", "RC102", "RC103", "RC104", "RC105",
    "RD201", "RD202", "RD203", "RD204", "RD205",
    "RE301", "RE302", "RE303", "RE304", "RE305",
    "RL501", "RL502", "RL503",
    "RP401", "RP402",
)


def run_cli(argv):
    """Run the CLI capturing stdout; returns (exit_code, output)."""
    old_stdout = sys.stdout
    sys.stdout = io.StringIO()
    try:
        code = main(argv)
        return code, sys.stdout.getvalue()
    finally:
        sys.stdout = old_stdout


# ---------------------------------------------------------------------------
# Framework core
# ---------------------------------------------------------------------------


class TestFramework:
    def test_all_rules_registered(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert set(codes) == set(ALL_CODES)

    def test_every_rule_has_metadata(self):
        for rule in all_rules():
            assert rule.code and rule.name and rule.description

    def test_rules_by_code_selects(self):
        rules = rules_by_code(["rd202", "RC101"])
        assert [r.code for r in rules] == ["RD202", "RC101"]

    def test_rules_by_code_unknown(self):
        with pytest.raises(KeyError):
            rules_by_code(["RX999"])

    def test_duplicate_rule_code_rejected(self):
        with pytest.raises(ValueError):
            register_rule(
                type("Clone", (Rule,), {"code": "RC101", "name": "x"})
            )

    def test_finding_location_is_one_based_col(self):
        finding = Finding("RC101", "a.py", 3, 0, "msg")
        assert finding.location() == "a.py:3:1"
        assert finding.to_jsonable()["col"] == 1

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("self._lock", True),
            ("_REGISTRY_LOCK", True),
            ("write_rlock", True),
            ("mutex", True),
            ("clock", False),
            ("blocks", False),
            ("padlocked", False),
        ],
    )
    def test_lock_name_heuristic(self, name, expected):
        import ast

        expr = ast.parse(name, mode="eval").body
        assert is_lock_expr(expr) is expected


# ---------------------------------------------------------------------------
# Per-module rules, one seeded fixture each
# ---------------------------------------------------------------------------


MODULE_CASES = [
    ("rc101_unguarded.py", "RC101", "without holding a lock"),
    ("rc102_flag_order.py", "RC102", "before the protected"),
    ("rc103_worker_target.py", "RC103", "lambda"),
    ("rd201_id_order.py", "RD201", "sort key depends on id()"),
    ("rd202_set_join.py", "RD202", "join() over a set"),
    ("rd203_clock_in_digest.py", "RD203", "time.time()"),
    ("rd204_unversioned.py", "RD204", "without folding"),
    ("re304_silent_except.py", "RE304", "swallows the failure"),
    ("rp401_tuple_alloc.py", "RP401", "allocated per iteration"),
    ("rp402_attr_reload.py", "RP402", "cache it in a local"),
    # Flow-sensitive rules (CFG + dataflow).
    ("rc105_acquire_release.py", "RC105", "release is not guaranteed"),
    ("rd205_unreachable.py", "RD205", "unreachable"),
    ("re305_session_finalize.py", "RE305", "finalize it in a finally"),
    ("rl501_process_join.py", "RL501", "may never be joined"),
    ("rl502_terminate.py", "RL502", "no reachable"),
    ("rl503_tempfile.py", "RL503", "may never be removed"),
]


class TestModuleRules:
    @pytest.mark.parametrize("filename,code,fragment", MODULE_CASES)
    def test_fixture_triggers_exactly_its_rule(
        self, filename, code, fragment
    ):
        findings = analyze_paths([str(MODULE_FIXTURES / filename)])
        assert [f.code for f in findings] == [code]
        assert fragment in findings[0].message

    def test_seeded_line_is_the_marked_one(self):
        # Every fixture marks its violation with a "seeded" comment; the
        # finding must land on that exact line.
        for filename, code, _ in MODULE_CASES:
            path = MODULE_FIXTURES / filename
            marked = [
                index
                for index, line in enumerate(
                    path.read_text().splitlines(), start=1
                )
                if "seeded " + code in line
            ]
            (finding,) = analyze_paths([str(path)])
            assert finding.line in marked, filename


# ---------------------------------------------------------------------------
# Perf rules: marker scoping and exemptions
# ---------------------------------------------------------------------------


def _perf_findings(source):
    import ast as _ast

    from repro.analysis.rules.perf import (
        ContainerAllocationInHotLoop,
        RepeatedAttributeLoadInHotLoop,
    )

    module = ModuleContext("inline.py", source, _ast.parse(source))
    findings = list(ContainerAllocationInHotLoop().check(module))
    findings += list(RepeatedAttributeLoadInHotLoop().check(module))
    return findings


class TestPerfRules:
    def test_unmarked_function_is_ignored(self):
        source = (
            "def build(rows):\n"
            "    out = []\n"
            "    for row in rows:\n"
            "        out.append((row, row.key))\n"
            "        total = row.stats.a + row.stats.b\n"
            "    return out\n"
        )
        assert _perf_findings(source) == []

    def test_marker_on_def_line_scopes_the_function(self):
        source = (
            "def hot(rows):  # repro: hot-loop\n"
            "    for row in rows:\n"
            "        yield (row, 1)\n"
            "def cold(rows):\n"
            "    for row in rows:\n"
            "        yield (row, 1)\n"
        )
        findings = _perf_findings(source)
        assert [f.code for f in findings] == ["RP401"]
        assert "hot" in findings[0].message

    def test_swap_and_constant_tuples_exempt(self):
        source = (
            "def hot(rows):  # repro: hot-loop\n"
            "    a, b = 0, 1\n"
            "    for row in rows:\n"
            "        a, b = b, a\n"
            "        shape = (2, 3)\n"
            "    return a, b, shape\n"
        )
        assert _perf_findings(source) == []

    def test_allocation_outside_loop_is_fine(self):
        source = (
            "def hot(rows):  # repro: hot-loop\n"
            "    seen = set()\n"
            "    for row in rows:\n"
            "        seen.add(row)\n"
            "    return seen\n"
        )
        assert _perf_findings(source) == []

    def test_repeated_chain_reported_once_at_longest(self):
        source = (
            "def hot(self, rows):  # repro: hot-loop\n"
            "    t = 0\n"
            "    for row in rows:\n"
            "        t += self.stats.weight\n"
            "        t += self.stats.weight\n"
            "    return t\n"
        )
        findings = _perf_findings(source)
        assert [f.code for f in findings] == ["RP402"]
        assert "'self.stats.weight'" in findings[0].message

    def test_single_load_per_iteration_is_fine(self):
        source = (
            "def hot(self, rows):  # repro: hot-loop\n"
            "    t = 0\n"
            "    for row in rows:\n"
            "        t += self.weight\n"
            "    return t\n"
        )
        assert _perf_findings(source) == []

    def test_inner_loop_repeats_charged_to_inner_only(self):
        source = (
            "def hot(self, grid):  # repro: hot-loop\n"
            "    t = 0\n"
            "    for row in grid:\n"
            "        for cell in row:\n"
            "            t += self.stats.weight\n"
            "            t += self.stats.weight\n"
            "    return t\n"
        )
        findings = _perf_findings(source)
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_store_context_does_not_count(self):
        source = (
            "def hot(self, rows):  # repro: hot-loop\n"
            "    for row in rows:\n"
            "        self.cursor = row\n"
            "        self.cursor = row\n"
        )
        assert _perf_findings(source) == []

    def test_propagate_is_marked_and_clean(self):
        # The rules exist because of _propagate; it must carry the
        # marker and satisfy them (locals cached, no per-iteration
        # containers).
        path = REPO_ROOT / "src" / "repro" / "sat" / "solver.py"
        source = path.read_text()
        assert "def _propagate(self) -> int:  # repro: hot-loop" in source
        from repro.analysis.rules.perf import hot_loop_functions

        import ast as _ast

        module = ModuleContext(str(path), source, _ast.parse(source))
        marked = [f.name for f in hot_loop_functions(module)]
        assert "_propagate" in marked


# ---------------------------------------------------------------------------
# Project-wide rules over the fixture mini-project
# ---------------------------------------------------------------------------


class TestProjectRules:
    @pytest.fixture(scope="class")
    def findings(self):
        return analyze_paths([str(FIXTURES / "project_rules")])

    def test_exactly_the_seeded_findings(self, findings):
        assert sorted(f.code for f in findings) == [
            "RE301", "RE302", "RE303",
        ]

    def test_unregistered_engine_named(self, findings):
        (f,) = [f for f in findings if f.code == "RE301"]
        assert "GhostEngine" in f.message
        assert f.path.endswith("engines.py")

    def test_missing_status_member_named(self, findings):
        (f,) = [f for f in findings if f.code == "RE302"]
        assert "UNKNOWN" in f.message
        assert f.path.endswith("dispatch.py")

    def test_orphan_stats_field_named(self, findings):
        (f,) = [f for f in findings if f.code == "RE303"]
        assert "ghost_counter" in f.message
        assert f.path.endswith("result.py")


# ---------------------------------------------------------------------------
# The lock-order graph (RC104) and the flow-clean true negatives
# ---------------------------------------------------------------------------


class TestLockGraph:
    def test_ab_ba_cycle_across_modules(self):
        findings = analyze_paths([str(FIXTURES / "lock_order")])
        assert [f.code for f in findings] == ["RC104"]
        (finding,) = findings
        # Both locks, both witness sites, anchored at the first one.
        assert "CACHE_LOCK" in finding.message
        assert "REGISTRY_LOCK" in finding.message
        assert "order_ba.py" in finding.message
        assert finding.path.endswith("order_ab.py")
        marked = [
            index
            for index, line in enumerate(
                (FIXTURES / "lock_order" / "order_ab.py")
                .read_text()
                .splitlines(),
                start=1,
            )
            if "seeded RC104" in line
        ]
        assert finding.line in marked

    def test_single_module_has_no_cycle(self):
        findings = analyze_paths(
            [str(FIXTURES / "lock_order" / "order_ab.py")]
        )
        assert findings == []

    def test_flow_clean_true_negatives(self):
        # try/finally release, joined Process, terminate-then-join,
        # cleaned tempfile, closed session, reachable post-loop code,
        # and a consistent lock order: all clean.
        assert analyze_paths([str(FIXTURES / "flow_clean")]) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_suppressed_fixture_is_clean(self):
        assert analyze_paths([str(FIXTURES / "suppressed")]) == []

    def test_without_suppressions_the_violations_surface(self):
        # Strip the markers and re-analyze: the three seeded RD202
        # violations must come back, proving the comments (not luck)
        # keep the fixture clean.
        path = FIXTURES / "suppressed" / "justified.py"
        source = path.read_text().replace("repro: ignore", "noqa")
        import ast

        module = ModuleContext(str(path), source, ast.parse(source))
        findings = analyze_project(
            Project([module]), rules_by_code(["RD202"])
        )
        assert len(findings) == 3

    def test_inline_suppression_is_code_specific(self):
        import ast

        source = (
            "def f(tags):\n"
            "    return ','.join(set(tags))"
            "  # repro: ignore[RC101] -- wrong code\n"
        )
        module = ModuleContext("x.py", source, ast.parse(source))
        findings = analyze_project(
            Project([module]), rules_by_code(["RD202"])
        )
        assert [f.code for f in findings] == ["RD202"]


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


class TestReporters:
    FINDINGS = [
        Finding("RD202", "a.py", 4, 8, "join() over a set"),
        Finding("RC101", "b.py", 9, 4, "mutated without a lock"),
    ]

    def test_render_human_lists_locations(self):
        text = render_human(self.FINDINGS, checked_files=2)
        assert "a.py:4:9: RD202" in text
        assert "2 finding(s) in 2 file(s)" in text

    def test_render_human_clean(self):
        assert "clean: 0 findings" in render_human([], checked_files=5)

    def test_render_json_structure(self):
        payload = json.loads(render_json(self.FINDINGS, checked_files=2))
        assert payload["summary"]["findings"] == 2
        assert payload["summary"]["files_checked"] == 2
        assert payload["summary"]["by_code"] == {"RC101": 1, "RD202": 1}
        assert payload["findings"][0]["code"] == "RD202"

    def test_rule_catalog_covers_every_code(self):
        catalog = render_rule_catalog(all_rules())
        for code in ALL_CODES:
            assert code in catalog


# ---------------------------------------------------------------------------
# The acceptance criterion: the real tree is clean
# ---------------------------------------------------------------------------


class TestCleanTree:
    def test_src_repro_has_no_findings(self):
        findings = analyze_paths([str(REPO_ROOT / "src" / "repro")])
        assert findings == [], "\n".join(
            "%s %s" % (f.location(), f.code) for f in findings
        )


# ---------------------------------------------------------------------------
# CLI dispatch
# ---------------------------------------------------------------------------


class TestAnalyzeCli:
    def test_lint_mode_exit_one_on_findings(self):
        code, out = run_cli(
            ["analyze", str(MODULE_FIXTURES / "rd202_set_join.py")]
        )
        assert code == 1
        assert "RD202" in out

    def test_lint_mode_exit_zero_on_clean(self):
        code, out = run_cli(["analyze", str(FIXTURES / "suppressed")])
        assert code == 0
        assert "clean" in out

    def test_json_format(self):
        code, out = run_cli(
            [
                "analyze",
                str(MODULE_FIXTURES / "rd204_unversioned.py"),
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["summary"]["by_code"] == {"RD204": 1}

    def test_rules_filter(self):
        code, out = run_cli(
            [
                "analyze",
                str(MODULE_FIXTURES / "rd202_set_join.py"),
                "--rules",
                "RC101",
            ]
        )
        assert code == 0

    def test_unknown_rule_exits_two(self):
        code, _ = run_cli(
            ["analyze", str(MODULE_FIXTURES), "--rules", "RX999"]
        )
        assert code == 2

    def test_no_paths_exits_two(self):
        code, _ = run_cli(["analyze"])
        assert code == 2

    def test_list_rules(self):
        code, out = run_cli(["analyze", "--list-rules"])
        assert code == 0
        assert "RC101" in out and "RE304" in out

    def test_formula_mode_still_dispatches(self):
        # Non-.py, non-directory paths keep the historical behaviour:
        # separation analysis of a parsed formula.
        old_stdin = sys.stdin
        sys.stdin = io.StringIO("(=> (< x y) (<= x y))")
        try:
            code, out = run_cli(["analyze", "-"])
        finally:
            sys.stdin = old_stdin
        assert code == 0
        assert "classes:" in out


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


class TestBaseline:
    SEEDED = str(MODULE_FIXTURES / "rd202_set_join.py")

    def test_write_then_compare_is_clean(self, tmp_path):
        baseline = str(tmp_path / "base.json")
        code, out = run_cli(
            ["analyze", self.SEEDED, "--baseline", baseline,
             "--write-baseline"]
        )
        assert code == 0
        assert "wrote 1 finding(s)" in out
        code, out = run_cli(
            ["analyze", self.SEEDED, "--baseline", baseline]
        )
        assert code == 0
        assert "clean" in out

    def test_new_finding_fails_despite_baseline(self, tmp_path):
        baseline = str(tmp_path / "base.json")
        code, _ = run_cli(
            ["analyze", self.SEEDED, "--baseline", baseline,
             "--write-baseline"]
        )
        assert code == 0
        other = str(MODULE_FIXTURES / "rl501_process_join.py")
        code, out = run_cli(
            ["analyze", self.SEEDED, other, "--baseline", baseline]
        )
        assert code == 1
        assert "RL501" in out and "RD202" not in out

    def test_prune_flags_stale_entries(self, tmp_path):
        baseline = str(tmp_path / "base.json")
        code, _ = run_cli(
            ["analyze", self.SEEDED, "--baseline", baseline,
             "--write-baseline"]
        )
        assert code == 0
        clean = str(FIXTURES / "suppressed")
        # Without --prune the stale entry is tolerated...
        code, _ = run_cli(["analyze", clean, "--baseline", baseline])
        assert code == 0
        # ...with --prune it fails until the baseline is regenerated.
        code, _ = run_cli(
            ["analyze", clean, "--baseline", baseline, "--prune"]
        )
        assert code == 1

    def test_write_baseline_requires_file(self):
        code, _ = run_cli(["analyze", self.SEEDED, "--write-baseline"])
        assert code == 2

    def test_exclude_skips_subtree(self):
        code, out = run_cli(
            [
                "analyze",
                str(MODULE_FIXTURES),
                "--exclude",
                str(MODULE_FIXTURES),
            ]
        )
        assert code == 0
        assert "0 findings in 0 file(s)" in out

    def test_committed_baseline_matches_the_tree(self, monkeypatch):
        # The acceptance criterion: `repro analyze src tools tests`
        # runs clean modulo the committed baseline, with no stale
        # entries and every suppression justified.
        monkeypatch.chdir(REPO_ROOT)
        code, out = run_cli(
            [
                "analyze", "src", "tools", "tests",
                "--exclude", "tests/fixtures/analysis",
                "--baseline", "analysis-baseline.json",
                "--prune",
                "--check-suppressions",
            ]
        )
        assert code == 0, out


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------


class TestSarif:
    def test_sarif_shape(self):
        code, out = run_cli(
            [
                "analyze",
                str(MODULE_FIXTURES / "rd202_set_join.py"),
                "--format",
                "sarif",
            ]
        )
        assert code == 1
        log = json.loads(out)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == ["RD202"]
        (result,) = run["results"]
        assert result["ruleId"] == "RD202"
        assert result["ruleIndex"] == 0
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "rd202_set_join.py"
        )
        assert location["region"]["startLine"] > 0
        assert location["region"]["startColumn"] > 0

    def test_sarif_clean_run_has_no_results(self):
        code, out = run_cli(
            [
                "analyze",
                str(FIXTURES / "suppressed"),
                "--format",
                "sarif",
            ]
        )
        assert code == 0
        log = json.loads(out)
        assert log["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# Suppression-debt reporting
# ---------------------------------------------------------------------------


class TestSuppressionDebt:
    def _module(self, tmp_path, body):
        path = tmp_path / "debt.py"
        path.write_text(body)
        return str(path)

    def test_list_suppressions_shows_justifications(self, tmp_path):
        # The markers are assembled by concatenation so this test file
        # itself never matches the tree-wide suppression scan.
        path = self._module(
            tmp_path,
            "x = ','.join({'a'})  # repro: "
            + "ignore[RD202] -- output is order-free\n"
            + "y = ','.join({'b'})  # repro: "
            + "ignore[RD202]\n",
        )
        code, out = run_cli(["analyze", path, "--list-suppressions"])
        assert code == 0
        assert "output is order-free" in out
        assert "(no justification)" in out
        assert "2 suppression(s), 1 without" in out

    def test_check_suppressions_fails_on_missing_why(self, tmp_path):
        path = self._module(
            tmp_path,
            "y = ','.join({'b'})  # repro: " + "ignore[RD202]\n",
        )
        code, out = run_cli(["analyze", path, "--check-suppressions"])
        assert code == 1
        assert "RS901" in out

    def test_check_suppressions_passes_with_why(self, tmp_path):
        path = self._module(
            tmp_path,
            "y = ','.join({'b'})  # repro: "
            + "ignore[RD202] -- fixture, order-free\n",
        )
        code, out = run_cli(["analyze", path, "--check-suppressions"])
        assert code == 0

    def test_blanket_suppression_cannot_hide_the_debt_check(self, tmp_path):
        # RS901 is produced at the CLI layer precisely so a bare
        # blanket ignore cannot silence its own finding.
        path = self._module(
            tmp_path, "y = ','.join({'b'})  # repro: " + "ignore\n"
        )
        code, out = run_cli(["analyze", path, "--check-suppressions"])
        assert code == 1
        assert "RS901" in out

    def test_list_suppressions_clean_tree(self, tmp_path):
        path = self._module(tmp_path, "x = 1\n")
        code, out = run_cli(["analyze", path, "--list-suppressions"])
        assert code == 0
        assert "no suppressions" in out
