"""Tests for the CFG builder and the forward dataflow solver.

Two layers: structural unit tests pinning the edge semantics the
flow-sensitive rules rely on (exception edges carry pre-state, finally
funnels intercept early exits, handlers stay reachable), and a
hypothesis property over randomly generated functions: every owned
statement maps to exactly one basic block, and every statement block is
either reachable from the entry or reported dead.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import (
    EXC,
    FALSE,
    ForwardAnalysis,
    build_cfg,
    dotted_name,
    function_cfgs,
    iter_owned_stmts,
    may_raise,
    solve_forward,
)
from repro.analysis.core import ModuleContext
from repro.analysis.lockgraph import LockHeldAnalysis


def _cfg_of(source):
    func = ast.parse(source).body[0]
    return func, build_cfg(func)


def _lock_states(source):
    func, cfg = _cfg_of(source)
    in_states, _ = solve_forward(cfg, LockHeldAnalysis(None))
    return cfg, in_states


# ---------------------------------------------------------------------------
# Structural unit tests
# ---------------------------------------------------------------------------


class TestBuilder:
    def test_linear_chain_reaches_exit(self):
        _, cfg = _cfg_of("def f(a):\n    x = a\n    y = x\n    return y\n")
        assert cfg.exit in cfg.reachable()
        assert cfg.unreachable_stmts() == []

    def test_one_statement_per_block(self):
        func, cfg = _cfg_of(
            "def f(a):\n"
            "    if a:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        owned = list(iter_owned_stmts(func))
        assert set(owned) == set(cfg.block_of)
        assert len(set(cfg.block_of.values())) == len(owned)

    def test_while_header_always_has_false_edge(self):
        # Even `while True`: constant folding is out of scope, so code
        # after an infinite loop is never reported unreachable.
        _, cfg = _cfg_of(
            "def f(q):\n"
            "    while True:\n"
            "        q.get()\n"
            "    return 1\n"
        )
        loop_blocks = [
            b for b in cfg.blocks if b.stmt is not None
            and isinstance(b.stmt, ast.While)
        ]
        assert any(kind == FALSE for _, kind in loop_blocks[0].succs)
        assert cfg.unreachable_stmts() == []

    def test_unreachable_after_return(self):
        _, cfg = _cfg_of(
            "def f():\n    return 1\n    x = 2\n    y = 3\n"
        )
        dead = cfg.unreachable_stmts()
        assert [type(s).__name__ for s in dead] == ["Assign", "Assign"]

    def test_unreachable_after_raise(self):
        _, cfg = _cfg_of(
            "def f():\n    raise ValueError('x')\n    cleanup()\n"
        )
        assert len(cfg.unreachable_stmts()) == 1

    def test_handler_reachable_without_calls_in_body(self):
        _, cfg = _cfg_of(
            "def f():\n"
            "    try:\n"
            "        x = 1\n"
            "    except Exception:\n"
            "        x = 2\n"
            "    return x\n"
        )
        assert cfg.unreachable_stmts() == []

    def test_break_routes_through_finally(self):
        # The break must funnel through the finally body, and the code
        # after the loop stays reachable.
        _, cfg = _cfg_of(
            "def f(items, call):\n"
            "    for i in items:\n"
            "        try:\n"
            "            break\n"
            "        finally:\n"
            "            call()\n"
            "    return 1\n"
        )
        assert cfg.unreachable_stmts() == []
        ret_block = [
            b for b in cfg.blocks
            if b.stmt is not None and isinstance(b.stmt, ast.Return)
        ][0]
        assert ret_block.bid in cfg.reachable()

    def test_preds_mirror_succs(self):
        _, cfg = _cfg_of(
            "def f(a, call):\n"
            "    with a:\n"
            "        call()\n"
            "    return 1\n"
        )
        for block in cfg.blocks:
            for succ, kind in block.succs:
                assert (block.bid, kind) in cfg.blocks[succ].preds

    def test_function_cfgs_memoizes(self):
        source = "def f():\n    return 1\n"
        module = ModuleContext("m.py", source, ast.parse(source))
        func = module.tree.body[0]
        assert function_cfgs(module, func) is function_cfgs(module, func)

    def test_dotted_name(self):
        assert dotted_name(ast.parse("a.b.c", mode="eval").body) == "a.b.c"
        assert dotted_name(ast.parse("a[0].b", mode="eval").body) is None

    def test_may_raise_strict_vs_generous(self):
        call = ast.parse("f()").body[0]
        assign = ast.parse("x = 1").body[0]
        assert may_raise(call) and not may_raise(assign)
        assert may_raise(assign, generous=True)
        assert not may_raise(ast.parse("pass").body[0], generous=True)


# ---------------------------------------------------------------------------
# Solver semantics the rules depend on
# ---------------------------------------------------------------------------


class TestSolver:
    def test_exception_edge_carries_pre_state(self):
        # work() can raise while the lock is held: the raise exit must
        # see it.  The acquire's own exception edge must NOT (the
        # acquisition had not happened yet).
        cfg, in_states = _lock_states(
            "def f(lock, work):\n"
            "    lock.acquire()\n"
            "    work()\n"
            "    lock.release()\n"
        )
        assert "lock" in in_states[cfg.raise_exit]
        assert in_states[cfg.exit] == frozenset()

    def test_finally_release_clears_raise_exit(self):
        cfg, in_states = _lock_states(
            "def f(lock, work):\n"
            "    lock.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        assert in_states.get(cfg.raise_exit, frozenset()) == frozenset()
        assert in_states[cfg.exit] == frozenset()

    def test_return_inside_with_releases(self):
        cfg, in_states = _lock_states(
            "def f(lock, work):\n"
            "    with lock:\n"
            "        return work()\n"
        )
        assert in_states[cfg.exit] == frozenset()
        # The raise during work() still funnels through __exit__.
        assert in_states.get(cfg.raise_exit, frozenset()) == frozenset()

    def test_join_over_branches(self):
        cfg, in_states = _lock_states(
            "def f(lock, flag):\n"
            "    if flag:\n"
            "        lock.acquire()\n"
            "    return flag\n"
        )
        # May-held union: one branch holds, so the exit may hold.
        assert in_states[cfg.exit] == frozenset({"lock"})

    def test_loop_fixpoint_terminates(self):
        class Collect(ForwardAnalysis):
            def initial(self):
                return frozenset()

            def join(self, a, b):
                return a | b

            def transfer(self, block, state):
                if block.stmt is not None:
                    return state | {block.bid}
                return state

        _, cfg = _cfg_of(
            "def f(items, call):\n"
            "    for i in items:\n"
            "        if i:\n"
            "            continue\n"
            "        call()\n"
            "    return 1\n"
        )
        in_states, out_states = solve_forward(cfg, Collect())
        assert cfg.exit in in_states
        assert set(in_states) <= cfg.reachable()


# ---------------------------------------------------------------------------
# The hypothesis property
# ---------------------------------------------------------------------------


_SIMPLE = (
    "x = x + 1",
    "x = h(x)",
    "call()",
    "pass",
    "return x",
    "raise ValueError('boom')",
)
_LOOP_ONLY = ("break", "continue")


def _indent(lines):
    return ["    " + line for line in lines]


@st.composite
def _stmt_lines(draw, depth, in_loop):
    kinds = ["simple", "simple", "simple"]
    if depth > 0:
        kinds += ["if", "ifelse", "while", "for", "try", "finally", "with"]
    if in_loop:
        kinds += ["loopjump"]
    kind = draw(st.sampled_from(kinds))
    if kind == "simple":
        return [draw(st.sampled_from(_SIMPLE))]
    if kind == "loopjump":
        return [draw(st.sampled_from(_LOOP_ONLY))]
    body = draw(_block_lines(depth - 1, in_loop or kind in ("while", "for")))
    if kind == "if":
        return ["if x:"] + _indent(body)
    if kind == "ifelse":
        orelse = draw(_block_lines(depth - 1, in_loop))
        return ["if x:"] + _indent(body) + ["else:"] + _indent(orelse)
    if kind == "while":
        return ["while x:"] + _indent(body)
    if kind == "for":
        return ["for i in items:"] + _indent(body)
    if kind == "try":
        handler = draw(_block_lines(depth - 1, in_loop))
        return (
            ["try:"] + _indent(body)
            + ["except Exception:"] + _indent(handler)
        )
    if kind == "finally":
        cleanup = draw(_block_lines(depth - 1, in_loop))
        return ["try:"] + _indent(body) + ["finally:"] + _indent(cleanup)
    assert kind == "with"
    return ["with call():"] + _indent(body)


@st.composite
def _block_lines(draw, depth, in_loop):
    chunks = draw(
        st.lists(_stmt_lines(depth, in_loop), min_size=1, max_size=3)
    )
    return [line for chunk in chunks for line in chunk]


@st.composite
def function_sources(draw):
    body = draw(_block_lines(depth=2, in_loop=False))
    return "def f(x, call, h, items):\n" + "\n".join(_indent(body)) + "\n"


class TestCfgProperties:
    @settings(max_examples=120, deadline=None)
    @given(function_sources())
    def test_every_statement_has_exactly_one_block(self, source):
        func = ast.parse(source).body[0]
        cfg = build_cfg(func)
        owned = list(iter_owned_stmts(func))
        # Bijection: every owned statement is in the map, each in its
        # own block (one statement per block by construction).
        assert set(owned) == set(cfg.block_of)
        assert len(set(cfg.block_of.values())) == len(owned)

    @settings(max_examples=120, deadline=None)
    @given(function_sources())
    def test_blocks_reachable_or_flagged_dead(self, source):
        func = ast.parse(source).body[0]
        cfg = build_cfg(func)
        live = cfg.reachable()
        dead = set(cfg.unreachable_stmts())
        for stmt, bid in cfg.block_of.items():
            assert bid in live or stmt in dead
        # And the flags are consistent: nothing both reachable and dead.
        for stmt in dead:
            assert cfg.block_of[stmt] not in live

    @settings(max_examples=60, deadline=None)
    @given(function_sources())
    def test_edges_symmetric_and_solver_terminates(self, source):
        func = ast.parse(source).body[0]
        cfg = build_cfg(func)
        for block in cfg.blocks:
            for succ, kind in block.succs:
                assert (block.bid, kind) in cfg.blocks[succ].preds
        in_states, _ = solve_forward(cfg, LockHeldAnalysis(None))
        assert set(in_states) <= cfg.reachable()

    @settings(max_examples=60, deadline=None)
    @given(function_sources())
    def test_exc_edges_only_from_may_raise(self, source):
        func = ast.parse(source).body[0]
        cfg = build_cfg(func)
        for block in cfg.blocks:
            for _succ, kind in block.succs:
                if kind == EXC and block.stmt is not None:
                    assert may_raise(block.stmt, generous=True)
