"""Tests for the benchmark generators and the 49-formula suite."""

import pytest

from repro.benchgen import (
    make_cache,
    make_driver,
    make_invariant,
    make_loadstore,
    make_ooo,
    make_pipeline,
    make_transval,
)
from repro.benchgen.suite import (
    DOMAINS,
    benchmark_by_name,
    invariant_suite,
    non_invariant_suite,
    sample16,
    suite,
)
from repro.core import check_validity
from repro.solvers.brute import BruteForceLimitExceeded, brute_force_valid

FACTORIES = {
    "pipeline": lambda **kw: make_pipeline(stages=3, reads=2, **kw),
    "loadstore": lambda **kw: make_loadstore(entries=3, pointers=4, **kw),
    "ooo": lambda **kw: make_ooo(tags=4, **kw),
    "cache": lambda **kw: make_cache(caches=2, **kw),
    "driver": lambda **kw: make_driver(steps=3, **kw),
    "transval": lambda **kw: make_transval(size=2, inputs=3, **kw),
    "invariant": lambda **kw: make_invariant(cells=4, **kw),
}


class TestGeneratorCorrectness:
    """Small instances of every family have their claimed validity —
    verified with the decision procedure (cross-checked elsewhere against
    brute force) in both the valid and the mutated variant."""

    @pytest.mark.parametrize("family", sorted(FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_valid_instances(self, family, seed):
        bench = FACTORIES[family](seed=seed)
        assert bench.expected_valid
        result = check_validity(bench.formula, want_countermodel=False)
        assert result.valid is True, bench.name

    @pytest.mark.parametrize("family", sorted(FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_invalid_mutants(self, family, seed):
        bench = FACTORIES[family](seed=seed, valid=False)
        assert not bench.expected_valid
        result = check_validity(bench.formula, want_countermodel=False)
        assert result.valid is False, bench.name

    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_brute_force_agrees_on_tiny_instances(self, family):
        bench = FACTORIES[family](seed=2)
        try:
            assert brute_force_valid(bench.formula, limit=500_000)
        except BruteForceLimitExceeded as exc:
            # The remaining families exceed the oracle by orders of
            # magnitude (4e8 .. 1e17 interpretations) at their *smallest*
            # usable sizes, so no limit bump can unskip them; their
            # verdicts are cross-checked by the eager/lazy/SVC agreement
            # tests and the differential fuzz campaign instead.
            pytest.skip(
                "%s (%d DAG nodes) is beyond brute force: %s"
                % (bench.name, bench.dag_size, exc)
            )


class TestDeterminism:
    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_same_seed_same_formula(self, family):
        a = FACTORIES[family](seed=5)
        c = FACTORIES[family](seed=5)
        assert a.formula is c.formula  # hash consing makes this exact
        assert a.name == c.name

    def test_different_seed_can_differ(self):
        # Seeded RNG families must actually use the seed.
        a = make_invariant(cells=6, seed=1)
        c = make_invariant(cells=6, seed=2)
        assert a.formula is not c.formula


class TestSuiteShape:
    def test_counts(self):
        assert len(suite()) == 49
        assert len(non_invariant_suite()) == 39
        assert len(invariant_suite()) == 10
        assert len(sample16()) == 16

    def test_every_domain_in_sample(self):
        domains = {bench.domain for bench in sample16()}
        assert domains == set(DOMAINS)

    def test_invariant_flags(self):
        assert all(bench.invariant_checking for bench in invariant_suite())
        assert not any(
            bench.invariant_checking for bench in non_invariant_suite()
        )

    def test_unique_names(self):
        names = [bench.name for bench in suite()]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        bench = suite()[0]
        found = benchmark_by_name(bench.name)
        assert found is not None
        assert found.formula is bench.formula
        assert benchmark_by_name("nonexistent") is None
        mutant = benchmark_by_name(bench.name, valid=False)
        assert mutant is not None and not mutant.expected_valid

    def test_sizes_recorded(self):
        for bench in suite():
            assert bench.dag_size > 10
            assert bench.params


class TestInvariantCharacteristics:
    """The paper's description of the invariant formulas: many
    inequalities, almost no p-functions, few large classes."""

    def test_class_structure(self):
        from repro.separation.analysis import analyze_separation
        from repro.transform.func_elim import eliminate_applications

        bench = make_invariant(cells=10, seed=1)
        f_sep, _ = eliminate_applications(bench.formula)
        analysis = analyze_separation(f_sep)
        assert len(analysis.classes) == 1  # a single large class
        vclass = analysis.classes[0]
        assert len(vclass.vars) >= 12
        assert vclass.has_inequality
        assert vclass.has_offset
        # p-fraction near zero.
        total = len(analysis.p_vars) + len(analysis.g_vars)
        assert len(analysis.p_vars) / total < 0.1

    def test_pipeline_is_positive_equality_heavy(self):
        from repro.separation.analysis import analyze_separation
        from repro.transform.func_elim import eliminate_applications

        bench = make_pipeline(stages=4, reads=2, seed=1)
        f_sep, _ = eliminate_applications(bench.formula)
        analysis = analyze_separation(f_sep)
        # The data values (writeback results, regfile/alu outputs) are all
        # p-function applications; only the register indices are general.
        assert len(analysis.p_vars) >= 2
        assert all(
            not c.has_inequality and not c.has_offset
            for c in analysis.classes
        )
