"""Tests for the result/statistics types."""

from repro.core.result import DecisionResult, DecisionStats
from repro.encodings.hybrid import EncodingStats
from repro.sat.solver import SatStats


class TestDecisionStats:
    def test_total_seconds(self):
        stats = DecisionStats(encode_seconds=1.5, sat_seconds=2.5)
        assert stats.total_seconds == 4.0

    def test_conflict_clauses_proxy(self):
        stats = DecisionStats()
        assert stats.conflict_clauses == 0
        stats.sat = SatStats(learned_clauses=42)
        assert stats.conflict_clauses == 42

    def test_sep_predicates_proxy(self):
        stats = DecisionStats()
        assert stats.sep_predicates == 0
        stats.encoding = EncodingStats(total_sep_count=17)
        assert stats.sep_predicates == 17

    def test_normalized_seconds(self):
        stats = DecisionStats(
            dag_size_suf=500, encode_seconds=1.0, sat_seconds=1.0
        )
        assert abs(stats.normalized_seconds() - 4.0) < 1e-9

    def test_normalized_handles_zero_size(self):
        stats = DecisionStats(encode_seconds=1.0)
        assert stats.normalized_seconds() > 0


class TestDecisionResult:
    def test_valid_mapping(self):
        assert DecisionResult(status=DecisionResult.VALID).valid is True
        assert DecisionResult(status=DecisionResult.INVALID).valid is False
        assert DecisionResult(status=DecisionResult.UNKNOWN).valid is None
        assert (
            DecisionResult(status=DecisionResult.TRANSLATION_LIMIT).valid
            is None
        )

    def test_repr_mentions_status(self):
        result = DecisionResult(
            status=DecisionResult.VALID,
            stats=DecisionStats(method="HYBRID"),
        )
        text = repr(result)
        assert "VALID" in text and "HYBRID" in text
