"""Rendering tests for the threshold-selection and ablation reports."""

from repro.encodings.threshold import select_threshold
from repro.experiments.ablation import (
    StaticRow,
    render_static_vs_hybrid,
    render_threshold_sweep,
    SWEEP_THOLDS,
)
from repro.experiments.runner import RunRow
from repro.experiments.threshold_exp import render_threshold


def row(name, procedure, seconds, status="VALID"):
    return RunRow(
        benchmark=name,
        domain="driver",
        procedure=procedure,
        status=status,
        total_seconds=seconds,
        sep_predicates=40,
        dag_size=100,
    )


class TestThresholdRender:
    def test_render_threshold(self):
        selection = select_threshold(
            [(30, 0.5), (41, 9.0), (119, 1000.0)]
        )
        rows = [
            ("a", 30, 0.5, "VALID"),
            ("b", 41, 9.0, "VALID"),
            ("c", 119, 1000.0, "TRANSLATION_LIMIT"),
        ]
        text = render_threshold(selection, rows)
        assert "SEP_THOLD=100" in text
        assert "n_k=41" in text
        assert "paper: n_k=676" in text


class TestSweepRender:
    def test_decided_counts(self):
        results = {
            "bench_a": {
                t: row("bench_a", "HYBRID", 1.0) for t in SWEEP_THOLDS
            },
            "bench_b": {
                t: row(
                    "bench_b",
                    "HYBRID",
                    20.0,
                    status="TRANSLATION_LIMIT" if t is None else "VALID",
                )
                for t in SWEEP_THOLDS
            },
        }
        text = render_threshold_sweep(results)
        assert "T=inf" in text
        assert "1/2" in text  # the EIJ endpoint decided only one
        assert "2/2" in text


class TestStaticRender:
    def test_win_count(self):
        rows = [
            StaticRow(
                benchmark="x1",
                group="non-invariant",
                hybrid=row("x1", "HYBRID", 0.5),
                static=row("x1", "STATIC", 20.0, status="TIMEOUT"),
            ),
            StaticRow(
                benchmark="x2",
                group="invariant",
                hybrid=row("x2", "HYBRID", 2.0),
                static=row("x2", "STATIC", 1.0),
            ),
        ]
        text = render_static_vs_hybrid(rows)
        assert "HYBRID at-least-as-fast on 1/2" in text
        assert "invariant" in text
