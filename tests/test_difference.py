"""Difference-bound theory solver tests, with hypothesis properties."""

from hypothesis import given, settings, strategies as st

from repro.encodings.sepvars import Bound
from repro.logic import builders as b
from repro.logic.terms import Var
from repro.theory.difference import DifferenceSolver, check_bounds


def v(name):
    return Var(name)


def model_satisfies(model, bounds):
    return all(model[bd.lhs] - model[bd.rhs] <= bd.c for bd in bounds)


class TestCheckBounds:
    def test_empty_is_consistent(self):
        result = check_bounds([])
        assert result.consistent
        assert result.model == {}

    def test_simple_chain(self):
        bounds = [Bound(v("a"), v("b"), 0), Bound(v("b"), v("c"), -1)]
        result = check_bounds(bounds)
        assert result.consistent
        assert model_satisfies(result.model, bounds)

    def test_two_cycle_conflict(self):
        bounds = [Bound(v("a"), v("b"), -1), Bound(v("b"), v("a"), 0)]
        result = check_bounds(bounds)
        assert not result.consistent
        assert sorted(bd.c for bd in result.cycle) == [-1, 0]

    def test_longer_negative_cycle(self):
        bounds = [
            Bound(v("a"), v("b"), 2),
            Bound(v("b"), v("c"), 3),
            Bound(v("c"), v("a"), -6),
        ]
        result = check_bounds(bounds)
        assert not result.consistent
        # The explanation is exactly the negative cycle.
        assert len(result.cycle) == 3
        assert sum(bd.c for bd in result.cycle) < 0

    def test_zero_cycle_is_consistent(self):
        bounds = [Bound(v("a"), v("b"), 1), Bound(v("b"), v("a"), -1)]
        result = check_bounds(bounds)
        assert result.consistent
        assert model_satisfies(result.model, bounds)

    def test_explanation_is_subset_of_input(self):
        bounds = [
            Bound(v("a"), v("b"), 0),
            Bound(v("b"), v("c"), 0),
            Bound(v("c"), v("d"), 0),
            Bound(v("d"), v("a"), -1),
            Bound(v("a"), v("d"), 5),
        ]
        result = check_bounds(bounds)
        assert not result.consistent
        for bd in result.cycle:
            assert bd in bounds

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_random_systems(self, data):
        num_vars = data.draw(st.integers(2, 6))
        names = [v("rv%d" % i) for i in range(num_vars)]
        num_bounds = data.draw(st.integers(0, 15))
        bounds = []
        for i in range(num_bounds):
            lhs = data.draw(st.integers(0, num_vars - 1))
            rhs = data.draw(st.integers(0, num_vars - 1))
            if lhs == rhs:
                continue
            c = data.draw(st.integers(-4, 4))
            bounds.append(Bound(names[lhs], names[rhs], c))
        result = check_bounds(bounds)
        if result.consistent:
            assert model_satisfies(result.model, bounds)
        else:
            # The cycle must itself be an inconsistent subset.
            assert sum(bd.c for bd in result.cycle) < 0
            # ... and it must chain: rhs of one is lhs of the next.
            for first, second in zip(
                result.cycle, result.cycle[1:] + result.cycle[:1]
            ):
                assert first.lhs is second.rhs


class TestBoundNegation:
    def test_integer_negation(self):
        bd = Bound(v("a"), v("b"), 3)
        neg = bd.negation()
        assert neg.lhs is v("b") and neg.rhs is v("a")
        assert neg.c == -4
        assert neg.negation() == bd


class TestDifferenceSolver:
    def test_push_pop(self):
        solver = DifferenceSolver()
        solver.assert_bound(Bound(v("a"), v("b"), -1))
        assert solver.check().consistent
        solver.push()
        solver.assert_bound(Bound(v("b"), v("a"), 0))
        assert not solver.check().consistent
        solver.pop()
        assert solver.check().consistent

    def test_pop_empty_raises(self):
        import pytest

        with pytest.raises(IndexError):
            DifferenceSolver().pop()

    def test_assert_bounds_iterable(self):
        solver = DifferenceSolver()
        solver.assert_bounds(
            [Bound(v("a"), v("b"), 0), Bound(v("b"), v("c"), 0)]
        )
        assert len(solver.assertions()) == 2
