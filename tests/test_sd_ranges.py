"""Tests for the ascending (Pnueli et al.) SD range allocation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import check_validity
from repro.encodings.hybrid import encode_sd
from repro.logic import builders as b
from repro.sat.solver import solve_cnf
from repro.sat.tseitin import to_cnf
from repro.solvers.brute import (
    BruteForceLimitExceeded,
    brute_force_valid_sep,
)

from helpers import random_sep_formula, random_suf_formula


class TestAllocationModes:
    def test_invalid_mode_rejected(self):
        x, y = b.const("x"), b.const("y")
        with pytest.raises(ValueError):
            encode_sd(b.eq(x, y), sd_ranges="diagonal")

    def test_equality_only_gets_tight_bounds(self):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.bnot(b.band(b.eq(x, y), b.eq(y, z)))
        uniform = encode_sd(formula, sd_ranges="uniform")
        ascending = encode_sd(formula, sd_ranges="ascending")
        # Same variables and widths; only the domain constraints differ.
        assert set(uniform.var_bits) == set(ascending.var_bits)
        assert uniform.f_trans is not ascending.f_trans

    def test_offset_classes_unaffected(self):
        x, y = b.const("x"), b.const("y")
        formula = b.bnot(b.lt(b.succ(x), y))
        uniform = encode_sd(formula, sd_ranges="uniform")
        ascending = encode_sd(formula, sd_ranges="ascending")
        assert uniform.f_trans is ascending.f_trans

    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_ascending_agrees_with_brute_force(self, seed):
        formula = random_sep_formula(seed, max_vars=4, depth=2)
        try:
            expected = brute_force_valid_sep(formula, limit=150_000)
        except BruteForceLimitExceeded:
            return
        encoding = encode_sd(formula, sd_ranges="ascending")
        got = solve_cnf(to_cnf(encoding.check_formula)).is_unsat
        assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_check_validity_plumbing(self, seed):
        formula = random_suf_formula(seed, max_vars=3)
        default = check_validity(
            formula, method="sd", want_countermodel=False
        ).valid
        tight = check_validity(
            formula,
            method="sd",
            sd_ranges="ascending",
            want_countermodel=False,
        ).valid
        assert default == tight


class TestCountermodelsStillDecode:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_decoded_model_falsifies(self, seed):
        from repro.logic.semantics import evaluate

        formula = random_suf_formula(seed, max_vars=3)
        result = check_validity(formula, method="sd", sd_ranges="ascending")
        if result.valid is False:
            assert not evaluate(formula, result.counterexample)
