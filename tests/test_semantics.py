"""Unit tests for the reference semantics (:mod:`repro.logic.semantics`)."""

import pytest

from repro.logic import builders as b
from repro.logic.semantics import Interpretation, evaluate, evaluate_term


class TestTermEvaluation:
    def test_vars_and_offsets(self):
        x = b.const("x")
        env = Interpretation(vars={"x": 10})
        assert evaluate_term(x, env) == 10
        assert evaluate_term(b.succ(x), env) == 11
        assert evaluate_term(b.offset(x, -4), env) == 6

    def test_missing_var_raises(self):
        with pytest.raises(KeyError):
            evaluate_term(b.const("nope"), Interpretation())

    def test_function_tables_with_default(self):
        f = b.func("f")
        x = b.const("x")
        env = Interpretation(
            vars={"x": 1},
            funcs={"f": {(1,): 42}},
            func_default=7,
        )
        assert evaluate_term(f(x), env) == 42
        assert evaluate_term(f(b.succ(x)), env) == 7  # default

    def test_functional_consistency(self):
        f = b.func("f")
        x, y = b.const("x"), b.const("y")
        env = Interpretation(vars={"x": 3, "y": 3}, funcs={"f": {(3,): 9}})
        assert evaluate_term(f(x), env) == evaluate_term(f(y), env)

    def test_ite(self):
        x, y = b.const("x"), b.const("y")
        term = b.ite(b.lt(x, y), x, y)  # min(x, y)
        assert evaluate_term(term, Interpretation(vars={"x": 2, "y": 5})) == 2
        assert evaluate_term(term, Interpretation(vars={"x": 7, "y": 5})) == 5


class TestFormulaEvaluation:
    def test_atoms(self):
        x, y = b.const("x"), b.const("y")
        env = Interpretation(vars={"x": 1, "y": 2})
        assert evaluate(b.lt(x, y), env)
        assert not evaluate(b.eq(x, y), env)
        assert evaluate(b.eq(b.succ(x), y), env)

    def test_connectives(self):
        p, q = b.bconst("p"), b.bconst("q")
        for pv in (False, True):
            for qv in (False, True):
                env = Interpretation(bools={"p": pv, "q": qv})
                assert evaluate(b.band(p, q), env) == (pv and qv)
                assert evaluate(b.bor(p, q), env) == (pv or qv)
                assert evaluate(b.implies(p, q), env) == ((not pv) or qv)
                assert evaluate(b.iff(p, q), env) == (pv == qv)
                assert evaluate(b.bnot(p), env) == (not pv)

    def test_predicates(self):
        p = b.pred_symbol("p")
        x = b.const("x")
        env = Interpretation(
            vars={"x": 5}, preds={"p": {(5,): True}}, pred_default=False
        )
        assert evaluate(p(x), env)
        assert not evaluate(p(b.succ(x)), env)

    def test_sort_mismatch_raises(self):
        x = b.const("x")
        env = Interpretation(vars={"x": 0})
        with pytest.raises(TypeError):
            evaluate(x, env)  # term where formula expected
        with pytest.raises(TypeError):
            evaluate_term(b.eq(x, x), env)

    def test_deep_formula_no_recursion_error(self):
        # Postorder evaluation must survive formulas nested far beyond the
        # Python recursion limit (offsets collapse, so chain implications).
        formula = b.bconst("base")
        bools = {"base": True}
        for i in range(5000):
            name = "p%d" % i
            bools[name] = True
            formula = b.implies(b.bconst(name), formula)
        assert evaluate(formula, Interpretation(bools=bools))

    def test_missing_bool_raises(self):
        with pytest.raises(KeyError):
            evaluate(b.bconst("nope"), Interpretation())
