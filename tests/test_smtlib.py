"""Tests for the SMT-LIB 2 front end."""

import pytest

from repro.logic import builders as b
from repro.logic.smtlib import (
    SmtLibError,
    check_sat_smtlib,
    parse_smtlib,
)


UF_SCRIPT = """
(set-logic QF_UF)
(declare-fun x () Int)
(declare-const y Int)
(declare-fun f (Int) Int)
(assert (= x y))
(assert (not (= (f x) (f y))))
(check-sat)
"""

IDL_SCRIPT = """
(set-logic QF_IDL)
(declare-const a Int)
(declare-const b Int)
(declare-const c Int)
(assert (< a b))
(assert (<= b (+ c 3)))
(assert (> a (+ c 10)))
(check-sat)
"""


class TestParsing:
    def test_declarations(self):
        script = parse_smtlib(UF_SCRIPT)
        assert script.logic == "QF_UF"
        assert set(script.int_consts) == {"x", "y"}
        assert script.func_sorts["f"] == (1, "Int")
        assert len(script.assertions) == 2
        assert script.check_sat_requested

    def test_bool_declarations(self):
        script = parse_smtlib(
            "(declare-const p Bool)(declare-fun q (Int) Bool)"
            "(declare-const z Int)(assert (=> p (q z)))"
        )
        assert "p" in script.bool_consts
        assert script.func_sorts["q"] == (1, "Bool")

    def test_let_bindings(self):
        script = parse_smtlib(
            "(declare-const x Int)(declare-const y Int)"
            "(assert (let ((t (+ x 1))) (< t y)))"
        )
        x, y = b.const("x"), b.const("y")
        assert script.assertions[0] is b.lt(b.succ(x), y)

    def test_chained_equality(self):
        script = parse_smtlib(
            "(declare-const x Int)(declare-const y Int)"
            "(declare-const z Int)(assert (= x y z))"
        )
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        assert script.assertions[0] is b.band(b.eq(x, y), b.eq(y, z))

    def test_integer_literals_use_zero_origin(self):
        script = parse_smtlib(
            "(declare-const x Int)(assert (< x 5))"
        )
        assert script.uses_zero
        from repro.logic.smtlib import ZERO_NAME

        zero = b.const(ZERO_NAME)
        x = b.const("x")
        assert script.assertions[0] is b.lt(x, b.offset(zero, 5))

    def test_negative_literals(self):
        script = parse_smtlib(
            "(declare-const x Int)(assert (>= x (- 2)))"
        )
        assert script.assertions

    def test_ite_both_sorts(self):
        script = parse_smtlib(
            "(declare-const x Int)(declare-const y Int)"
            "(declare-const p Bool)"
            "(assert (= (ite p x y) x))"
            "(assert (ite p (< x y) (< y x)))"
        )
        assert len(script.assertions) == 2

    def test_comments_and_quoted_symbols(self):
        script = parse_smtlib(
            "; a comment\n(declare-const |odd name| Int)\n"
            "(assert (= |odd name| |odd name|)) ; trailing\n"
        )
        assert "odd name" in script.int_consts


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "(set-logic QF_LIA)",
            "(declare-const x Real)",
            "(declare-const x Int)(assert (* x x))",
            "(declare-const x Int)(declare-const y Int)(assert (< (+ x y) 3))",
            "(assert (= x x))",  # undeclared
            "(declare-const x Int)(declare-const x Int)",
            "(frobnicate)",
            "(declare-const x Int)(assert (= x true))",
        ],
    )
    def test_out_of_fragment_rejected(self, text):
        with pytest.raises(SmtLibError):
            parse_smtlib(text)

    def test_general_difference_rejected_with_hint(self):
        with pytest.raises(SmtLibError):
            parse_smtlib(
                "(declare-const a Int)(declare-const b Int)"
                "(assert (< (- a b) 3))"
            )


class TestCheckSat:
    def test_uf_unsat(self):
        # x = y but f(x) != f(y): functional consistency forbids it.
        assert check_sat_smtlib(UF_SCRIPT) == "unsat"

    def test_idl_unsat(self):
        # a < b <= c+3 and a > c+10 is contradictory.
        assert check_sat_smtlib(IDL_SCRIPT) == "unsat"

    def test_sat_case(self):
        text = """
        (set-logic QF_UFIDL)
        (declare-const a Int)
        (declare-const b Int)
        (declare-fun f (Int) Int)
        (assert (< a b))
        (assert (= (f a) (f b)))
        (check-sat)
        """
        assert check_sat_smtlib(text) == "sat"

    def test_literal_bounds(self):
        text = """
        (set-logic QF_IDL)
        (declare-const x Int)
        (assert (< x 5))
        (assert (> x 3))
        (check-sat)
        """
        assert check_sat_smtlib(text) == "sat"
        tight = text.replace("(> x 3)", "(> x 4)")
        assert check_sat_smtlib(tight) == "unsat"

    @pytest.mark.parametrize("method", ["sd", "eij", "hybrid"])
    def test_methods_agree(self, method):
        assert check_sat_smtlib(IDL_SCRIPT, method=method) == "unsat"

    def test_distinct(self):
        text = """
        (declare-const a Int)
        (declare-const b Int)
        (declare-const c Int)
        (assert (distinct a b c))
        (assert (= a b))
        (check-sat)
        """
        assert check_sat_smtlib(text) == "unsat"
