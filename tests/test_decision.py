"""End-to-end tests for the public decision procedure."""

import pytest

from repro.core import check_validity
from repro.core.result import DecisionResult
from repro.logic import builders as b
from repro.logic.semantics import evaluate


METHODS = ("hybrid", "sd", "eij", "static")


class TestKnownFormulas:
    @pytest.mark.parametrize("method", METHODS)
    def test_functional_consistency(self, method):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        result = check_validity(
            b.implies(b.eq(x, y), b.eq(f(x), f(y))), method=method
        )
        assert result.status == DecisionResult.VALID
        assert result.valid is True

    @pytest.mark.parametrize("method", METHODS)
    def test_ordering_chain(self, method):
        x, y, z = b.const("x"), b.const("y"), b.const("z")
        formula = b.implies(
            b.band(b.lt(x, y), b.lt(y, z)), b.lt(b.succ(x), b.succ(z))
        )
        assert check_validity(formula, method=method).valid

    @pytest.mark.parametrize("method", METHODS)
    def test_antisymmetry(self, method):
        x, y = b.const("x"), b.const("y")
        formula = b.implies(
            b.band(b.le(x, y), b.le(y, x)), b.eq(x, y)
        )
        assert check_validity(formula, method=method).valid

    @pytest.mark.parametrize("method", METHODS)
    def test_integer_density_used(self, method):
        # x < y implies x + 1 <= y over the integers (false over rationals)
        # — the property that kept the paper from running SVC/CVC on the
        # invariant benchmarks.
        x, y = b.const("x"), b.const("y")
        formula = b.implies(b.lt(x, y), b.le(b.succ(x), y))
        assert check_validity(formula, method=method).valid

    @pytest.mark.parametrize("method", METHODS)
    def test_invalid_with_countermodel(self, method):
        x, y = b.const("x"), b.const("y")
        f = b.func("f")
        formula = b.implies(b.eq(f(x), f(y)), b.eq(x, y))
        result = check_validity(formula, method=method)
        assert result.status == DecisionResult.INVALID
        model = result.counterexample
        assert model is not None
        assert not evaluate(formula, model)

    @pytest.mark.parametrize("method", METHODS)
    def test_boolean_structure(self, method):
        p, q = b.bconst("P"), b.bconst("Q")
        x, y = b.const("x"), b.const("y")
        formula = b.iff(
            b.implies(p, b.lt(x, y)),
            b.bor(b.bnot(p), b.lt(x, y)),
        )
        assert check_validity(formula, method=method).valid
        assert not check_validity(b.iff(p, q), method=method).valid

    @pytest.mark.parametrize("method", METHODS)
    def test_ite_reasoning(self, method):
        x, y = b.const("x"), b.const("y")
        maxi = b.ite(b.lt(x, y), y, x)
        formula = b.band(b.le(x, maxi), b.le(y, maxi))
        assert check_validity(formula, method=method).valid

    @pytest.mark.parametrize("method", METHODS)
    def test_predicate_consistency(self, method):
        x, y = b.const("x"), b.const("y")
        p = b.pred_symbol("p")
        formula = b.implies(
            b.band(b.eq(x, y), p(x)), p(y)
        )
        assert check_validity(formula, method=method).valid


class TestLimitsAndErrors:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            check_validity(b.true(), method="magic")

    def test_trans_budget_reports_translation_limit(self):
        # A dense difference web whose transitivity closure exceeds the
        # tiny budget.
        vs = [b.const("tb%d" % i) for i in range(8)]
        parts = []
        for i in range(len(vs)):
            for j in range(i + 1, len(vs)):
                parts.append(b.le(vs[i], b.offset(vs[j], i - j + 2)))
        formula = b.bnot(b.band(*parts))
        result = check_validity(formula, method="eij", trans_budget=5)
        assert result.status == DecisionResult.TRANSLATION_LIMIT
        assert result.valid is None

    def test_conflict_limit_reports_unknown(self):
        vs = [b.const("cl%d" % i) for i in range(9)]
        formula = b.bor(*[
            b.band(b.lt(vs[i], vs[(i + 1) % 9]), b.lt(vs[(i + 2) % 9], vs[i]))
            for i in range(9)
        ])
        result = check_validity(
            formula, method="sd", sat_conflict_limit=1
        )
        assert result.status in (
            DecisionResult.UNKNOWN,
            DecisionResult.INVALID,  # solved before the first conflict
        )

    def test_stats_populated(self):
        x, y = b.const("x"), b.const("y")
        result = check_validity(b.implies(b.lt(x, y), b.le(x, y)))
        stats = result.stats
        assert stats.method == "HYBRID"
        assert stats.dag_size_suf > 0
        assert stats.dag_size_sep > 0
        assert stats.cnf_vars > 0
        assert stats.cnf_clauses > 0
        assert stats.total_seconds >= 0
        assert stats.sat is not None

    def test_trivial_formulas(self):
        assert check_validity(b.true()).valid is True
        assert check_validity(b.false()).valid is False
        p = b.bconst("P")
        assert check_validity(b.bor(p, b.bnot(p))).valid is True


class TestCountermodelQuality:
    @pytest.mark.parametrize("method", ("hybrid", "sd", "eij"))
    def test_countermodel_has_original_vocabulary(self, method):
        x, y = b.const("x"), b.const("y")
        g = b.func("g")
        p = b.bconst("P")
        formula = b.implies(
            p, b.implies(b.lt(x, y), b.eq(g(x), g(y)))
        )
        result = check_validity(formula, method=method)
        assert result.valid is False
        model = result.counterexample
        assert "x" in model.vars and "y" in model.vars
        assert "P" in model.bools
        assert model.vars["x"] < model.vars["y"]
        assert "g" in model.funcs

    def test_want_countermodel_false_skips_decoding(self):
        x, y = b.const("x"), b.const("y")
        result = check_validity(
            b.eq(x, y), want_countermodel=False
        )
        assert result.valid is False
        assert result.counterexample is None
