"""Tseitin transformation tests: equisatisfiability and model agreement."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.logic import builders as b
from repro.logic.semantics import Interpretation, evaluate
from repro.logic.terms import BoolVar
from repro.logic.traversal import collect_bool_vars
from repro.sat.solver import solve_cnf
from repro.sat.tseitin import to_cnf, tseitin


def random_prop(rng, atoms, depth):
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(atoms)
    choice = rng.random()
    if choice < 0.2:
        return b.bnot(random_prop(rng, atoms, depth - 1))
    if choice < 0.4:
        return b.band(
            random_prop(rng, atoms, depth - 1),
            random_prop(rng, atoms, depth - 1),
        )
    if choice < 0.6:
        return b.bor(
            random_prop(rng, atoms, depth - 1),
            random_prop(rng, atoms, depth - 1),
        )
    if choice < 0.8:
        return b.implies(
            random_prop(rng, atoms, depth - 1),
            random_prop(rng, atoms, depth - 1),
        )
    return b.iff(
        random_prop(rng, atoms, depth - 1),
        random_prop(rng, atoms, depth - 1),
    )


def prop_satisfiable(formula):
    """Truth-table satisfiability of a propositional formula."""
    atoms = collect_bool_vars(formula)
    for bits in itertools.product((False, True), repeat=len(atoms)):
        env = Interpretation(
            bools={a.name: v for a, v in zip(atoms, bits)}
        )
        if evaluate(formula, env):
            return True
    return False


class TestBasics:
    def test_constants(self):
        assert solve_cnf(to_cnf(b.true())).is_sat
        assert solve_cnf(to_cnf(b.false())).is_unsat

    def test_single_var(self):
        p = b.bconst("p")
        cnf = to_cnf(p)
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[cnf.lookup(p)]

    def test_negation(self):
        p = b.bconst("p")
        cnf = to_cnf(b.bnot(p))
        result = solve_cnf(cnf)
        assert result.is_sat
        assert not result.model[cnf.lookup(p)]

    def test_contradiction(self):
        p = b.bconst("p")
        assert solve_cnf(to_cnf(b.band(p, b.bnot(p)))).is_unsat

    def test_sharing_encoded_once(self):
        p, q = b.bconst("p"), b.bconst("q")
        shared = b.bor(p, q)
        formula = b.band(b.implies(p, shared), b.implies(shared, q))
        cnf1 = to_cnf(formula)
        # The top-level conjunction is split; each implication costs a
        # definition (3 clauses) plus its asserting unit, and `shared` is
        # defined exactly once (3 clauses): 11 total.  A duplicate
        # definition of `shared` would add 3 more.
        assert len(cnf1.clauses) == 11

    def test_model_agrees_with_semantics(self):
        p, q, r = b.bconst("p"), b.bconst("q"), b.bconst("r")
        formula = b.band(b.iff(p, b.bnot(q)), b.implies(q, r), b.bor(p, q))
        cnf = to_cnf(formula)
        result = solve_cnf(cnf)
        assert result.is_sat
        env = Interpretation(
            bools={
                a.name: result.model[cnf.lookup(a)]
                for a in collect_bool_vars(formula)
            }
        )
        assert evaluate(formula, env)

    def test_rejects_non_propositional(self):
        import pytest

        x, y = b.const("x"), b.const("y")
        with pytest.raises(TypeError):
            tseitin(b.eq(x, y))


class TestEquisatisfiability:
    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_random_formulas(self, seed):
        import random

        rng = random.Random(seed)
        atoms = [b.bconst("a%d" % i) for i in range(rng.randint(1, 4))]
        atoms = atoms + [b.true(), b.false()]
        formula = random_prop(rng, atoms, rng.randint(1, 4))
        expected = prop_satisfiable(formula)
        cnf = to_cnf(formula)
        result = solve_cnf(cnf)
        assert result.is_sat == expected
        if result.is_sat:
            env = Interpretation(
                bools={
                    a.name: result.model.get(cnf.lookup(a), False)
                    for a in collect_bool_vars(formula)
                }
            )
            assert evaluate(formula, env)


class TestPlaistedGreenbaum:
    """Polarity-aware encoding: fewer clauses, same verdicts, and any
    CNF model still projects onto a model of the original formula."""

    def test_fewer_clauses_on_implication_chain(self):
        p = [b.bconst("p%d" % i) for i in range(6)]
        formula = b.implies(
            b.band(p[0], b.bor(p[1], p[2])),
            b.bor(b.band(p[3], p[4]), p[5]),
        )
        classic = to_cnf(formula, mode="classic")
        pg = to_cnf(formula, mode="pg")
        assert len(pg.clauses) < len(classic.clauses)

    def test_polarity_masks(self):
        from repro.sat.tseitin import BOTH, NEG, POS, compute_polarities

        p, q, r = b.bconst("p"), b.bconst("q"), b.bconst("r")
        conj = b.band(p, q)
        disj = b.bor(q, r)
        neg = b.bnot(disj)
        formula = b.implies(conj, neg)
        masks = compute_polarities([formula])
        assert masks[formula] == POS
        # Antecedent of an implication is flipped ...
        assert masks[conj] == NEG
        # ... the consequent keeps the root polarity, and Not flips again.
        assert masks[neg] == POS
        assert masks[disj] == NEG

    def test_iff_children_are_bipolar(self):
        from repro.sat.tseitin import BOTH, compute_polarities

        p, q = b.bconst("p"), b.bconst("q")
        conj = b.band(p, q)
        disj = b.bor(p, q)
        formula = b.iff(conj, disj)
        masks = compute_polarities([formula])
        assert masks[conj] == BOTH
        assert masks[disj] == BOTH

    def test_unknown_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            to_cnf(b.bconst("p"), mode="nope")

    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_pg_equisatisfiable_and_model_projects(self, seed):
        import random

        rng = random.Random(seed)
        atoms = [b.bconst("a%d" % i) for i in range(rng.randint(1, 4))]
        atoms = atoms + [b.true(), b.false()]
        formula = random_prop(rng, atoms, rng.randint(1, 4))
        expected = prop_satisfiable(formula)
        cnf = to_cnf(formula, mode="pg")
        result = solve_cnf(cnf)
        assert result.is_sat == expected
        if result.is_sat:
            # The projection property is what lets the decode stage read
            # countermodels off a PG encoding.
            env = Interpretation(
                bools={
                    a.name: result.model[cnf.lookup(a)]
                    for a in collect_bool_vars(formula)
                }
            )
            assert evaluate(formula, env)

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_pg_never_larger_than_classic(self, seed):
        import random

        rng = random.Random(seed)
        atoms = [b.bconst("a%d" % i) for i in range(rng.randint(1, 4))]
        formula = random_prop(rng, atoms, rng.randint(1, 5))
        assert len(to_cnf(formula, mode="pg").clauses) <= len(
            to_cnf(formula, mode="classic").clauses
        )
