"""Tests for the engine layer: contract, registry, stage telemetry."""

import pytest

from repro.benchgen.suite import benchmark_by_name
from repro.core.result import DecisionResult
from repro.core.status import Status
from repro.engine import registry
from repro.engine.base import Engine, EngineCapabilities
from repro.engine.contract import SolveOutcome, SolveRequest
from repro.logic.parser import parse_formula

VALID_F = "(=> (and (< x y) (< y z)) (< x z))"
INVALID_F = "(= x y)"
UF_VALID_F = "(=> (= a b) (= (f a) (f b)))"

ALL_ENGINES = ("hybrid", "static", "eij", "sd", "lazy", "svc", "brute")


class TestStatus:
    def test_string_compatible(self):
        assert Status.VALID == "VALID"
        assert "%s" % Status.INVALID == "INVALID"
        assert "{}".format(Status.UNKNOWN) == "UNKNOWN"
        assert Status("VALID") is Status.VALID

    def test_decision_result_constants_are_statuses(self):
        assert DecisionResult.VALID is Status.VALID
        assert DecisionResult.TRANSLATION_LIMIT is Status.TRANSLATION_LIMIT

    def test_as_valid(self):
        assert Status.VALID.as_valid is True
        assert Status.INVALID.as_valid is False
        assert Status.UNKNOWN.as_valid is None
        assert Status.ERROR.as_valid is None

    def test_decided(self):
        assert Status.VALID.decided and Status.INVALID.decided
        assert not Status.TRANSLATION_LIMIT.decided


class TestRegistry:
    def test_all_builtins_registered(self):
        names = registry.list_engines()
        for name in ALL_ENGINES + ("portfolio",):
            assert name in names

    def test_priority_order_starts_with_hybrid(self):
        assert registry.list_engines()[0] == "hybrid"

    def test_unknown_engine_lists_known_names(self):
        with pytest.raises(KeyError, match="hybrid"):
            registry.get("no-such-engine")

    def test_register_and_unregister(self):
        class Fake(Engine):
            name = "fake-test-engine"

            def solve(self, request):
                return SolveOutcome(engine=self.name, status=Status.UNKNOWN)

        try:
            registry.register(Fake())
            assert registry.get("fake-test-engine").name == "fake-test-engine"
            with pytest.raises(ValueError):
                registry.register(Fake())
        finally:
            registry.unregister("fake-test-engine")
        assert "fake-test-engine" not in registry.list_engines()

    def test_capability_metadata(self):
        assert registry.get("brute").capabilities.bounded
        assert not registry.get("brute").capabilities.countermodels
        for name in ("hybrid", "lazy", "svc"):
            caps = registry.get(name).capabilities
            assert caps.complete
            assert caps.countermodels
            assert caps.description


class TestEngineContract:
    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_valid_formula(self, name):
        outcome = registry.get(name).decide(parse_formula(VALID_F))
        assert outcome.status == Status.VALID
        assert outcome.engine == name
        assert outcome.wall_seconds >= 0

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_invalid_formula(self, name):
        outcome = registry.get(name).decide(parse_formula(INVALID_F))
        assert outcome.status == Status.INVALID
        if registry.get(name).capabilities.countermodels:
            assert outcome.counterexample is not None

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_agreement_on_suite_subset(self, name):
        for bench_name in ("pipeline_s2_r2_1", "transval_s1_i3_1"):
            bench = benchmark_by_name(bench_name)
            outcome = registry.get(name).solve(
                SolveRequest(
                    formula=bench.formula,
                    want_countermodel=False,
                    time_limit=30.0,
                )
            )
            if name == "brute" and outcome.status == Status.UNKNOWN:
                continue  # enumeration space exceeds the oracle budget
            assert outcome.valid == bench.expected_valid, (
                name,
                bench_name,
                outcome.status,
            )

    def test_to_decision_result_round_trip(self):
        outcome = registry.get("hybrid").decide(parse_formula(INVALID_F))
        result = outcome.to_decision_result()
        assert isinstance(result, DecisionResult)
        assert result.status == Status.INVALID
        assert result.counterexample is outcome.counterexample
        assert result.stats is outcome.stats

    def test_replace_formula_keeps_knobs(self):
        request = SolveRequest(
            formula=parse_formula(VALID_F),
            sep_thold=123,
            options={"limit": 7},
        )
        clone = request.replace_formula(parse_formula(INVALID_F))
        assert clone.sep_thold == 123
        assert clone.options == {"limit": 7}
        assert clone.formula is not request.formula


class TestStageTelemetry:
    def test_eager_stage_names(self):
        outcome = registry.get("hybrid").decide(parse_formula(VALID_F))
        names = [s.name for s in outcome.stages]
        # Preprocessing may close the instance before the sat stage runs.
        assert names in (
            ["func-elim", "encode", "cnf", "preprocess", "sat"],
            ["func-elim", "encode", "cnf", "preprocess"],
        )

    def test_eager_stage_names_without_preprocess(self):
        outcome = registry.get("hybrid").solve(
            SolveRequest(
                formula=parse_formula(VALID_F), preprocess=False
            )
        )
        assert [s.name for s in outcome.stages] == [
            "func-elim",
            "encode",
            "cnf",
            "sat",
        ]

    def test_eager_decode_stage_on_invalid(self):
        outcome = registry.get("hybrid").decide(parse_formula(INVALID_F))
        assert [s.name for s in outcome.stages][-1] == "decode"

    def test_stage_seconds_match_legacy_split(self):
        outcome = registry.get("sd").decide(parse_formula(UF_VALID_F))
        by_name = {s.name: s for s in outcome.stages}
        front = sum(
            by_name[n].seconds
            for n in ("func-elim", "encode", "cnf", "preprocess")
            if n in by_name
        )
        assert outcome.stats.encode_seconds == pytest.approx(front)
        assert outcome.stats.sat_seconds == pytest.approx(
            by_name["sat"].seconds if "sat" in by_name else 0.0
        )

    def test_eager_counters(self):
        outcome = registry.get("eij").decide(parse_formula(VALID_F))
        by_name = {s.name: s for s in outcome.stages}
        assert by_name["func-elim"].counters["dag_suf"] > 0
        assert by_name["cnf"].counters["clauses"] == outcome.stats.cnf_clauses
        assert "clauses_after" in by_name["preprocess"].counters
        if "sat" in by_name:
            assert "decisions" in by_name["sat"].counters

    def test_lazy_stages(self):
        outcome = registry.get("lazy").decide(parse_formula(VALID_F))
        by_name = {s.name: s for s in outcome.stages}
        assert "iterations" in by_name["refine"].counters
        assert by_name["refine"].counters["iterations"] >= 1

    def test_svc_stages(self):
        outcome = registry.get("svc").decide(parse_formula(VALID_F))
        names = [s.name for s in outcome.stages]
        assert names == ["flatten", "split"]

    def test_brute_stages(self):
        outcome = registry.get("brute").decide(parse_formula(VALID_F))
        assert [s.name for s in outcome.stages] == ["enumerate"]
        assert outcome.stages[0].counters["limit"] > 0

    def test_check_validity_carries_stages(self):
        from repro.core.decision import check_validity

        result = check_validity(parse_formula(VALID_F), method="hybrid")
        assert result.stats.stages
        assert result.stats.stages[0].name == "func-elim"

    def test_stage_record_describe(self):
        outcome = registry.get("hybrid").decide(parse_formula(VALID_F))
        line = outcome.stages[0].describe()
        assert "func-elim" in line and "dag_suf=" in line


class TestEngineOptions:
    def test_brute_limit_option(self):
        outcome = registry.get("brute").solve(
            SolveRequest(
                formula=parse_formula(VALID_F), options={"limit": 1}
            )
        )
        assert outcome.status == Status.UNKNOWN
        assert "limit" in outcome.detail

    def test_lazy_iteration_cap(self):
        outcome = registry.get("lazy").solve(
            SolveRequest(
                formula=parse_formula(INVALID_F),
                options={"max_iterations": 10_000},
            )
        )
        assert outcome.status == Status.INVALID

    def test_translation_limit_surfaces(self):
        bench = benchmark_by_name("pipeline_s2_r2_1")
        outcome = registry.get("eij").solve(
            SolveRequest(formula=bench.formula, trans_budget=1)
        )
        assert outcome.status == Status.TRANSLATION_LIMIT

    def test_capabilities_dataclass(self):
        caps = EngineCapabilities(description="x", bounded=True)
        assert caps.bounded and caps.description == "x"
