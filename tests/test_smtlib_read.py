"""Conformance suite for the SMT-LIB 2 reader.

Three layers:

* fixture-driven: every script under ``tests/fixtures/smtlib/corpus``
  must parse and its ``check-sat`` answer must match the committed
  ``(set-info :status ...)`` annotation; every script under
  ``tests/fixtures/smtlib/errors`` must raise :class:`SmtLibError`
  matching its ``; expect-error:`` / ``; expect-line:`` /
  ``; expect-column:`` directives;
* targeted unit tests for the semantic corners (parallel ``let``,
  ``define-fun`` macro expansion, annotations, quoted symbols, the
  shared printer/reader escaping rules);
* a hypothesis round-trip property: SUF formula -> printer -> reader
  recovers the original up to the alpha-invariant canonical key.
"""

from __future__ import annotations

import glob
import os
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_suf_formula
from repro.logic import builders as b
from repro.logic.canonical import canonical_key
from repro.logic.smtlib import (
    RESERVED_WORDS,
    SmtLibError,
    UnsupportedLogicError,
    needs_quoting,
    parse_smtlib,
    reads_as_numeral,
    to_smtlib,
    to_smtlib_script,
)
from repro.logic.terms import Not

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "smtlib")
CORPUS_FILES = sorted(glob.glob(os.path.join(FIXTURES, "corpus", "*.smt2")))
ERROR_FILES = sorted(glob.glob(os.path.join(FIXTURES, "errors", "*.smt2")))


def _param(paths):
    return pytest.mark.parametrize(
        "path", paths, ids=[os.path.basename(p) for p in paths]
    )


# ---------------------------------------------------------------------------
# fixture corpus
# ---------------------------------------------------------------------------


def test_corpus_is_large_enough():
    # ISSUE 9 floor: >= 25 hand-written scripts in the committed corpus.
    assert len(CORPUS_FILES) + len(ERROR_FILES) >= 25
    assert len(ERROR_FILES) >= 10


@_param(CORPUS_FILES)
def test_corpus_parses_and_matches_status(path):
    with open(path) as fp:
        script = parse_smtlib(fp.read())
    assert script.check_sat_requested
    if script.expected_status in ("sat", "unsat"):
        assert script.check_sat(method="hybrid") == script.expected_status


@_param(ERROR_FILES)
def test_error_fixture_raises_with_position(path):
    with open(path) as fp:
        text = fp.read()
    expected = re.search(r"; expect-error: (.+)", text)
    assert expected is not None, "error fixture lacks an expect-error line"
    with pytest.raises(SmtLibError) as excinfo:
        parse_smtlib(text)
    assert expected.group(1).strip() in str(excinfo.value)
    line = re.search(r"; expect-line: (\d+)", text)
    if line is not None:
        assert excinfo.value.line == int(line.group(1))
    column = re.search(r"; expect-column: (\d+)", text)
    if column is not None:
        assert excinfo.value.column == int(column.group(1))


def test_error_messages_carry_positions():
    # Every fixture error message must name a line and column: the
    # prefix is part of the contract, not a courtesy.
    for path in ERROR_FILES:
        with open(path) as fp:
            text = fp.read()
        with pytest.raises(SmtLibError) as excinfo:
            parse_smtlib(text)
        assert re.match(r"line \d+, column \d+: ", str(excinfo.value)), path
        assert excinfo.value.line is not None


# ---------------------------------------------------------------------------
# targeted semantics
# ---------------------------------------------------------------------------


def _status(text):
    return parse_smtlib(text).check_sat(method="hybrid")


def test_let_is_parallel_not_sequential():
    # Both bindings read the *outer* environment, so the swap succeeds.
    swap = """
    (set-logic QF_IDL)
    (declare-const x Int) (declare-const y Int)
    (assert (= x 1)) (assert (= y 2))
    (assert (let ((x y) (y x)) (and (= x 2) (= y 1))))
    (check-sat)
    """
    assert _status(swap) == "sat"
    # A sequential reading would instead satisfy x = y = 2:
    sequential = swap.replace("(= x 2) (= y 1)", "(= x 2) (= y 2)")
    assert _status(sequential) == "unsat"


def test_let_shadowing_is_lexical():
    text = """
    (set-logic QF_IDL)
    (declare-const t Int)
    (assert (let ((t (+ t 5))) (= t (+ t 0))))
    (assert (< t 0))
    (check-sat)
    """
    # The shadowed t inside the let never leaks back out.
    script = parse_smtlib(text)
    assert script.check_sat(method="hybrid") == "sat"


def test_define_fun_expands_nested_macros():
    script = parse_smtlib(
        """
        (set-logic QF_UFIDL)
        (declare-const x Int)
        (define-fun inc ((a Int)) Int (+ a 1))
        (define-fun inc3 ((a Int)) Int (inc (inc (inc a))))
        (assert (= (inc3 x) (+ x 3)))
        (check-sat)
        """
    )
    # The asserted equation is a tautology after expansion, so sat.
    assert script.check_sat(method="hybrid") == "sat"


def test_define_fun_arity_checked_at_call_site():
    with pytest.raises(SmtLibError, match="expects 1 argument"):
        parse_smtlib(
            """
            (set-logic QF_IDL)
            (declare-const x Int)
            (define-fun inc ((a Int)) Int (+ a 1))
            (assert (= (inc x x) x))
            (check-sat)
            """
        )


def test_define_fun_body_checked_at_definition_site():
    with pytest.raises(SmtLibError, match="undeclared"):
        parse_smtlib(
            """
            (set-logic QF_IDL)
            (define-fun broken ((a Int)) Int (+ a missing))
            (check-sat)
            """
        )


def test_define_fun_recursion_is_rejected():
    with pytest.raises(SmtLibError):
        parse_smtlib(
            """
            (set-logic QF_IDL)
            (define-fun loop ((a Int)) Int (loop a))
            (check-sat)
            """
        )


def test_named_annotations_recorded():
    script = parse_smtlib(
        """
        (set-logic QF_IDL)
        (declare-const a Int) (declare-const b Int)
        (assert (! (< a b) :named lower))
        (check-sat)
        """
    )
    assert "lower" in script.named
    assert canonical_key(script.named["lower"]) == canonical_key(
        b.lt(b.const("a"), b.const("b"))
    )


def test_duplicate_named_annotation_rejected():
    with pytest.raises(SmtLibError, match="named"):
        parse_smtlib(
            """
            (set-logic QF_IDL)
            (declare-const a Int)
            (assert (! (< a 1) :named lbl))
            (assert (! (< a 2) :named lbl))
            (check-sat)
            """
        )


def test_quoted_symbol_is_not_a_numeral():
    script = parse_smtlib(
        """
        (set-logic QF_IDL)
        (declare-const |0| Int)
        (assert (= |0| 0))
        (check-sat)
        """
    )
    assert script.check_sat(method="hybrid") == "sat"
    assert "0" in script.int_consts


def test_expected_status_captured():
    script = parse_smtlib(
        "(set-logic QF_IDL)(set-info :status unsat)"
        "(declare-const x Int)(assert (< x x))(check-sat)"
    )
    assert script.expected_status == "unsat"
    assert script.check_sat(method="hybrid") == "unsat"


def test_get_model_flag():
    script = parse_smtlib(
        "(set-logic QF_IDL)(declare-const x Int)"
        "(assert (< x 1))(check-sat)(get-model)"
    )
    assert script.get_model_requested


def test_unsupported_constructs_raise_unsupported_logic_error():
    for text, needle in [
        ("(set-logic QF_BV)", "logic"),
        ("(set-logic QF_IDL)(declare-sort S 0)", "sort"),
        (
            "(set-logic QF_IDL)(declare-const x Int)(push 1)",
            "incremental",
        ),
        (
            "(set-logic QF_IDL)(declare-const a Int)"
            "(assert (= (select a 0) 1))",
            "fragment",
        ),
    ]:
        with pytest.raises(UnsupportedLogicError, match=needle):
            parse_smtlib(text)


# ---------------------------------------------------------------------------
# shared escaping rules (printer and reader agree by construction)
# ---------------------------------------------------------------------------


def test_reserved_words_need_quoting():
    for word in ("let", "assert", "and", "true", "_", "!"):
        assert word in RESERVED_WORDS
        assert needs_quoting(word)


def test_numeral_spellings_need_quoting():
    for name in ("0", "42", "-3", "+7"):
        assert reads_as_numeral(name)
        assert needs_quoting(name)
    for name in ("x0", "a-b", "v_1"):
        assert not reads_as_numeral(name)
        assert not needs_quoting(name)


@pytest.mark.parametrize(
    "name", ["let", "0", "-1", "two words", "assert", "a;b"]
)
def test_awkward_names_round_trip(name):
    formula = b.eq(b.const(name), b.offset(b.const("ok"), 1))
    text = to_smtlib_script(formula)
    script = parse_smtlib(text)
    assert canonical_key(Not(script.conjunction())) == canonical_key(formula)
    assert name in script.int_consts


def test_printer_quotes_match_reader_lexer():
    # to_smtlib must emit |...| exactly when the reader would not read
    # the bare spelling back as the same symbol.
    formula = b.eq(b.const("let"), b.const("plain"))
    text = to_smtlib(formula)
    assert "|let|" in text
    assert "|plain|" not in text


# ---------------------------------------------------------------------------
# round-trip property (ISSUE 9 acceptance: >= 200 examples)
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_roundtrip_print_parse_canonical_identity(seed):
    formula = random_suf_formula(seed)
    script = parse_smtlib(to_smtlib_script(formula))
    assert canonical_key(Not(script.conjunction())) == canonical_key(formula)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_roundtrip_positive_polarity(seed):
    # negate=False asserts the formula itself.
    formula = random_suf_formula(seed)
    script = parse_smtlib(to_smtlib_script(formula, negate=False))
    assert canonical_key(script.conjunction()) == canonical_key(formula)
