#!/usr/bin/env python
"""cProfile runner for the SAT core (``make profile``).

Solves one generated sat-core instance (see
``repro.engine.bench_smoke.SAT_CORE_FAMILIES``) under cProfile and
prints the top functions by internal time — the profile-first loop the
arena refactor was tuned with.  The hot loop should be dominated by
``_propagate``; anything else rising to the top is the next target.

Usage::

    PYTHONPATH=src python tools/profile_sat.py [instance] [--legacy]
        [--sort tottime] [--limit 20]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "instance",
        nargs="?",
        default="r3_190_808_s19",
        help="sat-core instance name (default r3_190_808_s19)",
    )
    parser.add_argument(
        "--legacy",
        action="store_true",
        help="profile the frozen pre-arena reference solver instead",
    )
    parser.add_argument(
        "--sort",
        default="tottime",
        help="pstats sort key (default tottime)",
    )
    parser.add_argument(
        "--limit", type=int, default=20, help="rows to print (default 20)"
    )
    args = parser.parse_args(argv)

    from repro.engine.bench_smoke import sat_core_instance

    if args.legacy:
        from repro.sat.legacy_solver import CdclSolver
    else:
        from repro.sat.solver import CdclSolver

    try:
        cnf = sat_core_instance(args.instance)
    except ValueError as exc:
        print("profile: %s" % exc, file=sys.stderr)
        return 2
    solver = CdclSolver(cnf)
    profiler = cProfile.Profile()
    profiler.enable()
    result = solver.solve()
    profiler.disable()
    print(
        "%s on %s: %s (%d conflicts)"
        % (
            "legacy" if args.legacy else "arena",
            args.instance,
            result.status,
            result.stats.conflicts,
        )
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
