#!/usr/bin/env python
"""cProfile runner for the SAT core (``make profile``).

Solves one generated sat-core instance (see
``repro.engine.bench_smoke.SAT_CORE_FAMILIES``) under cProfile and
prints the top functions by internal time — the profile-first loop the
arena refactor was tuned with.  The hot loop should be dominated by
``_propagate``; anything else rising to the top is the next target.

With ``--cube`` the same instance is solved by the cube-and-conquer
conductor instead: the conductor (cube generation, scheduling, clause
broadcast) is profiled in-process, every worker process runs under its
own cProfile and dumps pstats into a temp directory
(``REPRO_CUBE_PROFILE_DIR``), and the tool merges conductor + worker
profiles into one report — so the printed table covers the whole
parallel solve, not just the parent process.

Usage::

    PYTHONPATH=src python tools/profile_sat.py [instance] [--legacy]
        [--cube] [--procs 4] [--depth N] [--sort tottime] [--limit 20]
"""

from __future__ import annotations

import argparse
import cProfile
import glob
import os
import pstats
import shutil
import sys
import tempfile


def _profile_cube(cnf, args) -> int:
    """Profile the conductor + workers; merge and print the pstats."""
    from repro.core.result import StageRecord
    from repro.engine.contract import SolveRequest
    from repro.engine.cube import DEFAULT_DEPTH, conquer
    from repro.logic.terms import BoolVar

    request = SolveRequest(
        formula=BoolVar("profile_cube_dummy"),
        options={
            "cube_depth": args.depth or DEFAULT_DEPTH,
            "cube_procs": args.procs,
        },
    )
    tmpdir = tempfile.mkdtemp(prefix="repro-cube-profile-")
    os.environ["REPRO_CUBE_PROFILE_DIR"] = tmpdir
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        record = StageRecord("sat", 0.0)
        result = conquer(cnf, request, record, [])
        profiler.disable()
        print(
            "cube on %s: %s (%d conflicts, %d cubes, %d workers)"
            % (
                args.instance,
                result.status,
                result.stats.conflicts,
                record.counters.get("cubes", 0),
                record.counters.get("workers", 1),
            )
        )
        stats = pstats.Stats(profiler)
        worker_dumps = sorted(
            glob.glob(os.path.join(tmpdir, "cube-worker-*.pstats"))
        )
        for dump in worker_dumps:
            stats.add(dump)
        print(
            "merged %d worker profile(s) from %s"
            % (len(worker_dumps), tmpdir)
        )
        stats.sort_stats(args.sort).print_stats(args.limit)
    finally:
        os.environ.pop("REPRO_CUBE_PROFILE_DIR", None)
        shutil.rmtree(tmpdir, ignore_errors=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "instance",
        nargs="?",
        default="r3_190_808_s19",
        help="sat-core instance name (default r3_190_808_s19)",
    )
    parser.add_argument(
        "--legacy",
        action="store_true",
        help="profile the frozen pre-arena reference solver instead",
    )
    parser.add_argument(
        "--cube",
        action="store_true",
        help=(
            "profile the cube-and-conquer conductor; workers dump "
            "per-process pstats that are merged into the report"
        ),
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=4,
        help="cube workers with --cube (default 4; 1 = sequential)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        help="cube tree depth with --cube (default: engine default)",
    )
    parser.add_argument(
        "--sort",
        default="tottime",
        help="pstats sort key (default tottime)",
    )
    parser.add_argument(
        "--limit", type=int, default=20, help="rows to print (default 20)"
    )
    args = parser.parse_args(argv)

    from repro.engine.bench_smoke import cube_instance, sat_core_instance

    if args.legacy:
        from repro.sat.legacy_solver import CdclSolver
    else:
        from repro.sat.solver import CdclSolver

    try:
        cnf = sat_core_instance(args.instance)
    except ValueError:
        try:
            # Cube-family instances (php_9_8, ...) are valid targets too.
            cnf = cube_instance(args.instance)
        except ValueError as exc:
            print("profile: %s" % exc, file=sys.stderr)
            return 2

    if args.cube:
        if args.legacy:
            print(
                "profile: --cube and --legacy are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        return _profile_cube(cnf, args)

    solver = CdclSolver(cnf)
    profiler = cProfile.Profile()
    profiler.enable()
    result = solver.solve()
    profiler.disable()
    print(
        "%s on %s: %s (%d conflicts)"
        % (
            "legacy" if args.legacy else "arena",
            args.instance,
            result.status,
            result.stats.conflicts,
        )
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
