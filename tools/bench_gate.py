#!/usr/bin/env python
"""Perf-regression gate over the arena-vs-legacy SAT core benchmark.

Reads the ``sat_core`` section of a ``BENCH_PR7.json`` report (written
by ``repro bench-smoke``) and compares it against the committed
``benchmarks/baseline.json``.  The gate fails (exit 1) when:

* the two solvers disagreed on any instance verdict,
* an instance's status differs from the committed baseline, or
* the aggregate arena-vs-legacy speedup regressed by more than
  ``--max-regression`` (default 25%) relative to the baseline's.

The compared quantity is the *ratio* of legacy to arena sat seconds,
not the raw wall times, so the gate is machine-independent: a slower CI
runner slows both solvers and cancels out of the ratio.  The legacy
solver (``repro/sat/legacy_solver.py``) is frozen precisely so this
denominator stays meaningful across PRs.

Kept dependency-free (stdlib only) like the other gates in tools/.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List


def load_sat_core(path: str) -> Dict:
    with open(path) as fp:
        report = json.load(fp)
    section = report.get("sat_core")
    if not isinstance(section, dict):
        raise ValueError("%s has no sat_core section" % path)
    return section


def check(
    current: Dict, baseline: Dict, max_regression: float
) -> List[str]:
    """Return a list of human-readable gate failures (empty = pass)."""
    failures: List[str] = []
    if not current.get("verdicts_match", False):
        failures.append(
            "arena and legacy solvers disagreed on at least one instance"
        )
    base_instances = baseline.get("instances", {})
    cur_instances = current.get("instances", {})
    for name, base_row in sorted(base_instances.items()):
        cur_row = cur_instances.get(name)
        if cur_row is None:
            failures.append("instance %s missing from current run" % name)
            continue
        if cur_row["status_arena"] != base_row["status_arena"]:
            failures.append(
                "instance %s verdict changed: baseline %s, current %s"
                % (name, base_row["status_arena"], cur_row["status_arena"])
            )
    base_speedup = baseline.get("aggregate", {}).get("speedup")
    cur_speedup = current.get("aggregate", {}).get("speedup")
    if base_speedup is None or cur_speedup is None:
        failures.append("missing aggregate speedup (empty instance set?)")
        return failures
    floor = base_speedup * (1.0 - max_regression)
    if cur_speedup < floor:
        failures.append(
            "aggregate speedup regressed: baseline %.2fx, current %.2fx "
            "(floor %.2fx at %.0f%% tolerance)"
            % (base_speedup, cur_speedup, floor, 100 * max_regression)
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report",
        default="BENCH_PR7.json",
        help="current-run report (default BENCH_PR7.json)",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baseline.json",
        help="committed baseline (default benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    try:
        current = load_sat_core(args.report)
        baseline = load_sat_core(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("bench gate: %s" % exc, file=sys.stderr)
        return 1

    failures = check(current, baseline, args.max_regression)
    cur = current.get("aggregate", {}).get("speedup")
    base = baseline.get("aggregate", {}).get("speedup")
    if cur is not None and base is not None:
        print(
            "bench gate: aggregate speedup %.2fx (baseline %.2fx)"
            % (cur, base)
        )
    for failure in failures:
        print("bench gate: FAIL: %s" % failure, file=sys.stderr)
    if failures:
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
