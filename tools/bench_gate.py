#!/usr/bin/env python
"""Perf-regression gate over the bench-smoke perf benchmarks.

Reads the ``sat_core`` section of a ``BENCH_PR7.json`` report (written
by ``repro bench-smoke``) and compares it against the committed
``benchmarks/baseline.json``.  The gate fails (exit 1) when:

* the two solvers disagreed on any instance verdict,
* an instance's status differs from the committed baseline, or
* the aggregate arena-vs-legacy speedup regressed by more than
  ``--max-regression`` (default 25%) relative to the baseline's.

The compared quantity is the *ratio* of legacy to arena sat seconds,
not the raw wall times, so the gate is machine-independent: a slower CI
runner slows both solvers and cancels out of the ratio.  The legacy
solver (``repro/sat/legacy_solver.py``) is frozen precisely so this
denominator stays meaningful across PRs.

With ``--cube-report`` the gate additionally checks the
``cube_vs_sequential`` section of a ``BENCH_PR8.json`` report: the
cube-and-conquer conductor must agree with the sequential solver on
every instance verdict, per-instance statuses must match the committed
baseline, the aggregate cube-vs-sequential speedup must not regress
beyond the tolerance, and clause sharing must be live (imported-clause
counts above zero — a silently dead sharing conduit is a perf bug even
when verdicts stay right).  A share-ablation violation (``--no-share``
faster than sharing) is reported as a warning, not a failure, because
it is timing-jitter-sensitive on loaded CI runners.

Sections present in the current run but absent from the committed
baseline are reported as warnings and skipped, not failed, so a PR can
introduce a new benchmark section before the baseline is regenerated.

Kept dependency-free (stdlib only) like the other gates in tools/.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple


def load_sat_core(path: str) -> Dict:
    with open(path) as fp:
        report = json.load(fp)
    section = report.get("sat_core")
    if not isinstance(section, dict):
        raise ValueError("%s has no sat_core section" % path)
    return section


def load_section(path: str, name: str) -> Optional[Dict]:
    """The named report section, or ``None`` when absent.

    Missing *files* still raise (a gate pointed at a nonexistent report
    is a CI wiring bug); missing *sections* are the tolerated case (a
    baseline that predates the section).
    """
    with open(path) as fp:
        report = json.load(fp)
    section = report.get(name)
    if section is not None and not isinstance(section, dict):
        raise ValueError("%s has a malformed %s section" % (path, name))
    return section


def check(
    current: Dict, baseline: Dict, max_regression: float
) -> List[str]:
    """Return a list of human-readable gate failures (empty = pass)."""
    failures: List[str] = []
    if not current.get("verdicts_match", False):
        failures.append(
            "arena and legacy solvers disagreed on at least one instance"
        )
    base_instances = baseline.get("instances", {})
    cur_instances = current.get("instances", {})
    for name, base_row in sorted(base_instances.items()):
        cur_row = cur_instances.get(name)
        if cur_row is None:
            failures.append("instance %s missing from current run" % name)
            continue
        if cur_row["status_arena"] != base_row["status_arena"]:
            failures.append(
                "instance %s verdict changed: baseline %s, current %s"
                % (name, base_row["status_arena"], cur_row["status_arena"])
            )
    base_speedup = baseline.get("aggregate", {}).get("speedup")
    cur_speedup = current.get("aggregate", {}).get("speedup")
    if base_speedup is None or cur_speedup is None:
        failures.append("missing aggregate speedup (empty instance set?)")
        return failures
    floor = base_speedup * (1.0 - max_regression)
    if cur_speedup < floor:
        failures.append(
            "aggregate speedup regressed: baseline %.2fx, current %.2fx "
            "(floor %.2fx at %.0f%% tolerance)"
            % (base_speedup, cur_speedup, floor, 100 * max_regression)
        )
    return failures


def check_cube(
    current: Dict,
    baseline: Optional[Dict],
    max_regression: float,
) -> Tuple[List[str], List[str]]:
    """Gate the ``cube_vs_sequential`` section.

    Returns ``(failures, warnings)``.  ``baseline=None`` (section not
    yet committed) downgrades every baseline-relative check to a
    warning; correctness checks — verdict agreement and live clause
    sharing — still fail outright because they need no baseline.
    """
    failures: List[str] = []
    warnings: List[str] = []
    if not current.get("verdicts_match", False):
        failures.append(
            "cube-and-conquer and the sequential solver disagreed on at "
            "least one instance"
        )
    unsat_rows = [
        row
        for row in current.get("instances", {}).values()
        if row.get("status_sequential") == "UNSAT"
    ]
    if unsat_rows and not any(
        row.get("imported_clauses", 0) for row in unsat_rows
    ):
        failures.append(
            "clause sharing is dead: no worker imported a single learned "
            "clause on any UNSAT instance"
        )
    ablation = current.get("share_ablation")
    if ablation and not ablation.get("no_share_no_faster", True):
        warnings.append(
            "share ablation violated: --no-share ran faster than sharing "
            "(%.2fs vs %.2fs) — jitter-sensitive, not gating"
            % (
                ablation.get("seconds_noshare", 0.0),
                ablation.get("seconds_share", 0.0),
            )
        )
    cur_speedup = current.get("aggregate", {}).get("speedup")
    if baseline is None:
        warnings.append(
            "baseline has no cube_vs_sequential section; skipping "
            "baseline-relative checks (regenerate benchmarks/baseline.json "
            "to arm them)"
        )
        return failures, warnings
    base_instances = baseline.get("instances", {})
    cur_instances = current.get("instances", {})
    for name, base_row in sorted(base_instances.items()):
        cur_row = cur_instances.get(name)
        if cur_row is None:
            failures.append(
                "cube instance %s missing from current run" % name
            )
            continue
        if cur_row["status_cube"] != base_row["status_cube"]:
            failures.append(
                "cube instance %s verdict changed: baseline %s, current %s"
                % (name, base_row["status_cube"], cur_row["status_cube"])
            )
    base_speedup = baseline.get("aggregate", {}).get("speedup")
    if base_speedup is None or cur_speedup is None:
        failures.append(
            "missing aggregate cube speedup (empty instance set?)"
        )
        return failures, warnings
    floor = base_speedup * (1.0 - max_regression)
    if cur_speedup < floor:
        failures.append(
            "aggregate cube speedup regressed: baseline %.2fx, current "
            "%.2fx (floor %.2fx at %.0f%% tolerance)"
            % (base_speedup, cur_speedup, floor, 100 * max_regression)
        )
    return failures, warnings


def check_compete(
    current: Dict, baseline: Optional[Dict]
) -> Tuple[List[str], List[str]]:
    """Gate a ``repro compete`` report (``BENCH_PR9.json``).

    Warn-don't-fail by design: solved counts and PAR-2 scores depend on
    wall-clock timeouts, which are too jittery on shared CI runners to
    gate on, so baseline-relative movement is reported as warnings only.
    The one hard failure is a verdict-vs-``:status`` mismatch — a
    soundness signal (the compete runner itself already exits nonzero on
    it; this is the backstop for hand-run reports).
    """
    failures: List[str] = []
    warnings: List[str] = []
    if current.get("mismatches_total", 0):
        failures.append(
            "compete report has %d verdict(s) contradicting :status "
            "annotations" % current["mismatches_total"]
        )
    if baseline is None:
        warnings.append(
            "baseline has no compete section; skipping baseline-relative "
            "checks (regenerate benchmarks/baseline.json to arm them)"
        )
        return failures, warnings
    for method, base_score in sorted(baseline.get("methods", {}).items()):
        section = current.get("methods", {}).get(method)
        if section is None:
            warnings.append(
                "compete method %s in the baseline but not the current "
                "run" % method
            )
            continue
        score = section.get("score", {})
        if score.get("solved", 0) < base_score.get("solved", 0):
            warnings.append(
                "compete[%s] solved count dropped: baseline %d, current %d"
                % (method, base_score["solved"], score.get("solved", 0))
            )
        base_par2 = base_score.get("par2")
        cur_par2 = score.get("par2")
        # Ratio check only, but with an absolute slack floor: on a corpus
        # this small the PAR-2 is fractions of a second, where machine
        # jitter alone exceeds 1.5x.
        if (
            base_par2
            and cur_par2 is not None
            and cur_par2 > 1.5 * base_par2
            and cur_par2 - base_par2 > 2.0
        ):
            warnings.append(
                "compete[%s] PAR-2 worsened beyond 1.5x: baseline %.2f, "
                "current %.2f" % (method, base_par2, cur_par2)
            )
    base_count = baseline.get("instance_count")
    cur_count = current.get("meta", {}).get("instance_count")
    if base_count is not None and cur_count is not None:
        if cur_count < base_count:
            warnings.append(
                "compete instance count shrank: baseline %d, current %d"
                % (base_count, cur_count)
            )
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report",
        default="BENCH_PR7.json",
        help="current-run report (default BENCH_PR7.json)",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baseline.json",
        help="committed baseline (default benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression (default 0.25)",
    )
    parser.add_argument(
        "--cube-report",
        default=None,
        help=(
            "cube-and-conquer report to gate as well (BENCH_PR8.json; "
            "checks the cube_vs_sequential section)"
        ),
    )
    parser.add_argument(
        "--compete-report",
        default=None,
        help=(
            "repro compete report to check as well (BENCH_PR9.json; "
            "mismatches fail, solved/PAR-2 movement only warns)"
        ),
    )
    args = parser.parse_args(argv)

    try:
        current = load_sat_core(args.report)
        baseline = load_sat_core(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("bench gate: %s" % exc, file=sys.stderr)
        return 1

    failures = check(current, baseline, args.max_regression)
    cur = current.get("aggregate", {}).get("speedup")
    base = baseline.get("aggregate", {}).get("speedup")
    if cur is not None and base is not None:
        print(
            "bench gate: aggregate speedup %.2fx (baseline %.2fx)"
            % (cur, base)
        )

    warnings: List[str] = []
    if args.cube_report is not None:
        try:
            cube_current = load_section(
                args.cube_report, "cube_vs_sequential"
            )
            if cube_current is None:
                raise ValueError(
                    "%s has no cube_vs_sequential section"
                    % args.cube_report
                )
            cube_baseline = load_section(
                args.baseline, "cube_vs_sequential"
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("bench gate: %s" % exc, file=sys.stderr)
            return 1
        cube_failures, warnings = check_cube(
            cube_current, cube_baseline, args.max_regression
        )
        failures.extend(cube_failures)
        cube_speedup = cube_current.get("aggregate", {}).get("speedup")
        if cube_speedup is not None:
            imported = cube_current.get("aggregate", {}).get(
                "imported_clauses", 0
            )
            print(
                "bench gate: cube speedup %.2fx, %d clause(s) imported"
                % (cube_speedup, imported)
            )

    if args.compete_report is not None:
        try:
            with open(args.compete_report) as fp:
                compete_current = json.load(fp)
            compete_baseline = load_section(args.baseline, "compete")
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("bench gate: %s" % exc, file=sys.stderr)
            return 1
        compete_failures, compete_warnings = check_compete(
            compete_current, compete_baseline
        )
        failures.extend(compete_failures)
        warnings.extend(compete_warnings)
        for method, section in sorted(
            compete_current.get("methods", {}).items()
        ):
            score = section.get("score", {})
            print(
                "bench gate: compete[%s] %d/%d solved, PAR-2 %.2f"
                % (
                    method,
                    score.get("solved", 0),
                    score.get("instances", 0),
                    score.get("par2", 0.0),
                )
            )

    for warning in warnings:
        print("bench gate: WARN: %s" % warning, file=sys.stderr)
    for failure in failures:
        print("bench gate: FAIL: %s" % failure, file=sys.stderr)
    if failures:
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
