#!/usr/bin/env python
"""Enforce coverage floors from a ``coverage json`` report.

Reads the ``coverage.json`` that ``pytest --cov=repro --cov-report=json``
produces and fails (exit 1) when either floor is broken:

* the global line-coverage floor (``--global-floor``), and
* a stricter floor for each strictly-gated package (``--package``,
  repeatable, with ``--package-floor``) — by default the service layer
  (the result cache and the serve loop are the correctness-critical
  concurrency code this repo most needs pinned) and the incremental
  session layer (``engine/session.py``, the stateful solving path).

Kept dependency-free on purpose: the local container has no coverage
tooling (see ROADMAP.md), so this script only ever runs in CI after
``pip install pytest-cov``, but it must be importable/testable anywhere.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Tuple

#: Strictly-gated packages when no ``--package`` is given.
DEFAULT_PACKAGES = ["repro/service/", "repro/engine/session.py"]


def package_rate(
    report: Dict, package_fragment: str
) -> Tuple[float, int, int]:
    """(percent, covered, statements) over files whose path contains
    ``package_fragment``."""
    covered = statements = 0
    for path, data in report.get("files", {}).items():
        if package_fragment not in path.replace("\\", "/"):
            continue
        summary = data.get("summary", {})
        covered += summary.get("covered_lines", 0)
        statements += summary.get("num_statements", 0)
    if statements == 0:
        return 0.0, 0, 0
    return 100.0 * covered / statements, covered, statements


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", default="coverage.json", help="coverage json report path"
    )
    parser.add_argument(
        "--global-floor",
        type=float,
        default=80.0,
        help="minimum total line coverage percent",
    )
    parser.add_argument(
        "--package",
        action="append",
        dest="packages",
        default=None,
        help=(
            "path fragment selecting a strictly-gated package "
            "(repeatable; default: %s)" % ", ".join(DEFAULT_PACKAGES)
        ),
    )
    parser.add_argument(
        "--package-floor",
        type=float,
        default=90.0,
        help="minimum line coverage percent for each --package",
    )
    args = parser.parse_args(argv)
    packages = args.packages if args.packages else list(DEFAULT_PACKAGES)

    try:
        with open(args.report) as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        print("coverage-gate: cannot read %s: %s" % (args.report, exc))
        return 1

    total = report.get("totals", {}).get("percent_covered")
    if total is None:
        print("coverage-gate: report has no totals.percent_covered")
        return 1

    failed = False
    print(
        "coverage-gate: total %.2f%% (floor %.2f%%)"
        % (total, args.global_floor)
    )
    if total < args.global_floor:
        print("coverage-gate: FAIL — total coverage below the floor")
        failed = True
    for fragment in packages:
        pkg_rate, pkg_covered, pkg_statements = package_rate(
            report, fragment
        )
        if pkg_statements == 0:
            print("coverage-gate: FAIL — no files match %r" % fragment)
            failed = True
            continue
        print(
            "coverage-gate: %s %.2f%% (%d/%d lines, floor %.2f%%)"
            % (
                fragment,
                pkg_rate,
                pkg_covered,
                pkg_statements,
                args.package_floor,
            )
        )
        if pkg_rate < args.package_floor:
            print(
                "coverage-gate: FAIL — %s coverage below the floor"
                % fragment
            )
            failed = True
    if not failed:
        print("coverage-gate: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
