#!/usr/bin/env python
"""Encoding comparison across the benchmark suite — the paper in miniature.

Runs SD, EIJ and HYBRID over a slice of the 49-benchmark suite and prints
a compact comparison: total time, CNF size, conflict clauses, and which
method each HYBRID class chose.  This is the quickest way to *see* the
paper's thesis: EIJ's few conflict clauses on predicate-light formulas,
its translation blow-up on invariant formulas, and HYBRID tracking the
better of the two.

Run:  python examples/encoding_comparison.py
"""

from repro.benchgen.suite import invariant_suite, non_invariant_suite
from repro.core import check_validity
from repro.encodings.hybrid import encode_hybrid
from repro.transform.func_elim import eliminate_applications


def describe_hybrid_choice(formula) -> str:
    from repro.encodings.transitivity import TransitivityBudgetExceeded

    f_sep, _ = eliminate_applications(formula)
    try:
        encoding = encode_hybrid(f_sep, sep_thold=100, trans_budget=100_000)
    except TransitivityBudgetExceeded:
        return "translation blows up"
    sd = sum(1 for m in encoding.method_of_class.values() if m == "SD")
    eij = len(encoding.method_of_class) - sd
    return "%d EIJ / %d SD classes" % (eij, sd)


def main() -> None:
    picks = (
        non_invariant_suite()[::8] + invariant_suite()[1:4:2]
    )
    header = "%-26s %8s %8s %8s   %s" % (
        "benchmark",
        "SD",
        "EIJ",
        "HYBRID",
        "hybrid class mix",
    )
    print(header)
    print("-" * len(header))
    for bench in picks:
        times = {}
        for method in ("sd", "eij", "hybrid"):
            result = check_validity(
                bench.formula,
                method=method,
                sep_thold=100,  # the suite-calibrated default (see docs)
                trans_budget=100_000,
                sat_time_limit=20.0,
                want_countermodel=False,
            )
            if result.valid is None:
                times[method] = "  blown"
            else:
                assert result.valid == bench.expected_valid
                times[method] = "%7.3f" % result.stats.total_seconds
        print(
            "%-26s %8s %8s %8s   %s"
            % (
                bench.name,
                times["sd"],
                times["eij"],
                times["hybrid"],
                describe_hybrid_choice(bench.formula),
            )
        )


if __name__ == "__main__":
    main()
