#!/usr/bin/env python
"""SMT-LIB interoperability — run standard-format problems end to end.

The decision procedures cover the SMT-LIB logics QF_UF, QF_IDL and their
union QF_UFIDL.  This example feeds three classic problem shapes through
the front end (`repro.logic.smtlib`) and cross-checks every encoding:

* an EUF congruence chain (QF_UF),
* a difference-logic scheduling core (QF_IDL),
* a mixed tag/lookup query (QF_UFIDL).

Run:  python examples/smtlib_interop.py
"""

from repro.logic.smtlib import parse_smtlib

EUF_CHAIN = """
(set-logic QF_UF)
(declare-const x0 Int) (declare-const x1 Int)
(declare-const x2 Int) (declare-const x3 Int)
(declare-fun f (Int) Int)
(assert (= x0 x1)) (assert (= x1 x2)) (assert (= x2 x3))
(assert (not (= (f (f x0)) (f (f x3)))))
(check-sat)
"""

SCHEDULING = """
(set-logic QF_IDL)
; three jobs with durations 3, 4, 2 on one machine, deadline 8 after start
(declare-const s1 Int) (declare-const s2 Int) (declare-const s3 Int)
(declare-const t0 Int)
(assert (<= t0 s1)) (assert (<= t0 s2)) (assert (<= t0 s3))
; non-overlap (fixed order 1 < 2 < 3)
(assert (<= (+ s1 3) s2))
(assert (<= (+ s2 4) s3))
; deadline
(assert (<= (+ s3 2) (+ t0 8)))
(check-sat)
"""

MIXED = """
(set-logic QF_UFIDL)
(declare-const t1 Int) (declare-const t2 Int)
(declare-fun owner (Int) Int)
(assert (< t1 t2))
(assert (= (owner t1) (owner t2)))
(assert (not (= (owner t1) (owner (+ t1 0)))))
(check-sat)
"""


def main() -> None:
    cases = [
        ("EUF congruence chain", EUF_CHAIN, "unsat"),
        ("IDL scheduling (deadline too tight by 1)", SCHEDULING, "unsat"),
        ("UFIDL owner lookup contradiction", MIXED, "unsat"),
        (
            "IDL scheduling, relaxed deadline",
            SCHEDULING.replace("t0 8", "t0 9"),
            "sat",
        ),
    ]
    for name, text, expected in cases:
        script = parse_smtlib(text)
        verdicts = {
            method: script.check_sat(method=method)
            for method in ("hybrid", "sd", "eij")
        }
        assert set(verdicts.values()) == {expected}, (name, verdicts)
        print(
            "%-42s -> %-6s (logic %s, %d assertion(s); all encodings agree)"
            % (
                name,
                expected,
                script.logic,
                len(script.assertions),
            )
        )


if __name__ == "__main__":
    main()
