#!/usr/bin/env python
"""Ordered-queue invariant checking — where the small-domain method wins.

The invariant-checking formulas (out-of-order processors, ordered queues)
have many inequalities, large symbolic-constant classes and essentially no
p-function applications.  This example builds the sortedness-invariant
obligation at increasing queue sizes and shows the paper's Figure-5 effect
directly: the per-constraint encoding's transitivity constraints explode
while SD stays flat, and HYBRID's class statistics explain the choice.

Run:  python examples/queue_invariant.py
"""

from repro import check_validity
from repro.benchgen.invariant import make_invariant
from repro.separation.analysis import analyze_separation
from repro.transform.func_elim import eliminate_applications


def main() -> None:
    print(
        "%-6s %-7s %-8s %-9s %-12s %-12s"
        % ("cells", "nodes", "classes", "SepCnt", "SD time", "EIJ time")
    )
    for cells in (6, 8, 10, 12):
        bench = make_invariant(cells=cells, seed=1)

        # Inspect the analysis the hybrid method performs (§4 steps 1-4).
        f_sep, _ = eliminate_applications(bench.formula)
        analysis = analyze_separation(f_sep)
        sep_cnt = analysis.total_sep_count()
        biggest = max(len(c.vars) for c in analysis.classes)

        sd = check_validity(bench.formula, method="sd")
        eij = check_validity(
            bench.formula, method="eij", trans_budget=100_000
        )
        assert sd.valid
        eij_time = (
            "%.3fs" % eij.stats.total_seconds
            if eij.valid is not None
            else "blew up"
        )
        print(
            "%-6d %-7d %-8d %-9d %-12s %-12s"
            % (
                cells,
                bench.dag_size,
                len(analysis.classes),
                sep_cnt,
                "%.3fs" % sd.stats.total_seconds,
                eij_time,
            )
        )
        print(
            "        largest class: %d constants, p-fraction: %.0f%%"
            % (
                biggest,
                100.0
                * len(analysis.p_vars)
                / max(len(analysis.p_vars) + len(analysis.g_vars), 1),
            )
        )

    # The failed invariant: the conclusion claims the chain overshoots
    # its guaranteed total gap; the all-tight trace refutes it.
    bad = make_invariant(cells=4, seed=1, valid=False)
    result = check_validity(bad.formula, method="sd")
    assert not result.valid
    model = result.counterexample
    cells_vals = sorted(
        (name, value)
        for name, value in model.vars.items()
        if name.startswith("a")
    )
    print("\ninvalid variant countermodel (a tight trace, no overshoot):")
    for name, value in cells_vals:
        print("   %s = %d" % (name, value))


if __name__ == "__main__":
    main()
