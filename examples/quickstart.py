#!/usr/bin/env python
"""Quickstart: build SUF formulas and decide them with every procedure.

Covers the whole public surface in a few minutes of reading:

* building formulas with :mod:`repro.logic.builders`;
* the three eager encodings (SD, EIJ, HYBRID) via ``check_validity``;
* the lazy (CVC-style) and case-splitting (SVC-style) baselines;
* inspecting statistics and counterexamples.

Run:  python examples/quickstart.py
"""

from repro import check_validity, pretty
from repro.logic import builders as b
from repro.solvers.lazy import check_validity_lazy
from repro.solvers.svclike import check_validity_svc


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Functional consistency: the bread and butter of EUF reasoning.
    # ------------------------------------------------------------------
    x, y = b.const("x"), b.const("y")
    f = b.func("f")
    consistency = b.implies(b.eq(x, y), b.eq(f(x), f(y)))
    print("formula:", pretty(consistency))
    for method in ("hybrid", "sd", "eij"):
        result = check_validity(consistency, method=method)
        print(
            "  %-7s -> %-7s (%.4fs, %d CNF clauses)"
            % (
                method,
                result.status,
                result.stats.total_seconds,
                result.stats.cnf_clauses,
            )
        )

    # ------------------------------------------------------------------
    # 2. Separation predicates: ordering with +-1 arithmetic.
    # ------------------------------------------------------------------
    i, n = b.const("i"), b.const("n")
    loop_step = b.implies(
        b.band(b.lt(i, n), b.eq(b.const("i2"), b.succ(i))),
        b.le(b.const("i2"), n),
    )
    print("\nformula:", pretty(loop_step))
    print("  hybrid ->", check_validity(loop_step).status)

    # ------------------------------------------------------------------
    # 3. An invalid formula and its countermodel.
    # ------------------------------------------------------------------
    claim = b.implies(b.le(x, y), b.lt(x, y))  # <= does not imply <
    result = check_validity(claim)
    print("\nformula:", pretty(claim))
    print("  hybrid ->", result.status)
    model = result.counterexample
    print(
        "  countermodel: x = %d, y = %d"
        % (model.vars["x"], model.vars["y"])
    )

    # ------------------------------------------------------------------
    # 4. The baseline procedures give the same answers.
    # ------------------------------------------------------------------
    for name, solver in (
        ("lazy (CVC-style)", check_validity_lazy),
        ("split (SVC-style)", check_validity_svc),
    ):
        print(
            "  %-18s consistency=%s, claim=%s"
            % (
                name,
                solver(consistency).status,
                solver(claim).status,
            )
        )


if __name__ == "__main__":
    main()
