#!/usr/bin/env python
"""Pipeline forwarding verification — the paper's motivating hardware use.

Builds a 4-stage bypass network two ways (youngest-first nested ITEs vs a
priority-explicit specification), proves them equal through an abstracted
ALU, then *injects a forwarding bug* and shows how the decision procedure
produces a concrete scenario demonstrating it: a register collision where
the buggy network forwards a stale value.

Run:  python examples/pipeline_verification.py
"""

from repro import check_validity
from repro.benchgen.pipeline import make_pipeline
from repro.logic import builders as b
from repro.logic.semantics import evaluate_term


def main() -> None:
    # ------------------------------------------------------------------
    # Correct design: the obligation is valid under every encoding.
    # ------------------------------------------------------------------
    good = make_pipeline(stages=4, reads=2, seed=7)
    print(
        "verifying %s (%d DAG nodes)..." % (good.name, good.dag_size)
    )
    for method in ("hybrid", "sd", "eij"):
        result = check_validity(good.formula, method=method)
        assert result.valid, "correct pipeline must verify"
        print(
            "  %-7s VALID  %.3fs  (%d conflict clauses)"
            % (
                method,
                result.stats.total_seconds,
                result.stats.conflict_clauses,
            )
        )

    # ------------------------------------------------------------------
    # Buggy design: the bypass priority is inverted (oldest writeback
    # wins).  The procedure finds the collision scenario.
    # ------------------------------------------------------------------
    bad = make_pipeline(stages=4, reads=2, seed=7, valid=False)
    result = check_validity(bad.formula, method="hybrid")
    assert not result.valid, "the injected bug must be found"
    model = result.counterexample
    print("\nbuggy pipeline: %s" % result.status)
    print("  bug scenario (decoded countermodel):")
    names = sorted(
        name
        for name in model.vars
        if name[0] in "dws" and not name.startswith("$")
    )
    for name in names:
        print("    %-6s = %d" % (name, model.vars[name]))
    collisions = [
        (a, c)
        for a in names
        for c in names
        if a < c and model.vars[a] == model.vars[c]
        and a.startswith("d") and c.startswith("src")
    ]
    print(
        "  register collisions driving the bug: %s"
        % (collisions if collisions else "(see values above)")
    )

    # The countermodel is a real interpretation: it evaluates the ALU.
    regfile = model.funcs.get("regfile", {})
    print("  regfile table points used: %d" % len(regfile))


if __name__ == "__main__":
    main()
