#!/usr/bin/env python
"""Translation validation — the paper's software-verification use case.

A "compiler" rewrites an expression (renames inputs, swaps ITE branches
with negated conditions, refolds offset chains); the validator proves the
source and target equivalent given equal inputs.  A miscompiled variant
(an off-by-one in an address offset) is detected, and the parser/printer
round-trip shows how obligations can be exchanged as text.

Run:  python examples/translation_validation.py
"""

from repro import check_validity, parse_formula, to_sexpr
from repro.benchgen.transval import make_transval
from repro.logic import builders as b


def main() -> None:
    # ------------------------------------------------------------------
    # A hand-written validation obligation.
    # ------------------------------------------------------------------
    xs, xt = b.const("x_src"), b.const("x_tgt")
    ys, yt = b.const("y_src"), b.const("y_tgt")
    op = b.func("op")

    source = b.ite(b.eq(xs, ys), op(xs, b.succ(ys)), op(ys, xs))
    target = b.ite(
        b.bnot(b.eq(xt, yt)),  # branch swap with negated condition
        op(yt, xt),
        op(xt, b.offset(yt, 1)),  # succ refolded as +1
    )
    obligation = b.implies(
        b.band(b.eq(xs, xt), b.eq(ys, yt)),
        b.eq(source, target),
    )
    result = check_validity(obligation)
    print("hand-written obligation:", result.status)
    assert result.valid

    # Textual exchange: print, re-parse, re-check.
    text = to_sexpr(obligation)
    print("as s-expression (%d chars)" % len(text))
    assert check_validity(parse_formula(text)).valid

    # ------------------------------------------------------------------
    # Generated obligations at increasing size.
    # ------------------------------------------------------------------
    print("\ngenerated obligations:")
    for size in (2, 3, 4):
        bench = make_transval(size=size, inputs=4, seed=size)
        result = check_validity(bench.formula, sep_thold=100)
        assert result.valid
        print(
            "  size=%d: %d DAG nodes, %-7s %.3fs"
            % (
                size,
                bench.dag_size,
                result.status,
                result.stats.total_seconds,
            )
        )

    # ------------------------------------------------------------------
    # Miscompilation: the dropped +1 is caught with a concrete input.
    # ------------------------------------------------------------------
    bad = make_transval(size=3, inputs=3, seed=11, valid=False)
    result = check_validity(bad.formula, sep_thold=100)
    assert not result.valid
    model = result.counterexample
    inputs = {
        name: value
        for name, value in sorted(model.vars.items())
        if name.startswith("x")
    }
    print("\nmiscompiled variant: %s" % result.status)
    print("  failing input assignment: %s" % inputs)


if __name__ == "__main__":
    main()
