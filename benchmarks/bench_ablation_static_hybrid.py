"""ABL2 — feature-based HYBRID vs the fixed (CFV'02) hybrid.

The paper reports that its earlier fixed combination — equalities without
arithmetic encoded with EIJ, everything else with SD, independent of
formula features — "met with limited success".  This ablation times both
schemes on a slice spanning the suite.

Run:  pytest benchmarks/bench_ablation_static_hybrid.py --benchmark-only -q
"""

import pytest

from conftest import decide_once
from repro.benchgen.suite import invariant_suite, non_invariant_suite

PICKS = non_invariant_suite()[::5] + invariant_suite()[::4]

_ROWS = {}


@pytest.mark.parametrize("bench", PICKS, ids=lambda b: b.name)
@pytest.mark.parametrize("procedure", ["HYBRID", "STATIC"])
def test_ablation_static(benchmark, bench, procedure):
    benchmark.group = "ABL2 %s" % bench.name
    row = decide_once(benchmark, bench, procedure)
    _ROWS[(bench.name, procedure)] = row


def test_ablation_static_summary(capsys):
    names = sorted({name for name, _ in _ROWS})
    if len(names) < len(PICKS):
        pytest.skip("measurement rows incomplete")
    hybrid_ok = sum(1 for n in names if not _ROWS[(n, "HYBRID")].timed_out)
    static_ok = sum(1 for n in names if not _ROWS[(n, "STATIC")].timed_out)
    wins = sum(
        1
        for n in names
        if not _ROWS[(n, "HYBRID")].timed_out
        and (
            _ROWS[(n, "STATIC")].timed_out
            or _ROWS[(n, "HYBRID")].total_seconds
            <= _ROWS[(n, "STATIC")].total_seconds + 0.05
        )
    )
    noninv = [
        n for n in names if not n.startswith("invariant")
    ]
    hybrid_ok_ni = sum(
        1 for n in noninv if not _ROWS[(n, "HYBRID")].timed_out
    )
    static_ok_ni = sum(
        1 for n in noninv if not _ROWS[(n, "STATIC")].timed_out
    )
    with capsys.disabled():
        print("\nABL2 summary (static = the CFV'02 fixed scheme):")
        print("  decided: HYBRID %d/%d, STATIC %d/%d"
              % (hybrid_ok, len(names), static_ok, len(names)))
        print("  HYBRID at-least-as-fast on %d/%d" % (wins, len(names)))
        print(
            "  NOTE: on this synthetic suite the fixed scheme is strong — "
            "equality-only vs offset classes separate cleanly, so the "
            "static choice is near-optimal (it even decides the invariant "
            "entries HYBRID's below-threshold feature misses); see "
            "EXPERIMENTS.md ABL2 for the discussion."
        )
    # On the non-invariant group, feature-based selection decides at
    # least as many benchmarks as the fixed scheme.
    assert hybrid_ok_ni >= static_ok_ni
