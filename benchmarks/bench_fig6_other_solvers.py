"""FIG6 — HYBRID vs other decision procedures (paper Figure 6).

Claims to reproduce: the SVC-style case splitter wins only on small,
conjunction-dominated formulas and blows up on disjunction-heavy ones;
the CVC-style lazy procedure pays per-iteration refinement overhead and
generally loses to the eager HYBRID encoding.

Run:  pytest benchmarks/bench_fig6_other_solvers.py --benchmark-only -q
"""

import pytest

from conftest import decide_once
from repro.benchgen.suite import non_invariant_suite

_ALL = non_invariant_suite()
# A slice across domains and sizes (full set: repro-suf experiment fig6).
_PICK_INDICES = [0, 5, 7, 11, 13, 16, 20, 23, 26, 29, 33, 36]
PICKS = [_ALL[i] for i in _PICK_INDICES]

_ROWS = {}


@pytest.mark.parametrize("bench", PICKS, ids=lambda b: b.name)
@pytest.mark.parametrize("procedure", ["HYBRID", "SVC(split)", "CVC(lazy)"])
def test_fig6_runs(benchmark, bench, procedure):
    benchmark.group = "FIG6 %s" % bench.name
    row = decide_once(benchmark, bench, procedure)
    _ROWS[(bench.name, procedure)] = row


def test_fig6_claims(capsys):
    names = sorted({name for name, _ in _ROWS})
    if len(names) < len(PICKS):
        pytest.skip("measurement rows incomplete")
    hybrid_fail = [n for n in names if _ROWS[(n, "HYBRID")].timed_out]
    svc_fail = [n for n in names if _ROWS[(n, "SVC(split)")].timed_out]
    cvc_fail = [n for n in names if _ROWS[(n, "CVC(lazy)")].timed_out]
    hybrid_vs_svc = sum(
        1
        for n in names
        if not _ROWS[(n, "HYBRID")].timed_out
        and (
            _ROWS[(n, "SVC(split)")].timed_out
            or _ROWS[(n, "HYBRID")].total_seconds
            <= _ROWS[(n, "SVC(split)")].total_seconds + 0.05
        )
    )
    hybrid_vs_cvc = sum(
        1
        for n in names
        if not _ROWS[(n, "HYBRID")].timed_out
        and (
            _ROWS[(n, "CVC(lazy)")].timed_out
            or _ROWS[(n, "HYBRID")].total_seconds
            <= _ROWS[(n, "CVC(lazy)")].total_seconds + 0.05
        )
    )
    with capsys.disabled():
        print("\nFIG6 summary (paper: baselines win only on small "
              "conjunctive formulas; SVC blows up on disjunctions):")
        print("  HYBRID failures: %s" % (hybrid_fail or "none"))
        print("  SVC failures:    %s" % (svc_fail or "none"))
        print("  CVC failures:    %s" % (cvc_fail or "none"))
        print(
            "  HYBRID at-least-as-fast: vs SVC %d/%d, vs CVC %d/%d"
            % (hybrid_vs_svc, len(names), hybrid_vs_cvc, len(names))
        )
    assert not hybrid_fail
    # HYBRID should dominate a clear majority of the slice.
    assert hybrid_vs_svc * 2 >= len(names)
    assert hybrid_vs_cvc * 2 >= len(names)
