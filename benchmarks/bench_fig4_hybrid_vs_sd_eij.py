"""FIG4 — HYBRID vs SD and EIJ on the non-invariant benchmarks (Figure 4).

Claims to reproduce: HYBRID (calibrated default threshold) completes on
every non-invariant benchmark while SD and EIJ each time out on some;
points above the y = x diagonal (HYBRID faster) dominate.

The timing rows here cover a representative slice of the 39 benchmarks —
one small and one large entry per domain plus every entry where a
competitor fails; ``repro-suf experiment fig4`` runs the full set.

Run:  pytest benchmarks/bench_fig4_hybrid_vs_sd_eij.py --benchmark-only -q
"""

import pytest

from conftest import decide_once
from repro.benchgen.suite import non_invariant_suite

_ALL = non_invariant_suite()
# Small + large entry per domain, plus the EIJ-explosion and SD-timeout
# region (ooo/driver large, cache large).
_PICK_INDICES = [0, 6, 7, 12, 13, 17, 19, 20, 24, 25, 26, 31, 32, 33, 38]
PICKS = [_ALL[i] for i in _PICK_INDICES]

_ROWS = {}


@pytest.mark.parametrize("bench", PICKS, ids=lambda b: b.name)
@pytest.mark.parametrize("procedure", ["HYBRID", "SD", "EIJ"])
def test_fig4_runs(benchmark, bench, procedure):
    benchmark.group = "FIG4 %s" % bench.name
    row = decide_once(benchmark, bench, procedure)
    _ROWS[(bench.name, procedure)] = row


def test_fig4_claims(capsys):
    names = sorted({name for name, _ in _ROWS})
    if len(names) < len(PICKS):
        pytest.skip("measurement rows incomplete")
    hybrid_failures = [
        n for n in names if _ROWS[(n, "HYBRID")].timed_out
    ]
    sd_failures = [n for n in names if _ROWS[(n, "SD")].timed_out]
    eij_failures = [n for n in names if _ROWS[(n, "EIJ")].timed_out]
    wins = sum(
        1
        for n in names
        if not _ROWS[(n, "HYBRID")].timed_out
        and (
            _ROWS[(n, "SD")].timed_out
            or _ROWS[(n, "HYBRID")].total_seconds
            <= _ROWS[(n, "SD")].total_seconds + 0.05
        )
        and (
            _ROWS[(n, "EIJ")].timed_out
            or _ROWS[(n, "HYBRID")].total_seconds
            <= _ROWS[(n, "EIJ")].total_seconds * 4
        )
    )
    with capsys.disabled():
        print("\nFIG4 summary (paper: HYBRID completes all, SD and EIJ "
              "each time out on some):")
        print("  HYBRID failures: %s" % (hybrid_failures or "none"))
        print("  SD failures:     %s" % (sd_failures or "none"))
        print("  EIJ failures:    %s" % (eij_failures or "none"))
        print("  HYBRID competitive on %d/%d" % (wins, len(names)))
    assert not hybrid_failures, "HYBRID must complete on all (paper)"
    assert sd_failures or eij_failures, (
        "the slice should include at least one SD or EIJ failure"
    )
