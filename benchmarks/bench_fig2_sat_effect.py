"""FIG2 — effect of the encoding on SAT-solver behaviour (paper Figure 2).

The paper's table compares SD and EIJ on five of the larger sample
benchmarks: number of CNF clauses, number of conflict clauses added by the
SAT solver, and SAT time.  Claim to reproduce: EIJ produces more CNF
clauses (transitivity constraints) but needs far fewer conflict clauses
and less SAT time.

Run:  pytest benchmarks/bench_fig2_sat_effect.py --benchmark-only -q
"""

import pytest

from conftest import decide_once
from repro.benchgen.suite import sample16

# The five largest sample benchmarks that both methods decide (the
# offset-rich entries fail EIJ translation and cannot appear in this
# table, exactly as in the paper).
_DECIDABLE_DOMAINS = ("cache", "loadstore", "pipeline", "transval")
_CANDIDATES = sorted(sample16(), key=lambda b: -b.dag_size)
FIG2_BENCHES = [
    b for b in _CANDIDATES if b.domain in _DECIDABLE_DOMAINS
][:5]

_RESULTS = {}


@pytest.mark.parametrize(
    "bench", FIG2_BENCHES, ids=lambda b: b.name
)
@pytest.mark.parametrize("procedure", ["SD", "EIJ"])
def test_fig2_encoding_effect(benchmark, bench, procedure):
    benchmark.group = "FIG2 %s" % bench.name
    row = decide_once(benchmark, bench, procedure)
    _RESULTS[(bench.name, procedure)] = row


def test_fig2_claim_summary(capsys):
    """After the measurement rows: verify and print the paper's claim."""
    decided = [
        name
        for name in {key[0] for key in _RESULTS}
        if not _RESULTS[(name, "SD")].timed_out
        and not _RESULTS[(name, "EIJ")].timed_out
    ]
    if not decided:
        pytest.skip("no benchmark decided by both methods")
    fewer_conflicts = sum(
        1
        for name in decided
        if _RESULTS[(name, "EIJ")].conflict_clauses
        <= _RESULTS[(name, "SD")].conflict_clauses
    )
    with capsys.disabled():
        print("\nFIG2 summary (paper: EIJ has more CNF clauses, fewer "
              "conflict clauses, lower SAT time):")
        for name in decided:
            sd = _RESULTS[(name, "SD")]
            eij = _RESULTS[(name, "EIJ")]
            print(
                "  %-24s CNF %6d vs %6d | conflicts %6d vs %6d | "
                "SAT %.2fs vs %.2fs"
                % (
                    name,
                    sd.cnf_clauses,
                    eij.cnf_clauses,
                    sd.conflict_clauses,
                    eij.conflict_clauses,
                    sd.sat_seconds,
                    eij.sat_seconds,
                )
            )
        print(
            "  EIJ needed fewer-or-equal conflict clauses on %d/%d"
            % (fewer_conflicts, len(decided))
        )
    # The qualitative claim: a majority of decided benchmarks show the
    # paper's conflict-clause reduction.
    assert fewer_conflicts * 2 >= len(decided)
