"""ABL4 — SD range allocation: uniform window vs ascending (Pnueli et al.).

The paper's SD method gives every class constant the same per-class
window (§4 step 3); its reference [12] (Pnueli, Rodeh, Shtrichman,
Siegel) shows equality variables only need ascending ranges {0..i}.
This ablation measures both allocations on the equality-dense benchmarks
where SD struggles — the tighter domains collapse the SAT search.

Run:  pytest benchmarks/bench_ablation_sd_ranges.py --benchmark-only -q
"""

import pytest

from repro.benchgen.suite import non_invariant_suite
from repro.core.decision import check_validity
from repro.experiments.runner import DEFAULT_TIMEOUT

# The equality-dense families where SD's search dominates.
PICKS = [
    b
    for b in non_invariant_suite()
    if b.domain in ("cache", "pipeline", "transval")
][:9]

_ROWS = {}


@pytest.mark.parametrize("bench", PICKS, ids=lambda b: b.name)
@pytest.mark.parametrize("ranges", ["uniform", "ascending"])
def test_sd_range_allocation(benchmark, bench, ranges):
    benchmark.group = "ABL4 %s" % bench.name
    out = {}

    def target():
        out["result"] = check_validity(
            bench.formula,
            method="sd",
            sd_ranges=ranges,
            sat_time_limit=DEFAULT_TIMEOUT,
            want_countermodel=False,
        )

    benchmark.pedantic(target, rounds=1, iterations=1)
    result = out["result"]
    if result.valid is not None:
        assert result.valid == bench.expected_valid
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["conflicts"] = result.stats.conflict_clauses
    _ROWS[(bench.name, ranges)] = result


def test_sd_range_summary(capsys):
    names = sorted({name for name, _ in _ROWS})
    if len(names) < len(PICKS):
        pytest.skip("measurement rows incomplete")
    wins = sum(
        1
        for n in names
        if _ROWS[(n, "ascending")].valid is not None
        and (
            _ROWS[(n, "uniform")].valid is None
            or _ROWS[(n, "ascending")].stats.total_seconds
            <= _ROWS[(n, "uniform")].stats.total_seconds + 0.05
        )
    )
    with capsys.disabled():
        print("\nABL4 summary (ascending ranges on equality-only classes):")
        for n in names:
            uni = _ROWS[(n, "uniform")]
            asc = _ROWS[(n, "ascending")]
            print(
                "  %-22s uniform %-8s %6.2fs (%6d conf) | "
                "ascending %-8s %6.2fs (%6d conf)"
                % (
                    n,
                    uni.status,
                    uni.stats.total_seconds,
                    uni.stats.conflict_clauses,
                    asc.status,
                    asc.stats.total_seconds,
                    asc.stats.conflict_clauses,
                )
            )
        print("  ascending at-least-as-fast on %d/%d" % (wins, len(names)))
    assert wins * 2 >= len(names)
