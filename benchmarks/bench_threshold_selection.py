"""THOLD — automatic SEP_THOLD selection (paper §4.1).

The paper selects the default threshold by clustering the normalized EIJ
run-times of the 16-benchmark sample and rounding the boundary benchmark's
separation-predicate count up to a multiple of 100 (their sample: n_k=676,
threshold 700).  This benchmark reruns the procedure on this repository's
sample and asserts the calibrated constant the experiments use.

Run:  pytest benchmarks/bench_threshold_selection.py --benchmark-only -q
"""

import pytest

from repro.experiments.runner import CALIBRATED_SEP_THOLD, DEFAULT_TIMEOUT
from repro.experiments.threshold_exp import run_threshold_selection


def test_threshold_selection(benchmark, capsys):
    result = {}

    def target():
        result["selection"], result["rows"] = run_threshold_selection(
            timeout=DEFAULT_TIMEOUT
        )

    benchmark.pedantic(target, rounds=1, iterations=1)
    selection = result["selection"]
    benchmark.extra_info["threshold"] = selection.threshold
    benchmark.extra_info["boundary_n_k"] = selection.boundary_sep_count
    with capsys.disabled():
        print(
            "\nTHOLD summary: boundary n_k=%d -> SEP_THOLD=%d "
            "(paper: n_k=676 -> 700 on its own suite; calibrated "
            "constant in use: %d)"
            % (
                selection.boundary_sep_count,
                selection.threshold,
                CALIBRATED_SEP_THOLD,
            )
        )
    # The auto-selected value must match what the experiments hard-code.
    assert selection.threshold == CALIBRATED_SEP_THOLD
