"""FIG5 — invariant-checking benchmarks: SD wins (paper Figure 5).

Claims to reproduce: on the invariant-checking family, EIJ and HYBRID at
the default threshold fail on every benchmark (translation explosion at
low SepCnt); lowering SEP_THOLD lets HYBRID complete but SD remains at
least as fast.

Run:  pytest benchmarks/bench_fig5_invariant.py --benchmark-only -q
"""

import pytest

from conftest import decide_once
from repro.benchgen.suite import invariant_suite
from repro.experiments.fig5 import FIG5_SEP_THOLD

BENCHES = invariant_suite()[::2]  # every other entry keeps this quick
_ROWS = {}

_PROCS = [
    ("SD", {}),
    ("EIJ", {}),
    ("HYBRID-default", {"sep_thold": None}),  # calibrated default
    ("HYBRID-low", {"sep_thold": FIG5_SEP_THOLD}),
]


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
@pytest.mark.parametrize(
    "label,kw", _PROCS, ids=[p[0] for p in _PROCS]
)
def test_fig5_runs(benchmark, bench, label, kw):
    benchmark.group = "FIG5 %s" % bench.name
    procedure = "HYBRID" if label.startswith("HYBRID") else label
    kwargs = {k: v for k, v in kw.items() if v is not None}
    row = decide_once(benchmark, bench, procedure, **kwargs)
    _ROWS[(bench.name, label)] = row


def test_fig5_claims(capsys):
    names = sorted({name for name, _ in _ROWS})
    if len(names) < len(BENCHES):
        pytest.skip("measurement rows incomplete")
    eij_fail = sum(1 for n in names if _ROWS[(n, "EIJ")].timed_out)
    default_fail = sum(
        1 for n in names if _ROWS[(n, "HYBRID-default")].timed_out
    )
    sd_ok = sum(1 for n in names if not _ROWS[(n, "SD")].timed_out)
    sd_wins = sum(
        1
        for n in names
        if not _ROWS[(n, "SD")].timed_out
        and (
            _ROWS[(n, "HYBRID-low")].timed_out
            or _ROWS[(n, "SD")].total_seconds
            <= _ROWS[(n, "HYBRID-low")].total_seconds * 1.5
        )
    )
    with capsys.disabled():
        print("\nFIG5 summary (paper: EIJ and HYBRID-default fail on all; "
              "SD completes and beats HYBRID at the lowered threshold):")
        for n in names:
            print(
                "  %-20s SD %-8s EIJ %-8s HYB(def) %-8s HYB(%d) %-8s"
                % (
                    n,
                    _ROWS[(n, "SD")].status,
                    _ROWS[(n, "EIJ")].status,
                    _ROWS[(n, "HYBRID-default")].status,
                    FIG5_SEP_THOLD,
                    _ROWS[(n, "HYBRID-low")].status,
                )
            )
        print(
            "  EIJ failures %d/%d, HYBRID-default failures %d/%d, "
            "SD completions %d/%d, SD at-least-as-fast %d/%d"
            % (
                eij_fail, len(names),
                default_fail, len(names),
                sd_ok, len(names),
                sd_wins, len(names),
            )
        )
    assert sd_ok == len(names), "SD must complete on all invariant runs"
    assert eij_fail == len(names), "EIJ must fail on all (paper)"
    assert default_fail == len(names), (
        "HYBRID at the default threshold must fail on all (paper)"
    )
