"""ABL1 — SEP_THOLD sensitivity sweep (repository ablation).

HYBRID is run at SEP_THOLD in {0, 30, 100, 700, inf} on a slice of the
sample; T=0 coincides with SD and T=inf with EIJ (paper §4), so the sweep
shows the whole spectrum and where the calibrated default (100) sits.

Run:  pytest benchmarks/bench_ablation_threshold.py --benchmark-only -q
"""

import pytest

from conftest import decide_once
from repro.benchgen.suite import sample16

PICKS = sample16()[::3]
THOLDS = [0, 30, 100, 700, None]

_ROWS = {}


@pytest.mark.parametrize("bench", PICKS, ids=lambda b: b.name)
@pytest.mark.parametrize(
    "thold", THOLDS, ids=lambda t: "T%s" % ("inf" if t is None else t)
)
def test_ablation_threshold(benchmark, bench, thold):
    benchmark.group = "ABL1 %s" % bench.name
    if thold is None:
        row = decide_once(benchmark, bench, "EIJ")
    else:
        row = decide_once(benchmark, bench, "HYBRID", sep_thold=thold)
    _ROWS[(bench.name, thold)] = row


def test_ablation_threshold_summary(capsys):
    if len(_ROWS) < len(PICKS) * len(THOLDS):
        pytest.skip("measurement rows incomplete")
    decided = {
        thold: sum(
            1 for b in PICKS if not _ROWS[(b.name, thold)].timed_out
        )
        for thold in THOLDS
    }
    with capsys.disabled():
        print("\nABL1 summary (benchmarks decided per threshold):")
        for thold in THOLDS:
            print(
                "  T=%-5s %d/%d"
                % ("inf" if thold is None else thold,
                   decided[thold], len(PICKS))
            )
    # The calibrated default must decide at least as many as either
    # endpoint on this slice (the robustness claim of the paper).
    assert decided[100] >= max(decided[0], decided[None]) - 1
