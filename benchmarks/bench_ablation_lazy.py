"""ABL3 — incremental vs restarting lazy refinement (repository ablation).

CVC's refinement loop reused an incremental Chaff; a naive reimplementation
restarts SAT every round.  This ablation measures both modes of our lazy
procedure on refinement-heavy formulas, quantifying the per-iteration
overhead the paper attributes to the lazy approach.

Run:  pytest benchmarks/bench_ablation_lazy.py --benchmark-only -q
"""

import pytest

from repro.benchgen.suite import non_invariant_suite
from repro.solvers.lazy import check_validity_lazy

# Ordering-heavy formulas make the refinement loop iterate.
PICKS = [
    b for b in non_invariant_suite() if b.domain in ("ooo", "driver")
][:6]

_ROWS = {}


@pytest.mark.parametrize("bench", PICKS, ids=lambda b: b.name)
@pytest.mark.parametrize("mode", ["incremental", "restart"])
def test_lazy_modes(benchmark, bench, mode):
    benchmark.group = "ABL3 %s" % bench.name
    out = {}

    def target():
        out["result"] = check_validity_lazy(
            bench.formula,
            time_limit=20.0,
            want_countermodel=False,
            incremental=(mode == "incremental"),
        )

    benchmark.pedantic(target, rounds=1, iterations=1)
    result = out["result"]
    if result.valid is not None:
        assert result.valid == bench.expected_valid
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["iterations"] = result.stats.iterations
    _ROWS[(bench.name, mode)] = result


def test_lazy_modes_summary(capsys):
    names = sorted({name for name, _ in _ROWS})
    if len(names) < len(PICKS):
        pytest.skip("measurement rows incomplete")
    with capsys.disabled():
        print("\nABL3 summary (refinement iterations are identical; the "
              "incremental mode amortises the SAT state):")
        for n in names:
            inc = _ROWS[(n, "incremental")]
            res = _ROWS[(n, "restart")]
            print(
                "  %-20s iterations inc=%d restart=%d  status %s/%s"
                % (
                    n,
                    inc.stats.iterations,
                    res.stats.iterations,
                    inc.status,
                    res.status,
                )
            )
