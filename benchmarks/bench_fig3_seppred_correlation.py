"""FIG3 — EIJ cost vs number of separation predicates (paper Figure 3).

The paper plots, over the 16-benchmark sample, the normalized total time
of SD and EIJ against the separation-predicate count (both axes log).
Claims to reproduce: (a) EIJ run-time correlates with the predicate count
and fails in the translation stage beyond a threshold; (b) SD stays
comparatively flat and completes on the benchmarks EIJ fails on.

Run:  pytest benchmarks/bench_fig3_seppred_correlation.py --benchmark-only -q
"""

import pytest

from conftest import decide_once
from repro.benchgen.suite import sample16
from repro.experiments.fig3 import rank_correlation

SAMPLE = sample16()
_ROWS = {}


@pytest.mark.parametrize("bench", SAMPLE, ids=lambda b: b.name)
@pytest.mark.parametrize("procedure", ["EIJ", "SD"])
def test_fig3_sample_runs(benchmark, bench, procedure):
    benchmark.group = "FIG3 %s" % procedure
    row = decide_once(benchmark, bench, procedure)
    _ROWS[(bench.name, procedure)] = row


def test_fig3_correlation_summary(capsys):
    eij_rows = [
        _ROWS[(b.name, "EIJ")] for b in SAMPLE if (b.name, "EIJ") in _ROWS
    ]
    if len(eij_rows) < 8:
        pytest.skip("not enough measurement rows")
    pairs = []
    for row in eij_rows:
        sep = row.sep_predicates or _ROWS.get(
            (row.benchmark, "SD"),
            row,
        ).sep_predicates
        norm = row.normalized_seconds
        if row.timed_out:
            norm = 1e6  # translation failure: top of the plot
        pairs.append((max(sep, 1), norm))
    rho = rank_correlation(pairs)
    failures = sum(1 for row in eij_rows if row.timed_out)
    sd_failures = sum(
        1
        for b in SAMPLE
        if (b.name, "SD") in _ROWS and _ROWS[(b.name, "SD")].timed_out
    )
    with capsys.disabled():
        print("\nFIG3 summary:")
        for sep, norm in sorted(pairs):
            print("  sep=%5d  EIJ norm=%10.2f s/Knode" % (sep, norm))
        print(
            "  Spearman rho = %.2f; EIJ translation failures: %d/16 "
            "(paper: 3/16); SD failures: %d/16 (paper: 0)"
            % (rho, failures, sd_failures)
        )
    assert rho > 0.3, "EIJ cost should correlate with predicate count"
    assert failures >= 1, "the sample must exhibit the EIJ explosion"
