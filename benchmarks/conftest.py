"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_fig*.py`` file regenerates one table/figure of the paper:
the pytest-benchmark timing rows mirror the figure's series (one row per
benchmark × procedure), and a summary of the figure-level claim is printed
at the end of the module's run.

Every decision run uses the same resource budgets as the experiment
harness (20 s SAT budget, 100k transitivity-clause budget); timed-out runs
are recorded via the ``timeout_seconds`` extra-info field rather than
failing the benchmark.
"""

import pytest

from repro.benchgen.base import Benchmark
from repro.experiments.runner import (
    CALIBRATED_SEP_THOLD,
    DEFAULT_TIMEOUT,
    DEFAULT_TRANS_BUDGET,
    run_benchmark,
)


def decide_once(benchmark, bench: Benchmark, procedure: str, **kw):
    """Run one (suite benchmark, procedure) pair under pytest-benchmark.

    ``rounds=1`` — these are seconds-long end-to-end solver runs; the
    wall-clock of a single run is the figure's datum.
    """
    rows = {}

    def target():
        rows["row"] = run_benchmark(
            bench, procedure, timeout=DEFAULT_TIMEOUT, **kw
        )

    benchmark.pedantic(target, rounds=1, iterations=1)
    row = rows["row"]
    benchmark.extra_info["status"] = row.status
    benchmark.extra_info["dag_nodes"] = row.dag_size
    benchmark.extra_info["sep_predicates"] = row.sep_predicates
    benchmark.extra_info["cnf_clauses"] = row.cnf_clauses
    benchmark.extra_info["conflict_clauses"] = row.conflict_clauses
    return row
