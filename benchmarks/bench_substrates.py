"""Microbenchmarks for the substrate layers.

Not a paper figure — these keep the building blocks honest: CDCL search
throughput, Tseitin flattening, transitivity generation (both the
difference-bound elimination and the equality triangle closure), the
Bellman–Ford theory core, and function elimination on a deep DAG.

Run:  pytest benchmarks/bench_substrates.py --benchmark-only -q
"""

import random

import pytest

from repro.encodings.sepvars import Bound, SepVarRegistry
from repro.encodings.transitivity import (
    generate_equality_transitivity,
    generate_transitivity,
)
from repro.logic import builders as b
from repro.logic.terms import Var
from repro.sat.cnf import Cnf
from repro.sat.solver import solve_cnf
from repro.sat.tseitin import to_cnf
from repro.theory.difference import check_bounds
from repro.transform.func_elim import eliminate_applications


def _php(pigeons, holes):
    cnf = Cnf()
    var = {
        (p, h): cnf.new_var()
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


def test_cdcl_pigeonhole(benchmark):
    benchmark.group = "substrate: CDCL"
    result = benchmark(lambda: solve_cnf(_php(7, 6)))
    assert result.is_unsat


def test_cdcl_random_sat(benchmark):
    benchmark.group = "substrate: CDCL"
    rng = random.Random(1)
    cnf = Cnf()
    for _ in range(120):
        cnf.new_var()
    for _ in range(480):
        cnf.add_clause(
            [rng.choice([1, -1]) * rng.randint(1, 120) for _ in range(3)]
        )

    result = benchmark(lambda: solve_cnf(cnf))
    assert result.status in ("SAT", "UNSAT")


def test_tseitin_large_formula(benchmark):
    benchmark.group = "substrate: Tseitin"
    atoms = [b.bconst("ts%d" % i) for i in range(64)]
    formula = b.bconst("seed")
    for i in range(200):
        # The iff operands are always distinct (6i = -1 mod 64 has no
        # solution), so no sub-formula folds to a constant.
        formula = b.bor(
            b.band(atoms[i % 64], formula),
            b.iff(atoms[(i * 7) % 64], atoms[(i * 13 + 1) % 64]),
        )
    cnf = benchmark(lambda: to_cnf(formula))
    assert len(cnf.clauses) > 100


def test_transitivity_difference(benchmark):
    benchmark.group = "substrate: transitivity"

    def build():
        registry = SepVarRegistry()
        vars_ = [Var("bt%d" % i) for i in range(10)]
        rng = random.Random(3)
        for _ in range(25):
            x, y = rng.sample(vars_, 2)
            registry.literal(x, y, rng.randint(-2, 2))
        return generate_transitivity(registry, vars_, budget=300_000)

    clauses = benchmark(build)
    assert clauses


def test_transitivity_equality(benchmark):
    benchmark.group = "substrate: transitivity"

    def build():
        registry = SepVarRegistry()
        vars_ = [Var("be%d" % i) for i in range(24)]
        rng = random.Random(5)
        for _ in range(90):
            x, y = rng.sample(vars_, 2)
            registry.eq_var(x, y)
        return generate_equality_transitivity(registry, vars_)

    clauses = benchmark(build)
    assert clauses


def test_bellman_ford(benchmark):
    benchmark.group = "substrate: theory"
    rng = random.Random(7)
    vars_ = [Var("bf%d" % i) for i in range(60)]
    bounds = [
        Bound(*rng.sample(vars_, 2), c=rng.randint(-1, 5))
        for _ in range(400)
    ]
    result = benchmark(lambda: check_bounds(bounds))
    assert result.consistent or result.cycle


def test_function_elimination(benchmark):
    benchmark.group = "substrate: func-elim"
    f = b.func("f")
    xs = [b.const("fe%d" % i) for i in range(30)]
    parts = []
    for i in range(29):
        parts.append(b.eq(f(xs[i]), f(xs[i + 1])))
    formula = b.implies(b.band(*parts), b.eq(f(xs[0]), f(xs[29])))
    f_sep, info = benchmark(lambda: eliminate_applications(formula))
    assert len(info.func_consts["f"]) == 30
