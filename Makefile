PYTHON ?= python
PYTHONPATH := src

.PHONY: test fuzz fuzz-smoke bench-smoke ci clean

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Fixed benchmark subset through every engine; per-engine wall/encode/sat
# seconds plus the preprocessing on/off comparison land in BENCH_PR3.json
# (CI uploads it as an artifact and fails if preprocessing changes a
# verdict).
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench-smoke --out BENCH_PR3.json

# The full acceptance campaign (deterministic; ~3s).
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fuzz --iterations 500 --seed 0

# Fixed-seed smoke campaign for CI: fast, deterministic, all profiles.
fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fuzz --iterations 200 --seed 0

# Tier-1 tests + fuzz smoke; what .github/workflows/ci.yml runs.
ci: test fuzz-smoke

clean:
	rm -rf fuzz-failures .pytest_cache .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
