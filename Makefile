PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint typecheck analyze analyze-baseline sarif fuzz fuzz-smoke bench-smoke bench-gate compete-smoke profile coverage ci clean

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Repo-specific static analysis (concurrency / determinism / flow /
# lifecycle / engine-contract rules; see docs/static-analysis.md).
# Always available: it needs only the stdlib.  The whole tree is
# checked — src, tools, AND tests — against the committed baseline
# (analysis-baseline.json): any finding not in the baseline fails, any
# stale baseline entry fails (--prune), and every suppression must
# carry a '-- why' justification.  Seeded rule fixtures are excluded.
analyze:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro analyze src tools tests \
		--exclude tests/fixtures/analysis \
		--baseline analysis-baseline.json --prune --check-suppressions

# Regenerate the committed baseline after deliberately accepting (or
# burning down) findings.  Review the diff before committing it.
analyze-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro analyze src tools tests \
		--exclude tests/fixtures/analysis \
		--baseline analysis-baseline.json --write-baseline

# SARIF 2.1.0 log for CI code-scanning upload (exit status ignored:
# the gating run is `make analyze`; this one only renders the log).
sarif:
	-PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro analyze src tools tests \
		--exclude tests/fixtures/analysis \
		--baseline analysis-baseline.json \
		--format sarif > analysis.sarif
	@echo "wrote analysis.sarif"

# ruff + the repro analyzer.  ruff is skipped with a notice when not
# installed (the dev container ships without it; CI installs it).
lint: analyze
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tools; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi

# mypy strict on core/engine/logic/service, gradual elsewhere
# (configured in pyproject.toml).  Skipped with a notice when mypy is
# not installed; CI installs and enforces it.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

# Fixed benchmark subset through every engine; per-engine wall/encode/sat
# seconds, the preprocessing on/off comparison, and the cold-vs-warm
# result-cache comparison land in BENCH_PR4.json, the
# incremental-vs-scratch comparison on the prefix-sharing family lands
# in BENCH_PR6.json, the arena-vs-legacy SAT core comparison on the
# large generated families lands in BENCH_PR7.json, and the
# cube-and-conquer-vs-sequential comparison (with the clause-sharing
# ablation) on the hard families lands in BENCH_PR8.json (CI uploads
# all and fails if preprocessing, the cache, incremental solving, the
# arena solver, or the cube conductor changes a verdict).
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench-smoke \
		--out BENCH_PR4.json --incremental-out BENCH_PR6.json \
		--families large --sat-core-out BENCH_PR7.json \
		--cube-out BENCH_PR8.json --cube-families hard --cube-procs 4

# SMT-LIB evaluation smoke: sweeps the committed fixture corpus plus a
# benchgen-emitted mini-corpus through the hybrid and portfolio engines
# (repro compete), failing on any verdict-vs-:status mismatch or
# instance error; the SMT-COMP-style scoring report lands in
# BENCH_PR9.json (CI uploads it).
compete-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro compete \
		tests/fixtures/smtlib/corpus --emit-benchgen .compete-benchgen \
		--methods hybrid,portfolio --timeout 30 --fail-on-error \
		--out BENCH_PR9.json

# Perf-regression gate: compares BENCH_PR7.json's aggregate
# arena-vs-legacy speedup and BENCH_PR8.json's cube-vs-sequential
# speedup (machine-independent ratios) against the committed
# benchmarks/baseline.json; fails on a verdict change, a >25% speedup
# regression, or a dead clause-sharing conduit.  BENCH_PR9.json (from
# compete-smoke) is checked too: mismatches fail, solved/PAR-2 movement
# against the baseline's compete section only warns.
bench-gate:
	$(PYTHON) tools/bench_gate.py --cube-report BENCH_PR8.json \
		--compete-report BENCH_PR9.json

# cProfile one sat-core instance (PROFILE_ARGS picks instance/flags,
# e.g. make profile PROFILE_ARGS="php_8_7 --legacy").
profile:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/profile_sat.py $(PROFILE_ARGS)

# Line coverage with floors (requires pytest-cov; CI installs it — the
# local dev container intentionally has no coverage tooling).
coverage:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q \
		--cov=repro --cov-report=json --cov-report=term
	$(PYTHON) tools/coverage_gate.py

# The full acceptance campaign (deterministic; ~3s).
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fuzz --iterations 500 --seed 0

# Fixed-seed smoke campaign for CI: fast, deterministic, all profiles.
fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fuzz --iterations 200 --seed 0

# Tier-1 tests + static analysis + fuzz smoke; what
# .github/workflows/ci.yml runs (CI additionally installs and enforces
# ruff + mypy).
ci: lint typecheck test fuzz-smoke

clean:
	rm -rf fuzz-failures .pytest_cache .hypothesis .compete-benchgen
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
