PYTHON ?= python
PYTHONPATH := src

.PHONY: test fuzz fuzz-smoke ci clean

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The full acceptance campaign (deterministic; ~3s).
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fuzz --iterations 500 --seed 0

# Fixed-seed smoke campaign for CI: fast, deterministic, all profiles.
fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fuzz --iterations 200 --seed 0

# Tier-1 tests + fuzz smoke; what .github/workflows/ci.yml runs.
ci: test fuzz-smoke

clean:
	rm -rf fuzz-failures .pytest_cache .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
