"""Command-line interface: ``repro-suf`` / ``python -m repro``.

Subcommands
-----------
``check FILE``
    Decide the validity of the SUF formula in ``FILE`` (s-expression
    syntax, see :mod:`repro.logic.parser`); ``-`` reads stdin.
``bench NAME``
    Generate a suite benchmark, print its statistics, and decide it.
``suite``
    List the 49-benchmark suite.
``experiment {fig2,fig3,fig4,fig5,fig6,threshold,ablation,all}``
    Run one of the paper's experiments and print its table/figure.
``analyze FILE``
    Print the separation analysis (classes, domains, SepCnt, per-class
    method choice) for a formula — the paper's §4 steps 1–4, visible.
``sat FILE``
    Run the built-in CDCL solver on a DIMACS CNF file.
``fuzz``
    Run the differential/metamorphic fuzzing campaign over every
    decision method; discrepancies are shrunk and written to
    ``fuzz-failures/``.  Exits 0 when clean, 1 on a discrepancy
    (argparse usage errors exit 2).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import experiments
from .benchgen.suite import benchmark_by_name, suite
from .core.decision import check_validity
from .logic.parser import parse_formula
from .logic.printer import pretty

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-suf",
        description=(
            "Hybrid SAT-based decision procedure for separation logic "
            "with uninterpreted functions (DAC 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="decide a SUF formula file")
    check.add_argument("file", help="formula file, or - for stdin")
    check.add_argument(
        "--method",
        choices=["hybrid", "sd", "eij", "static", "lazy", "svc"],
        default="hybrid",
    )
    check.add_argument(
        "--format",
        choices=["auto", "sexpr", "smtlib"],
        default="auto",
        help="input syntax; auto uses smtlib for .smt2 files or scripts "
        "starting with an SMT-LIB command",
    )
    check.add_argument("--sep-thold", type=int, default=700)
    check.add_argument(
        "--sd-ranges",
        choices=["uniform", "ascending"],
        default="uniform",
        help="SD domain allocation (ascending = Pnueli-et-al. ranges on "
        "equality-only classes; only affects --method sd)",
    )
    check.add_argument("--timeout", type=float, default=None)
    check.add_argument(
        "--countermodel",
        action="store_true",
        help="print a countermodel when the formula is invalid",
    )

    bench = sub.add_parser("bench", help="decide one suite benchmark")
    bench.add_argument("name")
    bench.add_argument(
        "--method",
        choices=["hybrid", "sd", "eij", "static"],
        default="hybrid",
    )
    bench.add_argument("--invalid", action="store_true")
    bench.add_argument("--print-formula", action="store_true")

    sub.add_parser("suite", help="list the 49-benchmark suite")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument(
        "which",
        choices=[
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "threshold",
            "ablation",
            "all",
        ],
    )
    exp.add_argument("--timeout", type=float, default=None)
    exp.add_argument(
        "--save",
        metavar="FILE",
        default=None,
        help="also write the experiment's output to FILE",
    )

    analyze = sub.add_parser(
        "analyze", help="print the separation analysis of a formula"
    )
    analyze.add_argument("file", help="formula file, or - for stdin")
    analyze.add_argument("--sep-thold", type=int, default=700)

    sat = sub.add_parser("sat", help="solve a DIMACS CNF file")
    sat.add_argument("file", help="DIMACS file, or - for stdin")
    sat.add_argument("--timeout", type=float, default=None)
    sat.add_argument(
        "--model", action="store_true", help="print the satisfying model"
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential + metamorphic fuzzing across all methods",
    )
    fuzz.add_argument(
        "--iterations", type=int, default=500, help="samples to run"
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (echoed in output)"
    )
    fuzz.add_argument(
        "--profile",
        default="all",
        help="generator profile: equality, offset, uf, mixed, or all "
        "(rotate through every profile)",
    )
    fuzz.add_argument(
        "--out",
        default="fuzz-failures",
        metavar="DIR",
        help="directory for shrunk reproducers (.sexpr + .smt2)",
    )
    fuzz.add_argument(
        "--methods",
        default=None,
        metavar="NAMES",
        help="comma-separated subset of brute,sd,eij,hybrid,static,lazy,svc",
    )
    fuzz.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic transform checks",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failures without delta-debugging them",
    )
    fuzz.add_argument(
        "--max-failures", type=int, default=5, help="stop after N failures"
    )
    fuzz.add_argument(
        "--self-check",
        action="store_true",
        help="inject a strictness bug into the hybrid method and verify "
        "the harness catches it (exits 0 iff the bug is caught)",
    )
    return parser


def _looks_like_smtlib(args, text: str) -> bool:
    fmt = getattr(args, "format", "auto")
    if fmt != "auto":
        return fmt == "smtlib"
    if args.file.endswith(".smt2"):
        return True
    head = text.lstrip()
    return head.startswith("(set-logic") or head.startswith(
        "(declare-"
    ) or head.startswith("(assert")


def _cmd_check(args) -> int:
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file) as fp:
            text = fp.read()
    smtlib_mode = _looks_like_smtlib(args, text)
    if smtlib_mode:
        from .logic.smtlib import parse_smtlib
        from .logic.terms import Not

        script = parse_smtlib(text)
        # SMT-LIB semantics: check-sat == invalidity of the negation.
        formula = Not(script.conjunction())
    else:
        formula = parse_formula(text)

    if args.method == "lazy":
        from .solvers.lazy import check_validity_lazy

        result = check_validity_lazy(formula, time_limit=args.timeout)
    elif args.method == "svc":
        from .solvers.svclike import check_validity_svc

        result = check_validity_svc(formula, time_limit=args.timeout)
    else:
        result = check_validity(
            formula,
            method=args.method,
            sep_thold=args.sep_thold,
            sat_time_limit=args.timeout,
            sd_ranges=args.sd_ranges,
        )
    if smtlib_mode:
        verdict = {
            result.VALID: "unsat",
            result.INVALID: "sat",
        }.get(result.status, "unknown")
        print(verdict)
    print("status: %s" % result.status)
    print(
        "time: %.3fs (encode %.3fs, search %.3fs)"
        % (
            result.stats.total_seconds,
            result.stats.encode_seconds,
            result.stats.sat_seconds,
        )
    )
    if result.status == result.INVALID and args.countermodel:
        model = result.counterexample
        if model is not None:
            print("countermodel:")
            for name, value in sorted(model.vars.items()):
                print("  %s = %d" % (name, value))
            for name, value in sorted(model.bools.items()):
                print("  %s = %s" % (name, value))
    return 0 if result.status == result.VALID else 1


def _cmd_bench(args) -> int:
    bench = benchmark_by_name(args.name, valid=not args.invalid)
    if bench is None:
        print("unknown benchmark %r; see `repro-suf suite`" % args.name)
        return 2
    if args.print_formula:
        print(pretty(bench.formula))
    result = check_validity(bench.formula, method=args.method)
    print(
        "%s: %s in %.3fs (expected valid=%s, %d DAG nodes)"
        % (
            bench.name,
            result.status,
            result.stats.total_seconds,
            bench.expected_valid,
            bench.dag_size,
        )
    )
    return 0


def _cmd_suite(_args) -> int:
    for bench in suite():
        kind = "invariant" if bench.invariant_checking else "regular"
        print(
            "%-28s %-10s %-9s %6d nodes"
            % (bench.name, bench.domain, kind, bench.dag_size)
        )
    return 0


def _cmd_experiment(args) -> int:
    timeout = args.timeout or experiments.DEFAULT_TIMEOUT
    runners = {
        "fig2": experiments.fig2.main,
        "fig3": experiments.fig3.main,
        "fig4": experiments.fig4.main,
        "fig5": experiments.fig5.main,
        "fig6": experiments.fig6.main,
        "threshold": experiments.threshold_exp.main,
        "ablation": experiments.ablation.main,
    }
    outputs = []
    if args.which == "all":
        for name, runner in runners.items():
            print("=" * 72)
            outputs.append(runner(timeout))
            print()
    else:
        outputs.append(runners[args.which](timeout))
    if args.save:
        with open(args.save, "w") as fp:
            fp.write("\n\n".join(outputs))
            fp.write("\n")
    return 0


def _cmd_analyze(args) -> int:
    from .encodings.hybrid import encode_hybrid
    from .separation.analysis import analyze_separation
    from .transform.func_elim import eliminate_applications

    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file) as fp:
            text = fp.read()
    formula = parse_formula(text)
    f_sep, info = eliminate_applications(formula)
    analysis = analyze_separation(f_sep)
    encoding = encode_hybrid(
        f_sep, sep_thold=args.sep_thold, analysis=analysis
    )
    fresh = len(info.fresh_func_vars()) + len(info.fresh_pred_vars())
    print("fresh constants from UF/UP elimination: %d" % fresh)
    print(
        "V_p: %d constant(s), V_g: %d constant(s)"
        % (len(analysis.p_vars), len(analysis.g_vars))
    )
    print("classes: %d" % len(analysis.classes))
    for vclass in analysis.classes:
        kind = []
        if vclass.has_inequality:
            kind.append("inequalities")
        if vclass.has_offset:
            kind.append("offsets")
        print(
            "  class %d: %d constant(s), SepCnt=%d, range=%d, span=%d, "
            "%s -> %s"
            % (
                vclass.index,
                len(vclass.vars),
                vclass.sep_count,
                vclass.range_size,
                vclass.max_span,
                "+".join(kind) if kind else "equalities only",
                encoding.method_of_class[vclass.index],
            )
        )
    print(
        "total SepCnt=%d (SEP_THOLD=%d)"
        % (analysis.total_sep_count(), args.sep_thold)
    )
    return 0


def _cmd_sat(args) -> int:
    from .sat.dimacs import read_dimacs
    from .sat.solver import solve_cnf

    if args.file == "-":
        cnf = read_dimacs(sys.stdin)
    else:
        with open(args.file) as fp:
            cnf = read_dimacs(fp)
    result = solve_cnf(cnf, time_limit=args.timeout)
    stats = result.stats
    print("s %s" % ("SATISFIABLE" if result.is_sat else
                    "UNSATISFIABLE" if result.is_unsat else "UNKNOWN"))
    print(
        "c decisions=%d propagations=%d conflicts=%d learned=%d "
        "restarts=%d time=%.3fs"
        % (
            stats.decisions,
            stats.propagations,
            stats.conflicts,
            stats.learned_clauses,
            stats.restarts,
            stats.time_seconds,
        )
    )
    if result.is_sat and args.model:
        lits = [
            ("%d" % v) if result.model[v] else ("-%d" % v)
            for v in sorted(result.model)
        ]
        print("v %s 0" % " ".join(lits))
    if result.is_sat:
        return 10
    if result.is_unsat:
        return 20
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz import (
        FuzzConfig,
        default_methods,
        inject_strictness_bug,
        run_campaign,
    )

    methods = None
    try:
        if args.methods is not None:
            names = [n.strip() for n in args.methods.split(",") if n.strip()]
            methods = default_methods(names=names)
        if args.self_check:
            methods = inject_strictness_bug(
                methods or default_methods(), victim="hybrid"
            )
        config = FuzzConfig(
            iterations=args.iterations,
            seed=args.seed,
            profile=args.profile,
            metamorphic=not args.no_metamorphic,
            shrink=not args.no_shrink,
            out_dir=None if args.self_check else args.out,
            methods=methods,
            max_failures=args.max_failures,
        )
        config.profile_names()  # validate the profile name up front
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    report = run_campaign(
        config, log=lambda line: print("fuzz: %s" % line)
    )
    for line in report.summary_lines():
        print(line)
    if args.self_check:
        if report.ok:
            print("self-check FAILED: injected bug was not detected")
            return 1
        print(
            "self-check passed: injected strictness bug caught and "
            "shrunk in %d iteration(s)" % report.iterations_run
        )
        return 0
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "check": _cmd_check,
        "bench": _cmd_bench,
        "suite": _cmd_suite,
        "experiment": _cmd_experiment,
        "analyze": _cmd_analyze,
        "sat": _cmd_sat,
        "fuzz": _cmd_fuzz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
