"""Command-line interface: ``repro-suf`` / ``python -m repro``.

Subcommands
-----------
``check FILE``
    Decide the validity of the SUF formula in ``FILE`` (s-expression
    syntax, see :mod:`repro.logic.parser`); ``-`` reads stdin.  Every
    registered engine is available via ``--method`` (including
    ``portfolio``, the parallel race); ``--stats`` prints the per-stage
    timing/counter telemetry.
``bench NAME``
    Generate a suite benchmark, print its statistics, and decide it.
``suite``
    List the 49-benchmark suite.
``portfolio FILE...``
    Race every engine on each formula (first decided verdict wins);
    multiple files are decided concurrently by a worker pool.
``bench-smoke``
    Run the fixed smoke benchmark subset through every registered engine
    and write per-engine timings to ``BENCH_PR4.json``, including a
    preprocessing on/off comparison (vars/clauses/sat-wall) for the
    eager engines and a cold-vs-warm result-cache comparison; exits
    nonzero if preprocessing or the cache changes any verdict.
``compete DIR...``
    Sweep directories of SMT-LIB 2 benchmarks through one or more
    engines with per-instance timeouts, check every verdict against the
    scripts' ``(set-info :status ...)`` annotations, and print an
    SMT-COMP-style scoring table (PAR-2, per-family breakdown); the
    JSON artifact lands in ``BENCH_PR9.json``.  Exits 1 on any
    verdict-vs-status mismatch.
``serve``
    Serve validity requests as line-delimited JSON over stdin/stdout
    (see ``docs/serve-protocol.md``): a worker pool with per-request
    deadlines, bounded-queue backpressure, a shared result cache, and
    graceful drain on SIGTERM.
``experiment {fig2,fig3,fig4,fig5,fig6,threshold,ablation,all}``
    Run one of the paper's experiments and print its table/figure.
``analyze FILE``
    Print the separation analysis (classes, domains, SepCnt, per-class
    method choice) for a formula — the paper's §4 steps 1–4, visible.
``sat FILE``
    Run the built-in CDCL solver on a DIMACS CNF file.
``fuzz``
    Run the differential/metamorphic fuzzing campaign over every
    decision method; discrepancies are shrunk and written to
    ``fuzz-failures/``.  Exits 0 when clean, 1 on a discrepancy
    (argparse usage errors exit 2).

All decision-procedure dispatch goes through
:mod:`repro.engine.registry`; this module never imports a solver
directly.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import experiments
from .benchgen.suite import benchmark_by_name, suite
from .core.status import Status
from .engine import registry
from .engine.contract import SolveOutcome, SolveRequest
from .logic.parser import parse_formula
from .logic.printer import pretty

from .engine.cube import DEFAULT_DEPTH as _CUBE_DEFAULT_DEPTH

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    engine_names = registry.list_engines()
    parser = argparse.ArgumentParser(
        prog="repro-suf",
        description=(
            "Hybrid SAT-based decision procedure for separation logic "
            "with uninterpreted functions (DAC 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="decide a SUF formula file")
    check.add_argument("file", help="formula file, or - for stdin")
    check.add_argument(
        "--method",
        choices=engine_names,
        default="hybrid",
    )
    check.add_argument(
        "--format",
        choices=["auto", "sexpr", "smtlib"],
        default="auto",
        help="input syntax; auto uses smtlib for .smt2 files or scripts "
        "starting with an SMT-LIB command",
    )
    check.add_argument("--sep-thold", type=int, default=700)
    check.add_argument(
        "--sd-ranges",
        choices=["uniform", "ascending"],
        default="uniform",
        help="SD domain allocation (ascending = Pnueli-et-al. ranges on "
        "equality-only classes; only affects --method sd)",
    )
    check.add_argument("--timeout", type=float, default=None)
    check.add_argument(
        "--countermodel",
        action="store_true",
        help="print a countermodel when the formula is invalid",
    )
    check.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage timing and counter telemetry",
    )
    check.add_argument(
        "--no-preprocess",
        action="store_true",
        help="skip the SatELite-style CNF simplification stage (eager "
        "methods; useful to isolate encoder/solver behaviour or to "
        "rule the preprocessor out when debugging a verdict)",
    )
    check.add_argument(
        "--cube-depth",
        type=int,
        default=None,
        metavar="N",
        help="cube-tree depth for --method cube (default %d)"
        % _CUBE_DEFAULT_DEPTH,
    )
    check.add_argument(
        "--cube-procs",
        type=int,
        default=None,
        metavar="N",
        help="cube-and-conquer worker processes for --method cube "
        "(default: one per core, capped at 4; 1 = sequential conquering)",
    )
    check.add_argument(
        "--no-share",
        action="store_true",
        help="disable learned-clause sharing between cube workers "
        "(--method cube; for ablation/debugging)",
    )

    bench = sub.add_parser("bench", help="decide one suite benchmark")
    bench.add_argument("name")
    bench.add_argument(
        "--method",
        choices=engine_names,
        default="hybrid",
    )
    bench.add_argument("--invalid", action="store_true")
    bench.add_argument("--print-formula", action="store_true")

    sub.add_parser("suite", help="list the 49-benchmark suite")

    portfolio = sub.add_parser(
        "portfolio",
        help="race engines on formulas; the first decided verdict wins",
    )
    portfolio.add_argument(
        "files", nargs="+", help="formula files, or - for stdin"
    )
    portfolio.add_argument(
        "--engines",
        default=None,
        metavar="NAMES",
        help="comma-separated member subset in priority order "
        "(default: every engine)",
    )
    portfolio.add_argument("--timeout", type=float, default=None)
    portfolio.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker-pool size when deciding multiple files",
    )
    portfolio.add_argument(
        "--sequential",
        action="store_true",
        help="run members in-process in priority order (no multiprocessing)",
    )
    portfolio.add_argument(
        "--stats",
        action="store_true",
        help="print the winner's per-stage telemetry",
    )

    smoke = sub.add_parser(
        "bench-smoke",
        help="run the fixed smoke benchmarks through every engine, "
        "write per-engine timings plus a preprocessing on/off "
        "comparison as JSON",
    )
    smoke.add_argument(
        "--out",
        default="BENCH_PR4.json",
        metavar="FILE",
        help="JSON output path (default BENCH_PR4.json)",
    )
    smoke.add_argument(
        "--incremental-out",
        default="BENCH_PR6.json",
        metavar="FILE",
        help="JSON output path for the incremental-vs-scratch section "
        "(default BENCH_PR6.json; empty string disables)",
    )
    smoke.add_argument(
        "--incremental-steps",
        type=int,
        default=None,
        metavar="N",
        help="length of the generated prefix-sharing chain",
    )
    smoke.add_argument(
        "--sat-core-out",
        default="BENCH_PR7.json",
        metavar="FILE",
        help="JSON output path for the arena-vs-legacy SAT core "
        "comparison (default BENCH_PR7.json; empty string disables)",
    )
    smoke.add_argument(
        "--families",
        default="small",
        metavar="NAMES",
        help="comma-separated sat-core family subset: small and/or "
        "large (default small)",
    )
    smoke.add_argument(
        "--cube-out",
        default="BENCH_PR8.json",
        metavar="FILE",
        help="JSON output path for the cube-vs-sequential comparison "
        "(default BENCH_PR8.json; empty string disables)",
    )
    smoke.add_argument(
        "--cube-families",
        default="small",
        metavar="NAMES",
        help="comma-separated cube family subset: small and/or hard "
        "(default small)",
    )
    smoke.add_argument(
        "--cube-procs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the cube-and-conquer bench arm "
        "(default 4)",
    )
    smoke.add_argument("--timeout", type=float, default=None)
    smoke.add_argument(
        "--engines",
        default=None,
        metavar="NAMES",
        help="comma-separated engine subset (default: every engine)",
    )

    compete = sub.add_parser(
        "compete",
        help="sweep SMT-LIB benchmark directories with per-instance "
        "timeouts and score verdicts against :status annotations "
        "(see docs/smtlib.md)",
    )
    compete.add_argument(
        "roots",
        nargs="*",
        help="benchmark directories (or individual .smt2 files)",
    )
    compete.add_argument(
        "--methods",
        default="hybrid",
        metavar="NAMES",
        help="comma-separated engine methods to sweep (default hybrid)",
    )
    compete.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-instance wall-clock budget (default 10)",
    )
    compete.add_argument(
        "--sep-thold", type=int, default=None, metavar="N",
        help="SEP_THOLD override passed to every solve",
    )
    compete.add_argument(
        "--out",
        default="BENCH_PR9.json",
        metavar="FILE",
        help="JSON scoring artifact (default BENCH_PR9.json; empty "
        "string disables)",
    )
    compete.add_argument(
        "--emit-benchgen",
        default=None,
        metavar="DIR",
        help="emit the self-hosted :status-annotated benchgen corpus "
        "into DIR and include it in the sweep",
    )
    compete.add_argument(
        "--fail-on-error",
        action="store_true",
        help="also exit 1 when any instance errors (parse failure, "
        "out-of-fragment construct, engine crash) — the self-hosted "
        "smoke corpus runs with this on",
    )

    serve = sub.add_parser(
        "serve",
        help="serve line-delimited JSON validity requests over "
        "stdin/stdout (see docs/serve-protocol.md)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker threads (default 2)"
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=16,
        help="bounded request queue; further requests are rejected with "
        "an 'overloaded' error (default 16)",
    )
    serve.add_argument(
        "--engine",
        default="hybrid",
        help="default engine (a name, or comma-separated portfolio "
        "members); per-request 'engine' overrides it",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds (per-request "
        "'timeout' overrides it)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared result cache",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="enable the on-disk cache tier at DIR "
        "(conventionally results/cache)",
    )
    serve.add_argument(
        "--no-fork",
        action="store_true",
        help="solve in-process instead of forking a raceable child per "
        "request (deadlines then only observed between engines)",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument(
        "which",
        choices=[
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "threshold",
            "ablation",
            "all",
        ],
    )
    exp.add_argument("--timeout", type=float, default=None)
    exp.add_argument(
        "--save",
        metavar="FILE",
        default=None,
        help="also write the experiment's output to FILE",
    )

    analyze = sub.add_parser(
        "analyze",
        help="separation analysis of a formula file, or the repo's "
        "static-analysis lint suite when given directories / .py files "
        "(see docs/static-analysis.md)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="a formula file (or -) for separation analysis; "
        "directories or .py files for the lint suite",
    )
    analyze.add_argument("--sep-thold", type=int, default=700)
    analyze.add_argument(
        "--format",
        choices=["human", "json", "sarif"],
        default="human",
        help="lint report format (lint mode only); sarif emits a "
        "SARIF 2.1.0 log for CI code-scanning upload",
    )
    analyze.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="comma-separated rule subset, e.g. RC101,RE304 "
        "(lint mode only)",
    )
    analyze.add_argument(
        "--list-rules",
        action="store_true",
        help="print the lint rule catalog and exit",
    )
    analyze.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="compare findings against a committed baseline: only "
        "findings not in FILE fail the run (lint mode only)",
    )
    analyze.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into --baseline FILE and "
        "exit 0 (lint mode only)",
    )
    analyze.add_argument(
        "--prune",
        action="store_true",
        help="with --baseline: also report stale baseline entries the "
        "tree no longer produces, and fail if any exist",
    )
    analyze.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="PATH",
        help="skip files under PATH (repeatable; lint mode only) — "
        "used to keep seeded rule fixtures out of tree-wide runs",
    )
    analyze.add_argument(
        "--list-suppressions",
        action="store_true",
        help="print every suppression comment in the checked files "
        "with its justification text, then exit (lint mode only)",
    )
    analyze.add_argument(
        "--check-suppressions",
        action="store_true",
        help="fail (RS901) on any suppression missing the '-- why' "
        "justification clause (lint mode only)",
    )

    sat = sub.add_parser("sat", help="solve a DIMACS CNF file")
    sat.add_argument("file", help="DIMACS file, or - for stdin")
    sat.add_argument("--timeout", type=float, default=None)
    sat.add_argument(
        "--model", action="store_true", help="print the satisfying model"
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential + metamorphic fuzzing across all methods",
    )
    fuzz.add_argument(
        "--iterations", type=int, default=500, help="samples to run"
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (echoed in output)"
    )
    fuzz.add_argument(
        "--profile",
        default="all",
        help="generator profile: equality, offset, uf, mixed, or all "
        "(rotate through every profile)",
    )
    fuzz.add_argument(
        "--out",
        default="fuzz-failures",
        metavar="DIR",
        help="directory for shrunk reproducers (.sexpr + .smt2)",
    )
    fuzz.add_argument(
        "--methods",
        default=None,
        metavar="NAMES",
        help="comma-separated subset of brute,sd,eij,hybrid,static,"
        "sd+preprocess,hybrid+preprocess,lazy,svc,cached,incremental,"
        "cube,smtlib-roundtrip",
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="mutate the .smt2 instances under DIR (metamorphic "
        "transform chains) instead of generating random samples",
    )
    fuzz.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic transform checks",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failures without delta-debugging them",
    )
    fuzz.add_argument(
        "--max-failures", type=int, default=5, help="stop after N failures"
    )
    fuzz.add_argument(
        "--self-check",
        action="store_true",
        help="inject a strictness bug into the hybrid method and verify "
        "the harness catches it (exits 0 iff the bug is caught)",
    )
    return parser


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as fp:
        return fp.read()


def _looks_like_smtlib(path: str, text: str, fmt: str = "auto") -> bool:
    if fmt != "auto":
        return fmt == "smtlib"
    if path.endswith(".smt2"):
        return True
    head = text.lstrip()
    return head.startswith("(set-logic") or head.startswith(
        "(declare-"
    ) or head.startswith("(assert")


def _read_formula(path: str, fmt: str = "auto"):
    """Parse a formula file; returns (formula, smtlib_mode)."""
    text = _read_text(path)
    if _looks_like_smtlib(path, text, fmt):
        from .logic.smtlib import parse_smtlib
        from .logic.terms import Not

        script = parse_smtlib(text)
        # SMT-LIB semantics: check-sat == invalidity of the negation.
        return Not(script.conjunction()), True
    return parse_formula(text), False


def _parse_engine_list(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    names = [n.strip() for n in text.split(",") if n.strip()]
    known = registry.list_engines()
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ValueError(
            "unknown engine(s) %s; registered: %s"
            % (", ".join(unknown), ", ".join(known))
        )
    return names


def _print_stats(outcome: SolveOutcome) -> None:
    label = outcome.winner or outcome.engine
    print("stages (%s):" % label)
    for record in outcome.stages:
        print("  %s" % record.describe())


def _cmd_check(args) -> int:
    from .logic.parser import ParseError
    from .logic.smtlib import SmtLibError

    try:
        formula, smtlib_mode = _read_formula(args.file, args.format)
    except (ParseError, SmtLibError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    engine = registry.get(args.method)
    options = {}
    if args.cube_depth is not None:
        options["cube_depth"] = args.cube_depth
    if args.cube_procs is not None:
        options["cube_procs"] = args.cube_procs
    if args.no_share:
        options["cube_share"] = False
    result = engine.solve(
        SolveRequest(
            formula=formula,
            time_limit=args.timeout,
            sep_thold=args.sep_thold,
            sd_ranges=args.sd_ranges,
            preprocess=not args.no_preprocess,
            options=options,
        )
    )
    if smtlib_mode:
        verdict = {
            Status.VALID: "unsat",
            Status.INVALID: "sat",
        }.get(result.status, "unknown")
        print(verdict)
    print("status: %s" % result.status)
    print(
        "time: %.3fs (encode %.3fs, search %.3fs)"
        % (
            result.stats.total_seconds,
            result.stats.encode_seconds,
            result.stats.sat_seconds,
        )
    )
    if result.winner is not None:
        print("winner: %s" % result.winner)
    if args.stats:
        _print_stats(result)
    if result.status == Status.INVALID and args.countermodel:
        model = result.counterexample
        if model is not None:
            print("countermodel:")
            for name, value in sorted(model.vars.items()):
                print("  %s = %d" % (name, value))
            for name, value in sorted(model.bools.items()):
                print("  %s = %s" % (name, value))
    return 0 if result.status == Status.VALID else 1


def _cmd_bench(args) -> int:
    bench = benchmark_by_name(args.name, valid=not args.invalid)
    if bench is None:
        print("unknown benchmark %r; see `repro-suf suite`" % args.name)
        return 2
    if args.print_formula:
        print(pretty(bench.formula))
    result = registry.get(args.method).solve(
        SolveRequest(formula=bench.formula)
    )
    won = " [winner: %s]" % result.winner if result.winner else ""
    print(
        "%s: %s in %.3fs (expected valid=%s, %d DAG nodes)%s"
        % (
            bench.name,
            result.status,
            result.stats.total_seconds,
            bench.expected_valid,
            bench.dag_size,
            won,
        )
    )
    return 0


def _cmd_suite(_args) -> int:
    for bench in suite():
        kind = "invariant" if bench.invariant_checking else "regular"
        print(
            "%-28s %-10s %-9s %6d nodes"
            % (bench.name, bench.domain, kind, bench.dag_size)
        )
    return 0


def _cmd_portfolio(args) -> int:
    from .engine.portfolio import solve_batch, solve_portfolio

    try:
        engines = _parse_engine_list(args.engines)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if engines is None:
        from .engine.portfolio import default_members

        engines = default_members()

    formulas = [_read_formula(path, "auto")[0] for path in args.files]
    if len(formulas) == 1:
        outcomes = [
            solve_portfolio(
                SolveRequest(formula=formulas[0], time_limit=args.timeout),
                engines=engines,
                parallel=not args.sequential,
            )
        ]
    else:
        outcomes = solve_batch(
            formulas,
            engines=engines,
            jobs=args.jobs,
            time_limit=args.timeout,
        )
    exit_code = 0
    for path, outcome in zip(args.files, outcomes):
        print(
            "%s: %s winner=%s time=%.3fs"
            % (
                path,
                outcome.status,
                outcome.winner or "-",
                outcome.wall_seconds,
            )
        )
        if args.stats:
            _print_stats(outcome)
        if outcome.status != Status.VALID:
            exit_code = 1
    return exit_code


def _cmd_bench_smoke(args) -> int:
    from .engine.bench_smoke import (
        CUBE_FAMILIES,
        DEFAULT_CUBE_PROCS,
        DEFAULT_TIMEOUT,
        PREFIX_FAMILY_STEPS,
        SAT_CORE_FAMILIES,
        format_table,
        run_bench_smoke,
        write_cube_report,
        write_incremental_report,
        write_report,
        write_sat_core_report,
    )

    try:
        engines = _parse_engine_list(args.engines)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    unknown = [f for f in families if f not in SAT_CORE_FAMILIES]
    if unknown:
        print(
            "error: unknown sat-core families %s (known: %s)"
            % (", ".join(unknown), ", ".join(sorted(SAT_CORE_FAMILIES))),
            file=sys.stderr,
        )
        return 2
    cube_families = [
        f.strip() for f in args.cube_families.split(",") if f.strip()
    ]
    unknown = [f for f in cube_families if f not in CUBE_FAMILIES]
    if unknown:
        print(
            "error: unknown cube families %s (known: %s)"
            % (", ".join(unknown), ", ".join(sorted(CUBE_FAMILIES))),
            file=sys.stderr,
        )
        return 2
    report = run_bench_smoke(
        timeout=args.timeout or DEFAULT_TIMEOUT,
        engines=engines,
        incremental_steps=args.incremental_steps or PREFIX_FAMILY_STEPS,
        sat_core_families=families or None,
        cube_families=cube_families or None,
        cube_procs=args.cube_procs or DEFAULT_CUBE_PROCS,
    )
    print(format_table(report))
    if args.out:
        write_report(report, args.out)
        print("wrote %s" % args.out)
    if args.incremental_out:
        write_incremental_report(report, args.incremental_out)
        print("wrote %s" % args.incremental_out)
    if args.sat_core_out:
        write_sat_core_report(report, args.sat_core_out)
        print("wrote %s" % args.sat_core_out)
    if args.cube_out:
        write_cube_report(report, args.cube_out)
        print("wrote %s" % args.cube_out)
    if not report["meta"]["preprocess_verdicts_match"]:
        print(
            "error: preprocessing changed a verdict on the smoke suite "
            "(see the preprocess section of the report)",
            file=sys.stderr,
        )
        return 1
    if not report["meta"]["cache_verdicts_match"]:
        print(
            "error: the result cache changed a verdict on the smoke suite "
            "(see the cache section of the report)",
            file=sys.stderr,
        )
        return 1
    if not report["meta"]["incremental_verdicts_match"]:
        print(
            "error: incremental and scratch solving disagreed on the "
            "prefix-sharing family (see the incremental section of the "
            "report)",
            file=sys.stderr,
        )
        return 1
    if not report["meta"]["sat_core_verdicts_match"]:
        print(
            "error: the arena solver and the legacy reference disagreed "
            "on a sat-core instance (see the sat_core section of the "
            "report)",
            file=sys.stderr,
        )
        return 1
    if not report["meta"]["cube_verdicts_match"]:
        print(
            "error: cube-and-conquer and the sequential solver disagreed "
            "on a cube instance (see the cube_vs_sequential section of "
            "the report)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_compete(args) -> int:
    from .engine.compete import (
        DEFAULT_TIMEOUT as COMPETE_DEFAULT_TIMEOUT,
        CompeteConfig,
        format_table,
        run_compete,
        write_report,
    )

    try:
        methods = _parse_engine_list(args.methods) or []
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    roots = list(args.roots)
    if args.emit_benchgen:
        from .benchgen.smtlib_corpus import emit_corpus

        written = emit_corpus(args.emit_benchgen)
        print(
            "emitted %d benchgen instance(s) into %s"
            % (len(written), args.emit_benchgen)
        )
        roots.append(args.emit_benchgen)
    if not roots:
        print(
            "compete: provide at least one benchmark directory "
            "(or --emit-benchgen DIR)",
            file=sys.stderr,
        )
        return 2
    try:
        report = run_compete(
            CompeteConfig(
                roots=roots,
                methods=methods,
                timeout=args.timeout or COMPETE_DEFAULT_TIMEOUT,
                sep_thold=args.sep_thold,
                fail_on_error=args.fail_on_error,
            )
        )
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(format_table(report))
    if args.out:
        write_report(report, args.out)
        print("wrote %s" % args.out)
    if report["mismatches_total"]:
        print(
            "error: %d verdict(s) contradict the :status annotations"
            % report["mismatches_total"],
            file=sys.stderr,
        )
        return 1
    if args.fail_on_error and report["errors_total"]:
        print(
            "error: %d instance(s) errored (--fail-on-error)"
            % report["errors_total"],
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args) -> int:
    from .service.server import ServeConfig, run_server

    try:
        _parse_engine_list(args.engine)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    config = ServeConfig(
        workers=args.workers,
        queue_size=args.queue_size,
        engine=args.engine,
        default_timeout=args.timeout,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        fork=not args.no_fork,
    )
    return run_server(config)


def _cmd_experiment(args) -> int:
    timeout = args.timeout or experiments.DEFAULT_TIMEOUT
    runners = {
        "fig2": experiments.fig2.main,
        "fig3": experiments.fig3.main,
        "fig4": experiments.fig4.main,
        "fig5": experiments.fig5.main,
        "fig6": experiments.fig6.main,
        "threshold": experiments.threshold_exp.main,
        "ablation": experiments.ablation.main,
    }
    outputs = []
    if args.which == "all":
        for name, runner in runners.items():
            print("=" * 72)
            outputs.append(runner(timeout))
            print()
    else:
        outputs.append(runners[args.which](timeout))
    if args.save:
        with open(args.save, "w") as fp:
            fp.write("\n\n".join(outputs))
            fp.write("\n")
    return 0


def _cmd_analyze(args) -> int:
    """Dispatch: lint mode for directories/.py files, else separation
    analysis of a formula file (the historical behaviour)."""
    import os

    if args.list_rules:
        from .analysis import all_rules, render_rule_catalog

        print(render_rule_catalog(all_rules()))
        return 0
    if not args.paths:
        print(
            "analyze: provide a formula file (or -) or directories/.py "
            "files to lint",
            file=sys.stderr,
        )
        return 2
    lint_mode = all(
        path.endswith(".py") or os.path.isdir(path) for path in args.paths
    )
    if lint_mode:
        return _cmd_analyze_lint(args)
    return _cmd_analyze_formula(args)


def _cmd_analyze_lint(args) -> int:
    import os

    from .analysis import (
        Finding,
        ModuleContext,
        Project,
        all_rules,
        analyze_project,
        diff_against_baseline,
        iter_python_files,
        load_baseline,
        render_suppressions,
        rules_by_code,
        write_baseline,
    )
    from .analysis.reporters import write_report

    rules = None
    if args.rules:
        try:
            rules = rules_by_code(args.rules.split(","))
        except KeyError as exc:
            print("analyze: %s" % exc.args[0], file=sys.stderr)
            return 2

    excludes = [os.path.normpath(e) for e in (args.exclude or [])]

    def _excluded(path: str) -> bool:
        norm = os.path.normpath(path)
        return any(
            norm == e or norm.startswith(e + os.sep) for e in excludes
        )

    try:
        files = [
            path
            for path in iter_python_files(args.paths)
            if not _excluded(path)
        ]
        modules = [ModuleContext.parse(path) for path in files]
    except (OSError, SyntaxError, ValueError) as exc:
        print("analyze: %s" % exc, file=sys.stderr)
        return 2
    project = Project(modules)

    if args.list_suppressions:
        records = [
            record
            for module in modules
            for record in module.suppression_records
        ]
        print(render_suppressions(records))
        return 0

    findings = analyze_project(project, rules)

    if args.write_baseline:
        if not args.baseline:
            print(
                "analyze: --write-baseline requires --baseline FILE",
                file=sys.stderr,
            )
            return 2
        write_baseline(args.baseline, findings)
        print(
            "baseline: wrote %d finding(s) from %d file(s) to %s"
            % (len(findings), len(files), args.baseline)
        )
        return 0

    stale = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print("analyze: baseline: %s" % exc, file=sys.stderr)
            return 2
        diff = diff_against_baseline(findings, baseline)
        findings = diff.new
        stale = diff.stale

    # Suppression debt is generated here, not as a registered rule: a
    # registered RS901 could be silenced by the very blanket
    # suppression it reports on.
    if args.check_suppressions:
        for module in modules:
            for record in module.suppression_records:
                if not record.why:
                    findings.append(
                        Finding(
                            code="RS901",
                            path=record.path,
                            line=record.line,
                            col=0,
                            message=(
                                "suppression ignore[%s] has no '-- why' "
                                "justification; explain it or remove it"
                                % record.codes_text()
                            ),
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    write_report(
        sys.stdout,
        findings,
        len(files),
        fmt=args.format,
        rules=rules if rules is not None else all_rules(),
    )
    if args.prune and stale:
        for code, path, message, count in stale:
            print(
                "stale baseline entry (%dx): %s %s: %s"
                % (count, code, path, message),
                file=sys.stderr,
            )
        print(
            "analyze: %d stale baseline entr(y/ies) — regenerate with "
            "--write-baseline" % len(stale),
            file=sys.stderr,
        )
    failed = bool(findings) or (args.prune and bool(stale))
    return 1 if failed else 0


def _cmd_analyze_formula(args) -> int:
    from .encodings.hybrid import encode_hybrid
    from .separation.analysis import analyze_separation
    from .transform.func_elim import eliminate_applications

    text = _read_text(args.paths[0])
    formula = parse_formula(text)
    f_sep, info = eliminate_applications(formula)
    analysis = analyze_separation(f_sep)
    encoding = encode_hybrid(
        f_sep, sep_thold=args.sep_thold, analysis=analysis
    )
    fresh = len(info.fresh_func_vars()) + len(info.fresh_pred_vars())
    print("fresh constants from UF/UP elimination: %d" % fresh)
    print(
        "V_p: %d constant(s), V_g: %d constant(s)"
        % (len(analysis.p_vars), len(analysis.g_vars))
    )
    print("classes: %d" % len(analysis.classes))
    for vclass in analysis.classes:
        kind = []
        if vclass.has_inequality:
            kind.append("inequalities")
        if vclass.has_offset:
            kind.append("offsets")
        print(
            "  class %d: %d constant(s), SepCnt=%d, range=%d, span=%d, "
            "%s -> %s"
            % (
                vclass.index,
                len(vclass.vars),
                vclass.sep_count,
                vclass.range_size,
                vclass.max_span,
                "+".join(kind) if kind else "equalities only",
                encoding.method_of_class[vclass.index],
            )
        )
    print(
        "total SepCnt=%d (SEP_THOLD=%d)"
        % (analysis.total_sep_count(), args.sep_thold)
    )
    return 0


def _cmd_sat(args) -> int:
    from .sat.dimacs import read_dimacs
    from .sat.solver import solve_cnf

    if args.file == "-":
        cnf = read_dimacs(sys.stdin)
    else:
        with open(args.file) as fp:
            cnf = read_dimacs(fp)
    result = solve_cnf(cnf, time_limit=args.timeout)
    stats = result.stats
    print("s %s" % ("SATISFIABLE" if result.is_sat else
                    "UNSATISFIABLE" if result.is_unsat else "UNKNOWN"))
    print(
        "c decisions=%d propagations=%d conflicts=%d learned=%d "
        "restarts=%d time=%.3fs"
        % (
            stats.decisions,
            stats.propagations,
            stats.conflicts,
            stats.learned_clauses,
            stats.restarts,
            stats.time_seconds,
        )
    )
    if result.is_sat and args.model:
        lits = [
            ("%d" % v) if result.model[v] else ("-%d" % v)
            for v in sorted(result.model)
        ]
        print("v %s 0" % " ".join(lits))
    if result.is_sat:
        return 10
    if result.is_unsat:
        return 20
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz import (
        FuzzConfig,
        default_methods,
        inject_strictness_bug,
        run_campaign,
    )

    methods = None
    try:
        if args.methods is not None:
            names = [n.strip() for n in args.methods.split(",") if n.strip()]
            methods = default_methods(names=names)
        if args.self_check:
            methods = inject_strictness_bug(
                methods or default_methods(), victim="hybrid"
            )
        if args.corpus is not None and not os.path.isdir(args.corpus):
            raise ValueError(
                "corpus directory %r does not exist" % args.corpus
            )
        config = FuzzConfig(
            iterations=args.iterations,
            seed=args.seed,
            profile=args.profile,
            metamorphic=not args.no_metamorphic,
            shrink=not args.no_shrink,
            out_dir=None if args.self_check else args.out,
            methods=methods,
            max_failures=args.max_failures,
            corpus_dir=args.corpus,
        )
        config.profile_names()  # validate the profile name up front
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    try:
        report = run_campaign(
            config, log=lambda line: print("fuzz: %s" % line)
        )
    except ValueError as exc:  # e.g. a corpus with no parseable instance
        print("error: %s" % exc, file=sys.stderr)
        return 2
    for line in report.summary_lines():
        print(line)
    if args.self_check:
        if report.ok:
            print("self-check FAILED: injected bug was not detected")
            return 1
        print(
            "self-check passed: injected strictness bug caught and "
            "shrunk in %d iteration(s)" % report.iterations_run
        )
        return 0
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "check": _cmd_check,
        "bench": _cmd_bench,
        "suite": _cmd_suite,
        "portfolio": _cmd_portfolio,
        "bench-smoke": _cmd_bench_smoke,
        "compete": _cmd_compete,
        "serve": _cmd_serve,
        "experiment": _cmd_experiment,
        "analyze": _cmd_analyze,
        "sat": _cmd_sat,
        "fuzz": _cmd_fuzz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
