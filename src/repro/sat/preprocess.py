"""SatELite-style CNF preprocessing (Eén & Biere, SAT 2005).

The eager pipeline ships Tseitin output straight into the CDCL solver;
this module sits between the two and shrinks the propositional problem
first:

* **top-level unit propagation** to fixpoint (satisfied clauses removed,
  falsified literals stripped, new units cascaded);
* **pure-literal elimination** (a variable occurring in one polarity only
  is satisfiable for free — its clauses are removed);
* **subsumption** over occurrence lists (a clause containing a superset
  of another clause's literals is redundant);
* **self-subsuming resolution** (``(A ∨ l)`` strengthens
  ``(A ∨ B ∨ ¬l)`` to ``(A ∨ B)``);
* **bounded variable elimination** (resolve a variable away when the
  resolvents are no more numerous than the clauses they replace).

Each simplification except (self-)subsumption changes the *model set* of
the formula, so every eliminating step pushes an entry onto a
**reconstruction stack**: the eliminated literal together with the
removed clauses that contained it.  :meth:`PreprocessResult.reconstruct`
replays the stack in reverse over a model of the simplified CNF and
returns a model of the original CNF — which is what lets the pipeline's
countermodel decode (and the fuzzer's countermodel validation) keep
working with preprocessing enabled.

Everything in here — clause db, occurrence lists, signatures, unit
queue, reconstruction stack — operates on **packed literals** (``2v`` /
``2v + 1``, see :mod:`repro.sat.cnf`): clauses come out of the input
arena packed and go into the simplified arena packed, with no signed
round-trip in between.  Negation is ``lit ^ 1`` and the variable is
``lit >> 1`` throughout.

Variable numbering is preserved: the simplified :class:`Cnf` has the same
``num_vars`` and name table as the input, eliminated variables simply no
longer occur in any clause.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .cnf import Cnf

__all__ = ["PreprocessStats", "PreprocessResult", "preprocess_cnf"]

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"

#: Skip bounded variable elimination when either polarity of a variable
#: occurs in more clauses than this (quadratic resolvent blow-up guard).
DEFAULT_BVE_OCC_LIMIT = 10
#: Never resolve on clauses longer than this (long resolvents are rarely
#: worth the occurrence-list churn).
DEFAULT_BVE_CLAUSE_LIMIT = 16
#: Outer simplification rounds (subsume → pure → eliminate → propagate).
DEFAULT_MAX_ROUNDS = 3


@dataclass
class PreprocessStats:
    """Size deltas and per-rule counters for one preprocessing run.

    Attached to :class:`~repro.core.result.DecisionStats` (field
    ``preprocess``) and mirrored into the ``preprocess`` stage's
    :class:`~repro.core.result.StageRecord` counters.
    """

    vars_before: int = 0
    clauses_before: int = 0
    literals_before: int = 0
    vars_after: int = 0
    clauses_after: int = 0
    literals_after: int = 0
    units_fixed: int = 0
    pure_literals: int = 0
    clauses_subsumed: int = 0
    literals_strengthened: int = 0
    vars_eliminated: int = 0
    resolvents_added: int = 0
    rounds: int = 0
    seconds: float = 0.0
    status: str = UNKNOWN


class PreprocessResult:
    """Simplified CNF + the stack that undoes the simplification.

    ``status`` is ``UNSAT`` when preprocessing itself derived the empty
    clause (the simplified CNF then contains ``[]`` so a solver agrees),
    ``SAT`` when every clause was eliminated, ``UNKNOWN`` otherwise.
    """

    def __init__(
        self,
        original: Cnf,
        simplified: Cnf,
        stats: PreprocessStats,
        stack: List[Tuple[int, List[List[int]]]],
    ) -> None:
        self.original = original
        self.simplified = simplified
        self.stats = stats
        #: Reconstruction entries ``(packed_lit, packed_clauses)``.
        self.stack = stack

    @property
    def status(self) -> str:
        return self.stats.status

    def reconstruct(self, model: Dict[int, bool]) -> Dict[int, bool]:
        """Extend a model of the simplified CNF to one of the original.

        ``model`` maps variables to booleans (the solver's vocabulary);
        the stack is replayed last-eliminated-first over it.  Each entry
        is ``(lit, clauses)`` in packed form, where ``clauses`` are the
        removed clauses that contained ``lit``; the invariant (standard
        for variable elimination) is that ``lit`` must be made true iff
        some such clause is not already satisfied by its other literals.
        """
        out = dict(model)
        for lit, clauses in reversed(self.stack):
            lit_true = False
            for clause in clauses:
                satisfied = False
                for other in clause:
                    if other == lit:
                        continue
                    value = out.get(other >> 1, False)
                    if (other & 1 == 0) == value:
                        satisfied = True
                        break
                if not satisfied:
                    lit_true = True
                    break
            out[lit >> 1] = not lit_true if lit & 1 else lit_true
        return out


class _Preprocessor:
    """One-shot occurrence-list simplifier over a clause database."""

    def __init__(
        self,
        cnf: Cnf,
        bve_occ_limit: int = DEFAULT_BVE_OCC_LIMIT,
        bve_clause_limit: int = DEFAULT_BVE_CLAUSE_LIMIT,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> None:
        self.cnf = cnf
        self.nvars = cnf.num_vars
        self.bve_occ_limit = bve_occ_limit
        self.bve_clause_limit = bve_clause_limit
        self.max_rounds = max_rounds
        self.stats = PreprocessStats(
            vars_before=cnf.num_vars,
            clauses_before=len(cnf),
            literals_before=cnf.literal_count,
        )
        # clause db (packed lits): None = deleted; occ maps packed
        # literal -> live clause ids
        self.clauses: List[Optional[List[int]]] = []
        self.sigs: List[int] = []
        self.occ: Dict[int, Set[int]] = {}
        self.assignment: Dict[int, bool] = {}
        self.units: deque = deque()
        self.stack: List[Tuple[int, List[List[int]]]] = []
        self.contradiction = False

    # -- clause db plumbing -------------------------------------------------

    @staticmethod
    def _sig(clause: List[int]) -> int:
        sig = 0
        for lit in clause:
            sig |= 1 << ((lit >> 1) & 63)
        return sig

    def _add_clause(self, clause: List[int]) -> None:
        """Insert an already-deduplicated, tautology-free clause."""
        if not clause:
            self.contradiction = True
            return
        if len(clause) == 1:
            self._enqueue(clause[0])
            return
        ci = len(self.clauses)
        self.clauses.append(clause)
        self.sigs.append(self._sig(clause))
        for lit in clause:
            self.occ.setdefault(lit, set()).add(ci)

    def _remove_clause(self, ci: int) -> None:
        clause = self.clauses[ci]
        if clause is None:
            return
        for lit in clause:
            occ = self.occ.get(lit)
            if occ is not None:
                occ.discard(ci)
        self.clauses[ci] = None

    def _strengthen(self, ci: int, lit: int) -> None:
        """Remove ``lit`` from clause ``ci`` (it is falsified or resolved
        away); cascades into the unit queue when one literal remains."""
        clause = self.clauses[ci]
        if clause is None:
            return
        clause.remove(lit)
        occ = self.occ.get(lit)
        if occ is not None:
            occ.discard(ci)
        if not clause:
            self.contradiction = True
            return
        if len(clause) == 1:
            unit = clause[0]
            self._remove_clause(ci)
            self._enqueue(unit)
            return
        self.sigs[ci] = self._sig(clause)

    # -- unit propagation ---------------------------------------------------

    def _enqueue(self, lit: int) -> None:
        var = lit >> 1
        want = not (lit & 1)
        current = self.assignment.get(var)
        if current is None:
            self.assignment[var] = want
            self.stack.append((lit, [[lit]]))
            self.stats.units_fixed += 1
            self.units.append(lit)
        elif current != want:
            self.contradiction = True

    def _propagate(self) -> None:
        while self.units and not self.contradiction:
            lit = self.units.popleft()
            for ci in list(self.occ.get(lit, ())):
                self._remove_clause(ci)
            neg = lit ^ 1
            for ci in list(self.occ.get(neg, ())):
                self._strengthen(ci, neg)

    # -- pure literals ------------------------------------------------------

    def _pure_pass(self) -> bool:
        changed = False
        for var in range(1, self.nvars + 1):
            # Reconstruction replays the stack in reverse, so an entry
            # pushed here must never mention a variable whose unit entry
            # is already on the stack: drain pending units first so
            # their occurrences are gone from the live clause db.
            if self.units:
                self._propagate()
            if self.contradiction:
                break
            if var in self.assignment:
                continue
            pos = self.occ.get(var << 1)
            neg = self.occ.get((var << 1) | 1)
            if pos and not neg:
                lit = var << 1
            elif neg and not pos:
                lit = (var << 1) | 1
            else:
                continue
            removed = [list(self.clauses[ci]) for ci in self.occ[lit]]
            self.stack.append((lit, removed))
            for ci in list(self.occ[lit]):
                self._remove_clause(ci)
            self.stats.pure_literals += 1
            changed = True
        return changed

    # -- subsumption and self-subsuming resolution --------------------------

    def _subsumption_pass(self) -> bool:
        changed = False
        order = sorted(
            (ci for ci, c in enumerate(self.clauses) if c is not None),
            key=lambda ci: len(self.clauses[ci]),
        )
        for ci in order:
            if self.clauses[ci] is None:
                continue
            if self._backward_subsume(ci):
                changed = True
            if self.contradiction:
                break
        return changed

    def _backward_subsume(self, ci: int) -> bool:
        """Remove or strengthen every clause subsumed by clause ``ci``."""
        clause = self.clauses[ci]
        sig = self.sigs[ci]
        length = len(clause)
        # Scan candidates through the least-occurring literal; a clause
        # subsumed (even after one flip) must contain every literal of
        # ``clause`` except possibly one flipped — in particular ``best``
        # or ``best ^ 1``.
        best = min(
            clause,
            key=lambda l: len(self.occ.get(l, ()))
            + len(self.occ.get(l ^ 1, ())),
        )
        candidates = set(self.occ.get(best, ()))
        candidates |= self.occ.get(best ^ 1, set())
        changed = False
        for cj in list(candidates):
            if cj == ci:
                continue
            other = self.clauses[cj]
            if other is None or len(other) < length:
                continue
            if sig & ~self.sigs[cj]:
                continue
            flipped = self._subsumes(clause, other)
            if flipped is None:
                continue
            if flipped == 0:
                self._remove_clause(cj)
                self.stats.clauses_subsumed += 1
            else:
                self._strengthen(cj, flipped)
                self.stats.literals_strengthened += 1
            changed = True
            if self.contradiction:
                break
        return changed

    @staticmethod
    def _subsumes(small: List[int], big: List[int]) -> Optional[int]:
        """``0`` if ``small ⊆ big``; the literal of ``big`` to strike if
        exactly one literal matches flipped (self-subsumption); ``None``
        otherwise.  (Packed literals are never 0, so 0 is a safe
        "plain subsumption" sentinel.)"""
        big_set = set(big)
        flipped = 0
        for lit in small:
            if lit in big_set:
                continue
            if flipped == 0 and lit ^ 1 in big_set:
                flipped = lit ^ 1
                continue
            return None
        return flipped

    # -- bounded variable elimination ---------------------------------------

    def _bve_pass(self) -> bool:
        changed = False
        for var in range(1, self.nvars + 1):
            # Unit resolvents from a previous elimination enqueue but do
            # not propagate; drain them before snapshotting clauses into
            # the reconstruction stack (see _pure_pass).
            if self.units:
                self._propagate()
            if self.contradiction:
                break
            if var in self.assignment:
                continue
            pos = self.occ.get(var << 1)
            neg = self.occ.get((var << 1) | 1)
            if not pos or not neg:
                continue  # absent or pure; not a resolution candidate
            if (
                len(pos) > self.bve_occ_limit
                or len(neg) > self.bve_occ_limit
            ):
                continue
            if self._eliminate(var, sorted(pos), sorted(neg)):
                changed = True
        return changed

    def _eliminate(
        self, var: int, pos: List[int], neg: List[int]
    ) -> bool:
        pos_cls = [self.clauses[ci] for ci in pos]
        neg_cls = [self.clauses[ci] for ci in neg]
        limit = self.bve_clause_limit
        if any(len(c) > limit for c in pos_cls) or any(
            len(c) > limit for c in neg_cls
        ):
            return False
        budget = len(pos) + len(neg)
        plit = var << 1
        resolvents: List[List[int]] = []
        for p in pos_cls:
            pset = set(p)
            for q in neg_cls:
                resolvent = self._resolve(p, pset, q, plit)
                if resolvent is None:
                    continue
                resolvents.append(resolvent)
                if len(resolvents) > budget:
                    return False
        self.stack.append((plit, [list(c) for c in pos_cls]))
        for ci in pos:
            self._remove_clause(ci)
        for ci in neg:
            self._remove_clause(ci)
        for resolvent in resolvents:
            self._add_clause(resolvent)
        self.stats.vars_eliminated += 1
        self.stats.resolvents_added += len(resolvents)
        return True

    @staticmethod
    def _resolve(
        p: List[int], pset: Set[int], q: List[int], plit: int
    ) -> Optional[List[int]]:
        out = [lit for lit in p if lit != plit]
        nlit = plit | 1
        for lit in q:
            if lit == nlit:
                continue
            if lit ^ 1 in pset:
                return None  # tautological resolvent
            if lit not in pset:
                out.append(lit)
        return out

    # -- driver -------------------------------------------------------------

    def run(self) -> PreprocessResult:
        start = time.perf_counter()
        for lits in self.cnf.iter_packed():
            seen: Set[int] = set()
            deduped: List[int] = []
            tautology = False
            for lit in lits:
                if lit ^ 1 in seen:
                    tautology = True
                    break
                if lit not in seen:
                    seen.add(lit)
                    deduped.append(lit)
            if tautology:
                continue
            self._add_clause(deduped)
            if self.contradiction:
                break
        self._propagate()

        rounds = 0
        while not self.contradiction and rounds < self.max_rounds:
            rounds += 1
            changed = self._subsumption_pass()
            self._propagate()
            if not self.contradiction:
                changed |= self._pure_pass()
            if not self.contradiction:
                changed |= self._bve_pass()
            self._propagate()
            if not changed:
                break
        self.stats.rounds = rounds
        self.stats.seconds = time.perf_counter() - start
        return self._build_result()

    def _build_result(self) -> PreprocessResult:
        simplified = Cnf()
        simplified.num_vars = self.cnf.num_vars
        simplified.names = dict(self.cnf.names)
        simplified._by_name = dict(self.cnf._by_name)
        if self.contradiction:
            simplified.add_packed_clause([])
            self.stats.status = UNSAT
            live: List[List[int]] = []
        else:
            live = [c for c in self.clauses if c is not None]
            simplified.add_packed_clauses(live)
            self.stats.status = SAT if not live else UNKNOWN
        self.stats.clauses_after = sum(1 for c in live if c)
        self.stats.literals_after = sum(len(c) for c in live)
        occurring: Set[int] = set()
        for clause in live:
            for lit in clause:
                occurring.add(lit >> 1)
        self.stats.vars_after = len(occurring)
        return PreprocessResult(
            self.cnf, simplified, self.stats, self.stack
        )


def preprocess_cnf(
    cnf: Cnf,
    bve_occ_limit: int = DEFAULT_BVE_OCC_LIMIT,
    bve_clause_limit: int = DEFAULT_BVE_CLAUSE_LIMIT,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> PreprocessResult:
    """Simplify ``cnf``; the input is not mutated.

    Returns a :class:`PreprocessResult` whose ``simplified`` CNF is
    equisatisfiable with the input and whose :meth:`~PreprocessResult.
    reconstruct` maps any model of the simplified CNF back to a model of
    the input.
    """
    return _Preprocessor(
        cnf,
        bve_occ_limit=bve_occ_limit,
        bve_clause_limit=bve_clause_limit,
        max_rounds=max_rounds,
    ).run()
