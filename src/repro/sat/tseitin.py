"""Tseitin transformation: propositional :class:`Formula` DAG to CNF.

The encoders in :mod:`repro.encodings` output *propositional* formulas —
``Formula`` objects whose only atoms are :class:`BoolVar` and
:class:`BoolConst`.  This module flattens such a DAG to CNF, introducing one
definition variable per internal connective node.  Sharing in the DAG is
preserved: each distinct node is defined exactly once, which is what keeps
the CNF size linear in DAG size (the property the paper's size analysis
relies on).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    FALSE,
    Formula,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    TRUE,
)
from ..logic.traversal import postorder
from .cnf import Cnf

__all__ = ["tseitin", "to_cnf"]


def tseitin(
    formula: Formula, cnf: Cnf = None, lits: Dict[Node, int] = None
) -> Tuple[Cnf, int]:
    """Encode ``formula``; returns ``(cnf, root_literal)``.

    The caller asserts the root by adding ``[root_literal]`` as a unit
    clause (:func:`to_cnf` does exactly that).  Passing an existing ``cnf``
    allows several formulas to share one variable space, and passing the
    same ``lits`` memo across calls keeps shared sub-DAGs defined once.
    """
    if cnf is None:
        cnf = Cnf()
    if lits is None:
        lits = {}

    # TRUE/FALSE get a dedicated always-true variable so that constant
    # sub-formulas need no special-casing in parents.
    const_var = None

    def const_lit(value: bool) -> int:
        nonlocal const_var
        if const_var is None:
            const_var = cnf.new_var(("tseitin", "const_true"))
            cnf.add_clause([const_var])
        return const_var if value else -const_var

    for node in postorder(formula):
        if node in lits:
            continue
        if isinstance(node, BoolConst):
            lits[node] = const_lit(node.value)
        elif isinstance(node, BoolVar):
            lits[node] = cnf.var_for(node)
        elif isinstance(node, Not):
            lits[node] = -lits[node.arg]
        elif isinstance(node, And):
            out = cnf.new_var()
            kids = [lits[a] for a in node.args]
            for k in kids:
                cnf.add_clause([-out, k])
            cnf.add_clause([out] + [-k for k in kids])
            lits[node] = out
        elif isinstance(node, Or):
            out = cnf.new_var()
            kids = [lits[a] for a in node.args]
            for k in kids:
                cnf.add_clause([out, -k])
            cnf.add_clause([-out] + kids)
            lits[node] = out
        elif isinstance(node, Implies):
            out = cnf.new_var()
            a, b = lits[node.lhs], lits[node.rhs]
            cnf.add_clause([-out, -a, b])
            cnf.add_clause([out, a])
            cnf.add_clause([out, -b])
            lits[node] = out
        elif isinstance(node, Iff):
            out = cnf.new_var()
            a, b = lits[node.lhs], lits[node.rhs]
            cnf.add_clause([-out, -a, b])
            cnf.add_clause([-out, a, -b])
            cnf.add_clause([out, a, b])
            cnf.add_clause([out, -a, -b])
            lits[node] = out
        else:
            raise TypeError(
                "non-propositional node reached Tseitin: %r" % (type(node),)
            )
    return cnf, lits[formula]


def to_cnf(formula: Formula) -> Cnf:
    """Encode ``formula`` and assert it, returning a self-contained CNF.

    Top-level conjunctions are asserted conjunct by conjunct, and asserted
    disjunctions of plain literals become clauses directly — no definition
    variables.  This matters a lot for the encoders' output shape
    ``F_trans ∧ ¬F_bvar``, where ``F_trans`` is a large conjunction of
    literal clauses (transitivity constraints).
    """
    cnf = Cnf()
    if formula is TRUE:
        return cnf
    if formula is FALSE:
        v = cnf.new_var(("tseitin", "const_true"))
        cnf.add_clause([v])
        cnf.add_clause([-v])
        return cnf

    asserted: list = [formula]
    complex_nodes: list = []
    while asserted:
        node = asserted.pop()
        if node is TRUE:
            continue
        if node is FALSE:
            v = cnf.var_for(("tseitin", "const_false_assert"))
            cnf.add_clause([v])
            cnf.add_clause([-v])
            continue
        if isinstance(node, And):
            asserted.extend(node.args)
            continue
        lits = _literal_clause(node, cnf)
        if lits is not None:
            cnf.add_clause(lits)
            continue
        complex_nodes.append(node)

    shared_memo: dict = {}
    for node in complex_nodes:
        _, root = tseitin(node, cnf, shared_memo)
        cnf.add_clause([root])
    return cnf


def _literal_clause(node: Formula, cnf: Cnf):
    """DIMACS literals when ``node`` is a literal or a clause of literals."""

    def literal(sub):
        if isinstance(sub, BoolVar):
            return cnf.var_for(sub)
        if isinstance(sub, Not) and isinstance(sub.arg, BoolVar):
            return -cnf.var_for(sub.arg)
        return None

    single = literal(node)
    if single is not None:
        return [single]
    if isinstance(node, Or):
        out = []
        for arg in node.args:
            lit = literal(arg)
            if lit is None:
                return None
            out.append(lit)
        return out
    return None
