"""Tseitin transformation: propositional :class:`Formula` DAG to CNF.

The encoders in :mod:`repro.encodings` output *propositional* formulas —
``Formula`` objects whose only atoms are :class:`BoolVar` and
:class:`BoolConst`.  This module flattens such a DAG to CNF, introducing one
definition variable per internal connective node.  Sharing in the DAG is
preserved: each distinct node is defined exactly once, which is what keeps
the CNF size linear in DAG size (the property the paper's size analysis
relies on).

Since PR 7 the encoder works natively in the packed-literal convention of
:mod:`repro.sat.cnf` (variable ``v`` is ``2v``, its negation ``2v + 1``):
the node memo holds packed literals, negation is ``lit ^ 1``, and clauses
land in the packed arena with no signed/packed round-trip anywhere on the
bulk-insert path.

Two encodings are supported:

* **classic** Tseitin — every definition variable is constrained in both
  directions (``out ↔ definition``);
* **Plaisted–Greenbaum** (``mode="pg"``) — polarity-aware: a node that
  only occurs positively under the asserted roots gets only the
  ``out → definition`` clauses, a negative-only node gets only the
  ``definition → out`` clauses, and bipolar nodes (e.g. under ``Iff``)
  keep both.  The CNF is equisatisfiable and any model of it, projected
  onto the input variables, satisfies the original formula — which is the
  property countermodel decoding needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    FALSE,
    Formula,
    Iff,
    Implies,
    Node,
    Not,
    Or,
    TRUE,
)
from ..logic.traversal import postorder
from .cnf import Cnf

__all__ = ["tseitin", "to_cnf", "compute_polarities", "POS", "NEG", "BOTH"]

#: Polarity bitmask values: a node needs the positive direction of its
#: definition (``out → def``), the negative one (``¬out → ¬def``), or both.
POS = 1
NEG = 2
BOTH = POS | NEG


def _flip(mask: int) -> int:
    return ((mask << 1) | (mask >> 1)) & BOTH


def compute_polarities(
    roots: Iterable[Formula],
    polarities: Optional[Dict[Node, int]] = None,
) -> Dict[Node, int]:
    """Polarity mask of every node reachable from ``roots``.

    Each root is taken positively (it will be asserted).  ``Not`` and the
    antecedent of ``Implies`` flip polarity, ``And``/``Or`` preserve it,
    and both sides of an ``Iff`` are bipolar.  Pass the same dict across
    calls to accumulate polarities over several roots that will share a
    Tseitin memo.
    """
    if polarities is None:
        polarities = {}
    stack = [(root, POS) for root in roots]
    while stack:
        node, mask = stack.pop()
        current = polarities.get(node, 0)
        added = mask & ~current
        if not added:
            continue
        polarities[node] = current | added
        if isinstance(node, Not):
            stack.append((node.arg, _flip(added)))
        elif isinstance(node, (And, Or)):
            for arg in node.args:
                stack.append((arg, added))
        elif isinstance(node, Implies):
            stack.append((node.lhs, _flip(added)))
            stack.append((node.rhs, added))
        elif isinstance(node, Iff):
            stack.append((node.lhs, BOTH))
            stack.append((node.rhs, BOTH))
    return polarities


def tseitin(
    formula: Formula,
    cnf: Cnf = None,
    lits: Dict[Node, int] = None,
    polarities: Optional[Dict[Node, int]] = None,
) -> Tuple[Cnf, int]:
    """Encode ``formula``; returns ``(cnf, root_literal)``.

    The root literal is **packed** (``2v`` / ``2v + 1``); the caller
    asserts the root by adding it as a packed unit clause (:func:`to_cnf`
    does exactly that) and negates it with ``root ^ 1``.  Passing an
    existing ``cnf`` allows several formulas to share one variable space,
    and passing the same ``lits`` memo across calls keeps shared sub-DAGs
    defined once (the memo holds packed literals).

    ``polarities`` switches on the Plaisted–Greenbaum mode: only the
    clause direction(s) a node's mask requires are emitted.  The mask must
    cover *every* root that will share the ``lits`` memo (compute it once
    with :func:`compute_polarities` over all of them) — a memoised node is
    never revisited, so directions missing from the mask would be lost.
    """
    if cnf is None:
        cnf = Cnf()
    if lits is None:
        lits = {}
    emit = cnf.add_packed_clause

    # TRUE/FALSE get a dedicated always-true variable so that constant
    # sub-formulas need no special-casing in parents.
    const_var = None

    def const_lit(value: bool) -> int:
        nonlocal const_var
        if const_var is None:
            const_var = cnf.new_var(("tseitin", "const_true")) << 1
            emit([const_var])
        return const_var if value else const_var | 1

    for node in postorder(formula):
        if node in lits:
            continue
        if isinstance(node, BoolConst):
            lits[node] = const_lit(node.value)
            continue
        if isinstance(node, BoolVar):
            lits[node] = cnf.var_for(node) << 1
            continue
        if isinstance(node, Not):
            lits[node] = lits[node.arg] ^ 1
            continue
        mask = BOTH if polarities is None else polarities.get(node, BOTH)
        if isinstance(node, And):
            out = cnf.new_var() << 1
            kids = [lits[a] for a in node.args]
            if mask & POS:
                not_out = out | 1
                for k in kids:
                    emit([not_out, k])
            if mask & NEG:
                emit([out] + [k ^ 1 for k in kids])
            lits[node] = out
        elif isinstance(node, Or):
            out = cnf.new_var() << 1
            kids = [lits[a] for a in node.args]
            if mask & NEG:
                for k in kids:
                    emit([out, k ^ 1])
            if mask & POS:
                emit([out | 1] + kids)
            lits[node] = out
        elif isinstance(node, Implies):
            out = cnf.new_var() << 1
            a, b = lits[node.lhs], lits[node.rhs]
            if mask & POS:
                emit([out | 1, a ^ 1, b])
            if mask & NEG:
                emit([out, a])
                emit([out, b ^ 1])
            lits[node] = out
        elif isinstance(node, Iff):
            out = cnf.new_var() << 1
            a, b = lits[node.lhs], lits[node.rhs]
            if mask & POS:
                emit([out | 1, a ^ 1, b])
                emit([out | 1, a, b ^ 1])
            if mask & NEG:
                emit([out, a, b])
                emit([out, a ^ 1, b ^ 1])
            lits[node] = out
        else:
            raise TypeError(
                "non-propositional node reached Tseitin: %r" % (type(node),)
            )
    return cnf, lits[formula]


def to_cnf(formula: Formula, mode: str = "classic") -> Cnf:
    """Encode ``formula`` and assert it, returning a self-contained CNF.

    Top-level conjunctions are asserted conjunct by conjunct, and asserted
    disjunctions of plain literals become clauses directly — no definition
    variables.  This matters a lot for the encoders' output shape
    ``F_trans ∧ ¬F_bvar``, where ``F_trans`` is a large conjunction of
    literal clauses (transitivity constraints).

    ``mode`` selects the definitional encoding: ``"classic"`` (both
    directions of every definition) or ``"pg"`` (Plaisted–Greenbaum,
    polarity-aware — the eager pipeline's default since it emits up to
    half the definitional clauses).
    """
    if mode not in ("classic", "pg"):
        raise ValueError("unknown Tseitin mode %r" % (mode,))
    cnf = Cnf()
    if formula is TRUE:
        return cnf
    if formula is FALSE:
        v = cnf.new_var(("tseitin", "const_true"))
        cnf.add_clause([v])
        cnf.add_clause([-v])
        return cnf

    asserted: list = [formula]
    complex_nodes: list = []
    literal_clauses: list = []
    while asserted:
        node = asserted.pop()
        if node is TRUE:
            continue
        if node is FALSE:
            v = cnf.var_for(("tseitin", "const_false_assert"))
            cnf.add_clause([v])
            cnf.add_clause([-v])
            continue
        if isinstance(node, And):
            asserted.extend(node.args)
            continue
        lits = _literal_clause(node, cnf)
        if lits is not None:
            # Already packed by _literal_clause; var_for allocated every
            # variable, so no validation pass is needed either.
            literal_clauses.append(lits)
            continue
        complex_nodes.append(node)
    cnf.add_packed_clauses(literal_clauses)

    polarities = None
    if mode == "pg":
        polarities = compute_polarities(complex_nodes)
    shared_memo: dict = {}
    for node in complex_nodes:
        _, root = tseitin(node, cnf, shared_memo, polarities=polarities)
        cnf.add_packed_clause([root])
    return cnf


def _literal_clause(node: Formula, cnf: Cnf):
    """Packed literals when ``node`` is a literal or a clause of literals."""

    def literal(sub):
        if isinstance(sub, BoolVar):
            return cnf.var_for(sub) << 1
        if isinstance(sub, Not) and isinstance(sub.arg, BoolVar):
            return (cnf.var_for(sub.arg) << 1) | 1
        return None

    single = literal(node)
    if single is not None:
        return [single]
    if isinstance(node, Or):
        out = []
        for arg in node.args:
            lit = literal(arg)
            if lit is None:
                return None
            out.append(lit)
        return out
    return None
