"""The frozen pre-arena CDCL solver, kept as a differential reference.

This is the object-per-clause solver exactly as it shipped before the
arena refactor (PR 7): signed literals, one ``_Clause`` object per
clause, tuple-based watcher lists.  It is **not** used by the engine —
:mod:`repro.sat.solver` is the production solver.  It exists so that

* ``tests/test_solver_arena.py`` can check the arena solver verdict-for-
  verdict and model-for-model against the old implementation, and
* ``bench-smoke --families large`` can measure the arena speedup as a
  machine-independent arena/legacy time ratio (see tools/bench_gate.py).

Do not optimise or extend this module; fixes only if a soundness bug is
found in both solvers.  It consumes the signed ``Cnf.clauses`` view, so
it keeps working on top of the packed CNF container.

The solver implements the standard conflict-driven clause-learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with recursive clause minimisation,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* geometric learned-clause database reduction.

It also exposes the counters the paper's Figure 2 reports — CNF clause
count, *conflict (learned) clause* count, decisions, propagations — so the
SD-vs-EIJ search-behaviour comparison can be reproduced measurement for
measurement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cnf import Cnf

__all__ = ["SatStats", "SatResult", "CdclSolver", "solve_cnf"]

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"


@dataclass
class SatStats:
    """Search statistics for one :meth:`CdclSolver.solve` call."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    original_clauses: int = 0
    deleted_clauses: int = 0
    time_seconds: float = 0.0


@dataclass
class SatResult:
    """Outcome of one solve call.

    ``core`` is populated on UNSAT results from
    :meth:`CdclSolver.solve_under_assumptions`: a subset of the passed
    assumption literals such that the clause database conjoined with
    exactly those literals is unsatisfiable.  An empty core means the
    clause database is unsatisfiable on its own.
    """

    status: str
    model: Optional[Dict[int, bool]] = None
    stats: SatStats = field(default_factory=SatStats)
    core: Optional[List[int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT


class _Clause:
    __slots__ = ("lits", "learned", "activity", "lbd")

    def __init__(self, lits: List[int], learned: bool = False):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.lbd = 0  # literal-block distance, stamped at learn time


def _luby(i: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 ... (1-indexed)."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq


class CdclSolver:
    """Conflict-driven clause learning over a :class:`Cnf`.

    Parameters
    ----------
    cnf:
        The input formula.  The solver keeps its own clause objects; the
        input is not mutated.
    max_conflicts:
        Abort with ``UNKNOWN`` after this many conflicts (``None`` = off).
    time_limit:
        Abort with ``UNKNOWN`` after this many seconds (``None`` = off).
    """

    RESTART_BASE = 128
    VAR_DECAY = 0.95
    CLAUSE_DECAY = 0.999
    #: Learned clauses with LBD at or below this are never deleted
    #: ("glue" clauses in Glucose terminology).
    GLUE_LBD = 3

    def __init__(
        self,
        cnf: Cnf,
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> None:
        self.nvars = cnf.num_vars
        self.max_conflicts = max_conflicts
        self.time_limit = time_limit
        self.stats = SatStats(original_clauses=len(cnf))

        n = self.nvars + 1
        self.values: List[int] = [0] * n  # 0 unassigned, 1 true, -1 false
        self.levels: List[int] = [0] * n
        self.reasons: List[Optional[_Clause]] = [None] * n
        self.activity: List[float] = [0.0] * n
        self.phase: List[int] = [-1] * n  # saved polarity
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.cla_inc = 1.0

        # watches indexed by literal key: pos lit v -> 2v, neg lit v -> 2v+1.
        # Each entry is a (blocker, clause) pair: the blocker is the other
        # watched literal at registration time, and a true blocker lets
        # propagation skip the clause without touching its literal list.
        self.watches: List[List[tuple]] = [[] for _ in range(2 * n)]
        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        self._ok = True
        self._units: List[int] = []
        self._heap: List = []

        for lits in cnf.clauses:
            self._add_original(lits)

    # -- clause plumbing ----------------------------------------------------

    @staticmethod
    def _key(lit: int) -> int:
        return (abs(lit) << 1) | (lit < 0)

    def _add_original(self, lits: List[int]) -> None:
        if not self._ok:
            return
        seen = set()
        simplified: List[int] = []
        for lit in lits:
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                simplified.append(lit)
        if not simplified:
            self._ok = False
            return
        if len(simplified) == 1:
            self._units.append(simplified[0])
            return
        clause = _Clause(simplified)
        self.clauses.append(clause)
        self._watch(clause)

    def _watch(self, clause: _Clause) -> None:
        lits = clause.lits
        self.watches[self._key(lits[0])].append((lits[1], clause))
        self.watches[self._key(lits[1])].append((lits[0], clause))

    def add_clause(self, lits) -> None:
        """Add a clause between :meth:`solve` calls (incremental use).

        The solver backtracks to the root level; learned clauses and
        variable activities from earlier calls are retained, which is what
        makes lazy-refinement loops cheap when they reuse one solver.
        Only variables that existed at construction time may appear.
        """
        for lit in lits:
            if lit == 0 or abs(lit) > self.nvars:
                raise ValueError("invalid literal %r" % (lit,))
        self._backtrack(0)
        self._add_original(list(lits))

    def ensure_nvars(self, nvars: int) -> None:
        """Grow the variable space to ``nvars`` (incremental use).

        New variables start unassigned with zero activity and default
        phase; clauses, learned clauses, and saved activities/phases of
        existing variables are untouched, so a session can keep one
        solver alive while its CNF grows.
        """
        if nvars <= self.nvars:
            return
        grow = nvars - self.nvars
        self.values.extend([0] * grow)
        self.levels.extend([0] * grow)
        self.reasons.extend([None] * grow)
        self.activity.extend([0.0] * grow)
        self.phase.extend([-1] * grow)
        self.watches.extend([] for _ in range(2 * grow))
        self.nvars = nvars

    # -- assignment ---------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        v = self.values[abs(lit)]
        return v if lit > 0 else -v

    def _assign(self, lit: int, reason: Optional[_Clause]) -> None:
        var = abs(lit)
        self.values[var] = 1 if lit > 0 else -1
        self.levels[var] = self._level()
        self.reasons[var] = reason
        self.phase[var] = 1 if lit > 0 else -1
        self.trail.append(lit)

    def _level(self) -> int:
        return len(self.trail_lim)

    def _backtrack(self, level: int) -> None:
        if self._level() <= level:
            return
        bound = self.trail_lim[level]
        for lit in reversed(self.trail[bound:]):
            var = abs(lit)
            self.values[var] = 0
            self.reasons[var] = None
            self._heap_insert(var)
        del self.trail[bound:]
        del self.trail_lim[level:]
        self.qhead = min(self.qhead, len(self.trail))

    # -- propagation --------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns the conflicting clause or ``None``.

        This is the solver's hot loop: locals are cached, literal
        valuation is inlined (``values[var]`` with a sign flip), and each
        watch entry carries a *blocking literal* — when the blocker is
        already true the clause is satisfied and is skipped without even
        loading its literal list.
        """
        values = self.values
        watches = self.watches
        trail = self.trail
        levels = self.levels
        reasons = self.reasons
        phase = self.phase
        trail_lim = self.trail_lim
        propagations = 0
        while self.qhead < len(trail):
            lit = trail[self.qhead]
            self.qhead += 1
            propagations += 1
            falsified = -lit
            key = (
                (falsified << 1)
                if falsified > 0
                else ((-falsified << 1) | 1)
            )
            watchlist = watches[key]
            i = 0
            j = 0
            n = len(watchlist)
            while i < n:
                entry = watchlist[i]
                i += 1
                blocker = entry[0]
                if (
                    values[blocker] if blocker > 0 else -values[-blocker]
                ) == 1:
                    watchlist[j] = entry
                    j += 1
                    continue
                clause = entry[1]
                lits = clause.lits
                # Ensure the falsified literal sits at index 1.
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                first_val = values[first] if first > 0 else -values[-first]
                if first_val == 1:
                    watchlist[j] = (first, clause)
                    j += 1
                    continue
                # Search for a replacement watch.
                moved = False
                for k in range(2, len(lits)):
                    other = lits[k]
                    if (
                        values[other] if other > 0 else -values[-other]
                    ) != -1:
                        lits[1], lits[k] = other, lits[1]
                        okey = (
                            (other << 1)
                            if other > 0
                            else ((-other << 1) | 1)
                        )
                        watches[okey].append((first, clause))
                        moved = True
                        break
                if moved:
                    continue
                # No replacement: clause is unit or conflicting.
                watchlist[j] = (first, clause)
                j += 1
                if first_val == -1:
                    # Conflict: keep remaining watches in place.
                    while i < n:
                        watchlist[j] = watchlist[i]
                        j += 1
                        i += 1
                    del watchlist[j:]
                    self.stats.propagations += propagations
                    return clause
                # Inlined assignment of the implied literal.
                if first > 0:
                    var = first
                    values[var] = 1
                    phase[var] = 1
                else:
                    var = -first
                    values[var] = -1
                    phase[var] = -1
                levels[var] = len(trail_lim)
                reasons[var] = clause
                trail.append(first)
            del watchlist[j:]
        self.stats.propagations += propagations
        return None

    # -- conflict analysis ---------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.nvars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self.cla_inc
        if clause.activity > 1e20:
            for c in self.learned:
                c.activity *= 1e-20
            self.cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause):
        """First-UIP learning; returns ``(learned_lits, backtrack_level)``."""
        learnt: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self.nvars + 1)
        counter = 0
        lit = None
        clause = conflict
        index = len(self.trail) - 1
        cur_level = self._level()

        while True:
            self._bump_clause(clause)
            start = 0 if lit is None else 1
            # By convention clause.lits[0] is the literal just resolved on
            # (for reason clauses); skip it on continuation rounds.
            for q in clause.lits[start:]:
                var = abs(q)
                if seen[var] or self.levels[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self.levels[var] == cur_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Pick the next trail literal to resolve on.
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            clause = self.reasons[var]
            # Reorder so lits[0] is the implied literal of this reason.
            if clause.lits[0] != lit:
                idx = clause.lits.index(lit)
                clause.lits[0], clause.lits[idx] = (
                    clause.lits[idx],
                    clause.lits[0],
                )

        learnt = self._minimize(learnt, seen)

        if len(learnt) == 1:
            return learnt, 0
        # Second-highest decision level among learnt literals.
        max_i = 1
        for i in range(2, len(learnt)):
            if self.levels[abs(learnt[i])] > self.levels[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.levels[abs(learnt[1])]

    def _minimize(self, learnt: List[int], seen: List[bool]) -> List[int]:
        """Drop literals implied by the rest of the clause (simple check)."""
        for lit in learnt[1:]:
            seen[abs(lit)] = True
        out = [learnt[0]]
        for lit in learnt[1:]:
            reason = self.reasons[abs(lit)]
            if reason is None:
                out.append(lit)
                continue
            redundant = True
            for q in reason.lits:
                var = abs(q)
                if var == abs(lit):
                    continue
                if not seen[var] and self.levels[var] != 0:
                    redundant = False
                    break
            if not redundant:
                out.append(lit)
        for lit in learnt[1:]:
            seen[abs(lit)] = False
        return out

    def _analyze_final(self, p: int) -> List[int]:
        """Final-conflict analysis (MiniSat's ``analyzeFinal``).

        Called when assumption ``p`` is already false under the current
        trail.  Walks the trail backwards from the top, expanding reason
        clauses, and collects the reason-free entries above level 0 —
        during assumption processing every decision level is an
        assumption level, so those are exactly the assumption literals
        the falsification of ``p`` depends on.  The result (including
        ``p`` itself) is an unsat core: the clause database conjoined
        with exactly these literals is unsatisfiable.
        """
        core = [p]
        if not self.trail_lim:
            return core
        seen = [False] * (self.nvars + 1)
        seen[abs(p)] = True
        for index in range(len(self.trail) - 1, self.trail_lim[0] - 1, -1):
            lit = self.trail[index]
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self.reasons[var]
            if reason is None:
                core.append(lit)
            else:
                for q in reason.lits:
                    qvar = abs(q)
                    if qvar != var and self.levels[qvar] > 0:
                        seen[qvar] = True
            seen[var] = False
        return core

    # -- decision heuristic ---------------------------------------------------

    def _heap_insert(self, var: int) -> None:
        # Lazy heap: heapq with stale entries, filtered on pop.
        import heapq

        heapq.heappush(self._heap, (-self.activity[var], var))

    def _pick_branch_var(self) -> int:
        import heapq

        while self._heap:
            act, var = self._heap[0]
            if self.values[var] == 0 and -act == self.activity[var]:
                return var
            heapq.heappop(self._heap)
            if self.values[var] == 0:
                # Stale activity entry: reinsert with the fresh score.
                heapq.heappush(self._heap, (-self.activity[var], var))
        return 0

    # -- learned clause DB ----------------------------------------------------

    def _reduce_db(self) -> None:
        """Drop the worse half of the learned-clause database.

        Retention is LBD-aware (Glucose-style): clauses are ranked by
        literal-block distance first (high LBD goes first) and activity
        second, and "glue" clauses (LBD <= :attr:`GLUE_LBD`), binary
        clauses, and clauses locked as reasons are never deleted.
        """
        self.learned.sort(key=lambda c: (-c.lbd, c.activity))
        locked = {id(r) for r in self.reasons if r is not None}
        keep: List[_Clause] = []
        drop = set()
        half = len(self.learned) // 2
        for i, clause in enumerate(self.learned):
            if (
                i < half
                and clause.lbd > self.GLUE_LBD
                and id(clause) not in locked
                and len(clause.lits) > 2
            ):
                drop.add(id(clause))
                self.stats.deleted_clauses += 1
            else:
                keep.append(clause)
        self.learned = keep
        if drop:
            for wl in self.watches:
                wl[:] = [entry for entry in wl if id(entry[1]) not in drop]

    # -- main loop ------------------------------------------------------------

    def solve(self) -> SatResult:
        """Run the CDCL search.  May be called repeatedly; clauses added
        with :meth:`add_clause` in between are taken into account and all
        learned clauses/activities carry over."""
        return self.solve_under_assumptions(())

    def solve_under_assumptions(self, assumptions=()) -> SatResult:
        """Solve under temporary assumption literals (MiniSat-style).

        Each assumption occupies its own decision level before any real
        decision (an already-satisfied assumption gets an empty "dummy"
        level so levels and assumption indices stay aligned across
        backjumps).  When an assumption is falsified, final-conflict
        analysis produces an unsat core over the assumption literals in
        :attr:`SatResult.core`.

        Assumptions are *not* clauses: nothing learned ever depends on
        them.  Learned clauses are resolvents of database clauses only
        (assumptions enter analysis as reason-free decisions, which are
        never resolved on), so the full learned-clause database, variable
        activities, and saved phases safely carry over to later calls
        with different — or no — assumptions.
        """
        start = time.perf_counter()
        import heapq

        assumptions = list(assumptions)
        for lit in assumptions:
            if lit == 0 or abs(lit) > self.nvars:
                raise ValueError("invalid assumption literal %r" % (lit,))

        self._backtrack(0)
        # Re-propagate the whole root-level trail: clauses added since the
        # last call may be watched on literals that were already falsified
        # at level 0 and would otherwise never be examined.
        self.qhead = 0
        self._heap = []
        for var in range(1, self.nvars + 1):
            heapq.heappush(self._heap, (-self.activity[var], var))

        if not self._ok:
            return self._finish(UNSAT, start, core=[])

        # Level-0 units.
        for lit in self._units:
            val = self._lit_value(lit)
            if val == -1:
                return self._finish(UNSAT, start, core=[])
            if val == 0:
                self._assign(lit, None)
        if self._propagate() is not None:
            return self._finish(UNSAT, start, core=[])

        max_learned = max(len(self.clauses) // 3, 2000)
        conflicts_until_restart = self.RESTART_BASE * _luby(1)
        restart_count = 1
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._level() == 0:
                    return self._finish(UNSAT, start, core=[])
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    if self._lit_value(learnt[0]) == -1:
                        return self._finish(UNSAT, start, core=[])
                    if self._lit_value(learnt[0]) == 0:
                        self._assign(learnt[0], None)
                else:
                    clause = _Clause(learnt, learned=True)
                    levels = self.levels
                    clause.lbd = len(
                        {levels[abs(q)] for q in learnt}
                    )
                    self.learned.append(clause)
                    self.stats.learned_clauses += 1
                    self._watch(clause)
                    self._bump_clause(clause)
                    self._assign(learnt[0], clause)
                self.var_inc /= self.VAR_DECAY
                self.cla_inc /= self.CLAUSE_DECAY

                if (
                    self.max_conflicts is not None
                    and self.stats.conflicts >= self.max_conflicts
                ):
                    return self._finish(UNKNOWN, start)
                if (
                    self.time_limit is not None
                    and self.stats.conflicts % 64 == 0
                    and time.perf_counter() - start > self.time_limit
                ):
                    return self._finish(UNKNOWN, start)
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_count += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self.RESTART_BASE * _luby(
                    restart_count
                )
                # Backtracking to 0 pops the assumption levels too; the
                # decision step below re-pushes them in order.
                self._backtrack(0)
                continue

            if len(self.learned) - len(self.trail) >= max_learned:
                self._reduce_db()
                max_learned = int(max_learned * 1.3)

            # Assumption levels precede real decisions.
            lit = 0
            while self._level() < len(assumptions):
                p = assumptions[self._level()]
                val = self._lit_value(p)
                if val == 1:
                    self.trail_lim.append(len(self.trail))  # dummy level
                elif val == -1:
                    return self._finish(
                        UNSAT, start, core=self._analyze_final(p)
                    )
                else:
                    lit = p
                    break
            if lit == 0:
                lit = self._next_decision()
                if lit == 0:
                    model = {
                        v: self.values[v] == 1
                        for v in range(1, self.nvars + 1)
                    }
                    return self._finish(SAT, start, model=model)
                self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._level()
            )
            self._assign(lit, None)

    def _finish(
        self,
        status: str,
        start: float,
        model: Optional[Dict[int, bool]] = None,
        core: Optional[List[int]] = None,
    ) -> SatResult:
        self.stats.time_seconds = time.perf_counter() - start
        return SatResult(status, model=model, stats=self.stats, core=core)

    def _next_decision(self) -> int:
        """Next decision literal; 0 when the assignment is total."""
        var = self._pick_branch_var()
        if var == 0:
            return 0
        return var if self.phase[var] >= 0 else -var


def solve_cnf(
    cnf: Cnf,
    max_conflicts: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> SatResult:
    """One-shot convenience wrapper around :class:`CdclSolver`."""
    return CdclSolver(
        cnf, max_conflicts=max_conflicts, time_limit=time_limit
    ).solve()
