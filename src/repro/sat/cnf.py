"""CNF container shared by the Tseitin transform and the SAT solver.

Variables are positive integers ``1..num_vars``.  Since PR 7 the
container stores clauses in a **flat packed arena**: one ``array('i')``
of int-packed literals plus one ``array('i')`` of clause start offsets.
A literal is packed as ``2v`` (positive) or ``2v + 1`` (negative), so

* negation is ``lit ^ 1``,
* the variable is ``lit >> 1``,
* value/watch tables index directly by literal with no sign branch.

The packed convention is shared by the Tseitin encoder (which emits
packed clauses natively), the preprocessor, the DIMACS serializer and
the arena CDCL solver (which bulk-attaches straight from
:meth:`Cnf.packed_arrays`).  Signed DIMACS literals remain the *external*
vocabulary: :meth:`add_clause` accepts them (packing once on insert) and
the :attr:`clauses` property materializes a signed view for tests,
debugging, and external tools.

The container also tracks a name table mapping solver variables back to
the :class:`~repro.logic.terms.BoolVar` (or other label) they encode,
which the decision procedures use to decode counterexamples.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Cnf",
    "pack_literal",
    "unpack_literal",
    "pack_clause",
    "unpack_clause",
]


def pack_literal(lit: int) -> int:
    """Signed DIMACS literal -> packed key (``2v`` pos, ``2v + 1`` neg)."""
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


def unpack_literal(lit: int) -> int:
    """Packed key -> signed DIMACS literal."""
    return -(lit >> 1) if lit & 1 else (lit >> 1)


def pack_clause(lits: Iterable[int]) -> List[int]:
    return [(q << 1) if q > 0 else ((-q) << 1) | 1 for q in lits]


def unpack_clause(lits: Iterable[int]) -> List[int]:
    return [-(q >> 1) if q & 1 else (q >> 1) for q in lits]


class Cnf:
    """A growable CNF formula over a flat packed-literal arena."""

    def __init__(self) -> None:
        self.num_vars: int = 0
        #: Flat packed literals of every clause, concatenated.
        self._lits: array = array("i")
        #: Clause boundaries: clause ``i`` is ``_lits[_starts[i]:_starts[i+1]]``.
        self._starts: array = array("i", [0])
        self.names: Dict[int, object] = {}
        self._by_name: Dict[object, int] = {}

    # -- variables -----------------------------------------------------------

    def new_var(self, name: object = None) -> int:
        """Allocate a fresh variable, optionally labelled with ``name``."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            self.names[var] = name
            self._by_name[name] = var
        return var

    def var_for(self, name: object) -> int:
        """Variable labelled ``name``, allocating it on first use."""
        var = self._by_name.get(name)
        if var is None:
            var = self.new_var(name)
        return var

    def lookup(self, name: object) -> Optional[int]:
        """Variable labelled ``name`` if it exists, else ``None``."""
        return self._by_name.get(name)

    def ensure_vars(self, num_vars: int) -> None:
        """Declare variables ``1..num_vars`` allocated.

        Max-var tracking for bulk inserts: raises nothing and never
        shrinks — callers that know the largest variable in a clause
        batch declare it once instead of paying per-literal checks.
        """
        if num_vars > self.num_vars:
            self.num_vars = num_vars

    # -- signed (DIMACS) insertion paths -------------------------------------

    def add_clause(self, lits: Iterable[int]) -> None:
        """Append a clause of signed literals after validating each one.

        This is the safe path for externally-supplied clauses (DIMACS
        input, tests).  Encoders that generate literals from variables
        they just allocated should use the unchecked/packed inserts —
        the per-literal loop here dominates CNF construction time on
        large encodings.  Either way the clause is packed exactly once.
        """
        clause = list(lits)
        num_vars = self.num_vars
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a literal")
            if (lit if lit > 0 else -lit) > num_vars:
                raise ValueError(
                    "literal %d references unallocated variable" % lit
                )
        self._lits.extend(
            (q << 1) if q > 0 else ((-q) << 1) | 1 for q in clause
        )
        self._starts.append(len(self._lits))

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_clause_unchecked(self, clause: Sequence[int]) -> None:
        """Append a signed clause without validation (bulk insert).

        The caller guarantees every literal is nonzero and references an
        allocated variable (allocate with :meth:`new_var` or declare in
        bulk with :meth:`ensure_vars`).  The literals are packed into the
        arena; the input list is not retained.
        """
        self._lits.extend(
            (q << 1) if q > 0 else ((-q) << 1) | 1 for q in clause
        )
        self._starts.append(len(self._lits))

    def add_clauses_unchecked(self, clauses: Iterable[Sequence[int]]) -> None:
        """Bulk :meth:`add_clause_unchecked`."""
        lits = self._lits
        starts = self._starts
        for clause in clauses:
            lits.extend(
                (q << 1) if q > 0 else ((-q) << 1) | 1 for q in clause
            )
            starts.append(len(lits))

    # -- packed insertion paths (the hot path) -------------------------------

    def add_packed_clause(self, clause: Sequence[int]) -> None:
        """Append a clause of already-packed literals (no conversion)."""
        self._lits.extend(clause)
        self._starts.append(len(self._lits))

    def add_packed_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        lits = self._lits
        starts = self._starts
        for clause in clauses:
            lits.extend(clause)
            starts.append(len(lits))

    # -- reading -------------------------------------------------------------

    @property
    def clause_count(self) -> int:
        return len(self._starts) - 1

    @property
    def literal_count(self) -> int:
        return len(self._lits)

    def packed_arrays(self) -> Tuple[array, array]:
        """The raw ``(literals, starts)`` arrays (shared, do not mutate).

        This is the solver's bulk-attach path: clause ``i`` occupies
        ``literals[starts[i]:starts[i + 1]]``.
        """
        return self._lits, self._starts

    def packed(self, index: int) -> List[int]:
        """Clause ``index`` as a list of packed literals."""
        return self._lits[self._starts[index] : self._starts[index + 1]].tolist()

    def signed(self, index: int) -> List[int]:
        """Clause ``index`` as a list of signed DIMACS literals."""
        return unpack_clause(self.packed(index))

    def iter_packed(self) -> Iterator[List[int]]:
        """Iterate clauses as packed-literal lists."""
        lits = self._lits
        starts = self._starts
        for i in range(len(starts) - 1):
            yield lits[starts[i] : starts[i + 1]].tolist()

    @property
    def clauses(self) -> List[List[int]]:
        """Signed-literal view of every clause (materialized copy).

        Compatibility/debug surface: mutating the returned lists does not
        write back into the arena.  Hot paths should use
        :meth:`packed_arrays` / :meth:`iter_packed` instead.
        """
        lits = self._lits
        starts = self._starts
        return [
            unpack_clause(lits[starts[i] : starts[i + 1]])
            for i in range(len(starts) - 1)
        ]

    @clauses.setter
    def clauses(self, value: Iterable[Sequence[int]]) -> None:
        self._lits = array("i")
        self._starts = array("i", [0])
        self.add_clauses_unchecked(value)

    def __len__(self) -> int:
        return len(self._starts) - 1

    def __repr__(self) -> str:
        return "Cnf(num_vars=%d, clauses=%d)" % (
            self.num_vars,
            len(self._starts) - 1,
        )
