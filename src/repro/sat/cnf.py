"""CNF container shared by the Tseitin transform and the SAT solver.

Variables are positive integers ``1..num_vars``; literals are nonzero
signed integers as in DIMACS.  The container tracks a name table mapping
solver variables back to the :class:`~repro.logic.terms.BoolVar` (or other
label) they encode, which the decision procedures use to decode
counterexamples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Cnf"]


class Cnf:
    """A growable CNF formula."""

    def __init__(self) -> None:
        self.num_vars: int = 0
        self.clauses: List[List[int]] = []
        self.names: Dict[int, object] = {}
        self._by_name: Dict[object, int] = {}

    def new_var(self, name: object = None) -> int:
        """Allocate a fresh variable, optionally labelled with ``name``."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            self.names[var] = name
            self._by_name[name] = var
        return var

    def var_for(self, name: object) -> int:
        """Variable labelled ``name``, allocating it on first use."""
        var = self._by_name.get(name)
        if var is None:
            var = self.new_var(name)
        return var

    def lookup(self, name: object) -> Optional[int]:
        """Variable labelled ``name`` if it exists, else ``None``."""
        return self._by_name.get(name)

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = list(lits)
        for lit in clause:
            var = abs(lit)
            if lit == 0:
                raise ValueError("0 is not a literal")
            if var > self.num_vars:
                raise ValueError(
                    "literal %d references unallocated variable" % lit
                )
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return "Cnf(num_vars=%d, clauses=%d)" % (
            self.num_vars,
            len(self.clauses),
        )
