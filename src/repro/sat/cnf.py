"""CNF container shared by the Tseitin transform and the SAT solver.

Variables are positive integers ``1..num_vars``; literals are nonzero
signed integers as in DIMACS.  The container tracks a name table mapping
solver variables back to the :class:`~repro.logic.terms.BoolVar` (or other
label) they encode, which the decision procedures use to decode
counterexamples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Cnf"]


class Cnf:
    """A growable CNF formula."""

    def __init__(self) -> None:
        self.num_vars: int = 0
        self.clauses: List[List[int]] = []
        self.names: Dict[int, object] = {}
        self._by_name: Dict[object, int] = {}

    def new_var(self, name: object = None) -> int:
        """Allocate a fresh variable, optionally labelled with ``name``."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            self.names[var] = name
            self._by_name[name] = var
        return var

    def var_for(self, name: object) -> int:
        """Variable labelled ``name``, allocating it on first use."""
        var = self._by_name.get(name)
        if var is None:
            var = self.new_var(name)
        return var

    def lookup(self, name: object) -> Optional[int]:
        """Variable labelled ``name`` if it exists, else ``None``."""
        return self._by_name.get(name)

    def add_clause(self, lits: Iterable[int]) -> None:
        """Append a clause after validating every literal.

        This is the safe path for externally-supplied clauses (DIMACS
        input, tests).  Encoders that generate literals from variables
        they just allocated should use :meth:`add_clause_unchecked` /
        :meth:`add_clauses_unchecked` instead — the per-literal loop here
        dominates CNF construction time on large encodings.
        """
        clause = list(lits)
        for lit in clause:
            var = abs(lit)
            if lit == 0:
                raise ValueError("0 is not a literal")
            if var > self.num_vars:
                raise ValueError(
                    "literal %d references unallocated variable" % lit
                )
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_clause_unchecked(self, clause: List[int]) -> None:
        """Append ``clause`` without validation (hot-path bulk insert).

        The caller guarantees every literal is nonzero and references an
        allocated variable (allocate with :meth:`new_var` or declare in
        bulk with :meth:`ensure_vars`), and hands over ownership of the
        list — it must not be mutated afterwards.
        """
        self.clauses.append(clause)

    def add_clauses_unchecked(self, clauses: Iterable[List[int]]) -> None:
        """Bulk :meth:`add_clause_unchecked` (a single ``list.extend``)."""
        self.clauses.extend(clauses)

    def ensure_vars(self, num_vars: int) -> None:
        """Declare variables ``1..num_vars`` allocated.

        Max-var tracking for bulk inserts: raises nothing and never
        shrinks — callers that know the largest variable in a clause
        batch declare it once instead of paying per-literal checks.
        """
        if num_vars > self.num_vars:
            self.num_vars = num_vars

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return "Cnf(num_vars=%d, clauses=%d)" % (
            self.num_vars,
            len(self.clauses),
        )
