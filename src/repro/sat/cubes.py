"""Lookahead cube generation for cube-and-conquer solving.

A *cube* is a conjunction of assumption literals; a cube set partitions
one hard CNF into sub-problems whose union of search spaces covers the
original (refuting every cube proves UNSAT, one satisfiable cube gives a
model).  Splitting variables are chosen march-style: for each candidate
both polarities are propagated and the candidate maximizing the product
of the two implied-assignment counts wins — the product rewards
*balanced* splits, which is what makes the sub-problems genuinely
smaller instead of one trivial and one unchanged.

The generator prefers the separation-predicate (EIJ) variables surfaced
by the encoder hook (:meth:`repro.encodings.sepvars.SepVarRegistry.
cnf_var_ids`): the paper's §4 SepCnt analysis identifies exactly these
per-predicate Booleans as the structurally important case splits.

Failed-literal detection falls out of the lookahead for free: a
polarity whose propagation conflicts forces the opposite literal.  At
the root that is a learned unit (returned in :attr:`CubeSet.units`, and
asserted in the generating solver so later lookaheads benefit); deeper
in the tree the forced literal extends the cube without consuming
depth, and a node with both polarities failed refutes its whole cube.

Everything is deterministic for a fixed :attr:`CubeConfig.seed`: the
candidate ranking breaks occurrence-count ties with a seeded jitter and
the expansion is a plain depth-first walk (the RD2xx determinism rule
pack applies to this subsystem like any other).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .cnf import Cnf, unpack_literal
from .solver import NO_REASON, CdclSolver

__all__ = [
    "CubeConfig",
    "CubeStats",
    "CubeSet",
    "CubeSplitter",
    "generate_cubes",
    "split_cube",
]

#: Status values for :attr:`CubeSet.status`.
SPLIT = "SPLIT"
UNSAT = "UNSAT"


@dataclass
class CubeConfig:
    """Knobs for :func:`generate_cubes`.

    ``depth`` bounds the decision depth of the cube tree (ignoring free
    failed-literal extensions); ``max_cubes`` caps the number of leaves
    regardless of depth.  ``prefer_vars`` (CNF variable ids, typically
    the EIJ map from the encoder hook) are ranked ahead of every other
    candidate.  ``imbalance`` stops splitting a node whose best
    candidate propagates ``imbalance`` times more on one side than the
    other — such a split shrinks one child only.  ``seed`` fixes the
    candidate tie-break jitter, making cube runs reproducible.
    """

    depth: int = 4
    max_cubes: int = 64
    max_candidates: int = 24
    seed: int = 0
    imbalance: float = 64.0
    prefer_vars: Sequence[int] = ()


@dataclass
class CubeStats:
    """What the generator did (reported through the engine telemetry)."""

    cubes: int = 0
    refuted_branches: int = 0
    failed_literals: int = 0
    lookaheads: int = 0
    max_depth: int = 0


@dataclass
class CubeSet:
    """The generator's output.

    ``status`` is ``"UNSAT"`` when cube generation alone refuted the
    formula (every branch failed, or a root-level contradiction) —
    ``cubes`` is then empty.  Otherwise ``status`` is ``"SPLIT"`` and
    ``cubes`` holds signed assumption prefixes whose disjunction covers
    the formula.  ``units`` are root-implied failed-literal units
    (signed), safe to assert in any solver working on the same CNF.
    """

    status: str
    cubes: List[List[int]] = field(default_factory=list)
    units: List[int] = field(default_factory=list)
    stats: CubeStats = field(default_factory=CubeStats)


def _ranked_candidates(
    cnf: Cnf, config: CubeConfig
) -> List[int]:
    """Global candidate order: preferred vars first, then by occurrence.

    Ties (equal occurrence counts) are broken by a seeded jitter so two
    runs with the same seed pick identical splits while different seeds
    explore different — still valid — cube trees.
    """
    occ = [0] * (cnf.num_vars + 1)
    lits, _starts = cnf.packed_arrays()
    for q in lits:
        occ[q >> 1] += 1
    rng = random.Random(config.seed)
    jitter = [rng.random() for _ in range(cnf.num_vars + 1)]

    def key(var: int) -> Tuple[int, float, int]:
        return (-occ[var], jitter[var], var)

    preferred = sorted(
        {v for v in config.prefer_vars if 1 <= v <= cnf.num_vars and occ[v]},
        key=key,
    )
    seen = set(preferred)
    rest = sorted(
        (v for v in range(1, cnf.num_vars + 1) if occ[v] and v not in seen),
        key=key,
    )
    return preferred + rest


def _probe(solver: CdclSolver, lit: int) -> Tuple[bool, int]:
    """Propagate ``lit`` on a scratch level; ``(conflicted, growth)``."""
    base = solver.trail_size
    solver.trail_lim.append(base)
    solver._assign(lit, NO_REASON)
    conflicted = solver._propagate() >= 0
    growth = solver.trail_size - base
    solver._backtrack(len(solver.trail_lim) - 1)
    return conflicted, growth


def _best_split(
    solver: CdclSolver,
    ranked: List[int],
    config: CubeConfig,
    stats: CubeStats,
) -> Tuple[int, int, List[int]]:
    """Lookahead over the node's candidates.

    Returns ``(verdict, best_lit, forced)`` where ``verdict`` is 1 for a
    refuted node (both polarities of some candidate failed), 0 for a
    node that should become a leaf (no splittable candidate), and 2 for
    a split on packed literal ``best_lit``.  ``forced`` collects packed
    failed-literal implications found (and already assigned) on the way.
    """
    vals = solver.vals
    best_lit = -1
    best_score = -1
    forced: List[int] = []
    scored = 0
    for var in ranked:
        if scored >= config.max_candidates:
            break
        plit = var << 1
        if vals[plit] != 0:
            continue
        scored += 1
        stats.lookaheads += 1
        pos_fail, pos_growth = _probe(solver, plit)
        neg_fail, neg_growth = _probe(solver, plit | 1)
        if pos_fail and neg_fail:
            return 1, -1, forced
        if pos_fail or neg_fail:
            implied = (plit | 1) if pos_fail else plit
            stats.failed_literals += 1
            forced.append(implied)
            # Assign at the current node level: the implication holds
            # under this cube prefix, and _backtrack past the node pops
            # it along with the prefix.
            solver._assign(implied, NO_REASON)
            if solver._propagate() >= 0:
                return 1, -1, forced
            continue
        score = pos_growth * neg_growth * 1024 + pos_growth + neg_growth
        if score > best_score:
            balanced = (
                min(pos_growth, neg_growth) * config.imbalance
                >= max(pos_growth, neg_growth)
            )
            if balanced:
                best_score = score
                best_lit = plit
    if best_lit < 0:
        return 0, -1, forced
    return 2, best_lit, forced


def generate_cubes(cnf: Cnf, config: Optional[CubeConfig] = None) -> CubeSet:
    """Split ``cnf`` into a deterministic set of assumption cubes."""
    config = config or CubeConfig()
    stats = CubeStats()
    solver = CdclSolver(cnf, inprocess=False)
    if not _root_propagate(solver):
        return CubeSet(status=UNSAT, stats=stats)
    ranked = _ranked_candidates(cnf, config)

    units: List[int] = []
    cubes: List[List[int]] = []
    # Depth-first expansion; each stack entry is the packed cube prefix.
    stack: List[List[int]] = [[]]
    while stack:
        prefix = stack.pop()
        if not _push_prefix(solver, prefix):
            stats.refuted_branches += 1
            solver._backtrack(0)
            continue
        depth = len(prefix)
        stats.max_depth = max(stats.max_depth, depth)
        at_cap = len(cubes) + len(stack) + 1 >= config.max_cubes
        if depth >= config.depth or at_cap:
            cubes.append([unpack_literal(q) for q in prefix])
            stats.cubes += 1
            solver._backtrack(0)
            continue
        verdict, best_lit, forced = _best_split(solver, ranked, config, stats)
        solver._backtrack(0)
        if verdict == 1:
            stats.refuted_branches += 1
            continue
        if depth == 0 and forced:
            # Root-level failed literals are plain units of the CNF:
            # publish them and keep them asserted for later lookaheads.
            for q in forced:
                units.append(unpack_literal(q))
                solver.add_clause([unpack_literal(q)])
            if not _root_propagate(solver):
                return CubeSet(status=UNSAT, units=units, stats=stats)
            forced = []
        extended = prefix + forced
        if verdict == 0:
            cubes.append([unpack_literal(q) for q in extended])
            stats.cubes += 1
            continue
        # Deterministic order: the stack pops the positive child first.
        stack.append(extended + [best_lit | 1])
        stack.append(extended + [best_lit])
    if not cubes:
        return CubeSet(status=UNSAT, units=units, stats=stats)
    return CubeSet(status=SPLIT, cubes=cubes, units=units, stats=stats)


def split_cube(
    solver: CdclSolver,
    ranked: List[int],
    cube: List[int],
    config: CubeConfig,
    stats: Optional[CubeStats] = None,
) -> Optional[List[List[int]]]:
    """Re-split one cube (dynamic refutation of a timed-out conquer job).

    ``solver`` is a resident generator solver over the same CNF;
    ``cube`` is signed.  Returns the refined signed cubes: two children
    on a successful split, ``[cube]`` unchanged when no candidate splits
    the node, and ``None`` when the cube's prefix is refuted outright.
    """
    stats = stats if stats is not None else CubeStats()
    packed = [
        ((lit << 1) if lit > 0 else ((-lit) << 1) | 1) for lit in cube
    ]
    if not _push_prefix(solver, packed):
        solver._backtrack(0)
        return None
    verdict, best_lit, forced = _best_split(solver, ranked, config, stats)
    solver._backtrack(0)
    if verdict == 1:
        return None
    extended = cube + [unpack_literal(q) for q in forced]
    if verdict == 0:
        return [extended]
    pos = unpack_literal(best_lit)
    return [extended + [pos], extended + [-pos]]


class CubeSplitter:
    """Resident re-splitter for the cube-and-conquer conductor.

    Keeps one lookahead solver and the ranked candidate order alive so
    timed-out cubes can be re-split repeatedly without re-paying the
    per-call setup of :func:`generate_cubes`.  ``ok`` turns false when a
    root-level contradiction is discovered (the CNF itself is UNSAT).
    """

    def __init__(self, cnf: Cnf, config: Optional[CubeConfig] = None) -> None:
        self.config = config or CubeConfig()
        self.stats = CubeStats()
        self._solver = CdclSolver(cnf, inprocess=False)
        self._ranked = _ranked_candidates(cnf, self.config)
        self.ok = _root_propagate(self._solver)

    def add_units(self, units: Sequence[int]) -> None:
        """Assert shared/learned signed units in the lookahead solver."""
        for unit in units:
            self._solver.add_clause([unit])
        if self.ok:
            self.ok = _root_propagate(self._solver)

    def resplit(self, cube: List[int]) -> Optional[List[List[int]]]:
        """Refine one signed cube; see :func:`split_cube`."""
        if not self.ok:
            return None
        return split_cube(
            self._solver, self._ranked, cube, self.config, self.stats
        )


def _root_propagate(solver: CdclSolver) -> bool:
    """Flush root units and propagate; ``False`` = CNF already UNSAT."""
    if not solver._ok:
        return False
    vals = solver.vals
    for lit in solver._units:
        val = vals[lit]
        if val < 0:
            return False
        if val == 0:
            solver._assign(lit, NO_REASON)
    return solver._propagate() < 0


def _push_prefix(solver: CdclSolver, prefix: List[int]) -> bool:
    """Assume a packed prefix, one decision level per literal.

    Returns ``False`` when the prefix conflicts (the cube is refuted by
    propagation alone).  The caller backtracks to level 0 either way.
    """
    vals = solver.vals
    for q in prefix:
        val = vals[q]
        if val < 0:
            return False
        solver.trail_lim.append(solver.trail_size)
        if val == 0:
            solver._assign(q, NO_REASON)
            if solver._propagate() >= 0:
                return False
    return True
