"""An arena-based CDCL SAT solver (the role zChaff plays in the paper).

The solver implements the standard conflict-driven clause-learning loop:

* two-watched-literal unit propagation with blocking literals,
* first-UIP conflict analysis with recursive clause minimisation,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* glue-aware (LBD) learned-clause database reduction,
* inprocessing between reduction rounds: bounded clause vivification
  and backward subsumption over the learned-clause database.

It also exposes the counters the paper's Figure 2 reports — CNF clause
count, *conflict (learned) clause* count, decisions, propagations — so the
SD-vs-EIJ search-behaviour comparison can be reproduced measurement for
measurement.

Memory layout (the PR 7 arena refactor)
---------------------------------------

Literals are int-packed throughout: variable ``v`` appears as ``2v``
(positive) or ``2v + 1`` (negative), so negation is ``lit ^ 1`` and the
variable is ``lit >> 1`` — no sign branches in the hot loop, and every
per-literal table (``vals``, watcher lists) indexes directly by literal.

Clauses live in a single flat arena list instead of one object each::

    ref ->  [ size | flags | lbd | activity | lit0 | lit1 | ... ]
              +0     +1      +2    +3         +4 (watched lits first)

``flags`` is 0 for original clauses, 1 for learned, 2 for dead.  Dead
clauses keep their ``size`` slot so the arena stays stride-walkable;
their slots are recycled through a size-bucketed free list refreshed on
:meth:`CdclSolver._reduce_db`, and the arena is compacted (live clauses
slid down, every stored ref remapped) when more than half of it is dead.

The arena is a plain Python ``list``, not ``array('i')``: the solver
reads literals far more often than it stores them, and ``array`` boxes
a fresh ``int`` object on every subscript while a list hands back the
stored object directly — measurably slower in ``_propagate`` (the
activity header slot holding a float rules out ``array('i')`` anyway).
The *cold* storage (:class:`repro.sat.cnf.Cnf`) does use ``array('i')``;
the solver bulk-loads from it once at attach time.

Watcher lists are paired flat arrays ``watch_blockers[lit]`` /
``watch_refs[lit]`` — no per-move tuple allocation.  Binary clauses are
specialised into their own paired lists ``bin_blockers`` / ``bin_refs``:
the blocker *is* the other literal, the entries never relocate, and
propagation resolves them without touching the arena.  The trail /
reason / level tables are preallocated arrays indexed by variable, and
``vals`` is indexed by packed literal (both polarities written on
assignment) so valuation is a single load.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from .cnf import Cnf, pack_literal, unpack_literal

__all__ = ["SatStats", "SatResult", "CdclSolver", "solve_cnf"]

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"

#: Arena header width: [size, flags, lbd, activity] precede the literals.
HEADER = 4
FLAG_ORIGINAL = 0
FLAG_LEARNED = 1
FLAG_DEAD = 2
#: ``reasons[var]`` value for decisions / assumptions / level-0 units.
NO_REASON = -1


@dataclass
class SatStats:
    """Search statistics for one :meth:`CdclSolver.solve` call."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    original_clauses: int = 0
    deleted_clauses: int = 0
    time_seconds: float = 0.0
    # Inprocessing / arena counters (PR 7).
    inprocessings: int = 0
    vivified_clauses: int = 0
    vivified_literals: int = 0
    subsumed_clauses: int = 0
    compactions: int = 0
    # Clause-sharing counters (cube-and-conquer, PR 8).
    exported_clauses: int = 0
    imported_clauses: int = 0


@dataclass
class SatResult:
    """Outcome of a SAT call.

    ``status`` is ``"SAT"``, ``"UNSAT"`` or ``"UNKNOWN"``.  For SAT,
    ``model`` maps every variable to a boolean.  For UNSAT under
    assumptions, ``core`` holds the subset of assumption literals (signed,
    as passed in) whose conjunction with the clause database is already
    unsatisfiable.
    """

    status: str
    model: Optional[Dict[int, bool]] = None
    stats: SatStats = field(default_factory=SatStats)
    core: Optional[List[int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT


def _luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed."""
    x = i - 1
    seq = 0
    size = 1
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq


class CdclSolver:
    """Conflict-driven clause learning over a :class:`Cnf`.

    Parameters
    ----------
    cnf:
        The input formula.  Clauses are bulk-copied into the solver's
        arena straight from the packed representation; the input is not
        mutated.
    max_conflicts:
        Abort with ``UNKNOWN`` after this many conflicts (``None`` = off).
    time_limit:
        Abort with ``UNKNOWN`` after this many seconds (``None`` = off).
        May be reassigned between calls (incremental sessions do).
    inprocess:
        Enable vivification + learned-clause subsumption between
        ``_reduce_db`` rounds.  Exposed so differential tests can check
        that inprocessing never changes a verdict.
    """

    RESTART_BASE = 128
    VAR_DECAY = 0.95
    CLAUSE_DECAY = 0.999
    #: Learned clauses with LBD at or below this are never deleted
    #: ("glue" clauses in Glucose terminology).
    GLUE_LBD = 3
    #: Vivification looks at at most this many candidates per round ...
    VIVIFY_MAX_CLAUSES = 64
    #: ... and stops early once it has spent this many propagations.
    VIVIFY_BUDGET = 20000

    def __init__(
        self,
        cnf: Cnf,
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
        inprocess: bool = True,
    ) -> None:
        self.nvars = cnf.num_vars
        self.max_conflicts = max_conflicts
        self.time_limit = time_limit
        self.inprocess = inprocess
        self.stats = SatStats(original_clauses=len(cnf))

        n = self.nvars + 1
        #: Valuation indexed by packed literal: 1 true, -1 false, 0 unset.
        self.vals: List[int] = [0] * (2 * n)
        self.levels: List[int] = [0] * n
        self.reasons: List[int] = [NO_REASON] * n
        self.activity: List[float] = [0.0] * n
        #: Saved polarity bit per variable (1 = negative, the default).
        self.phase = bytearray(b"\x01" * n)
        #: Preallocated trail of packed literals; ``trail_size`` is the top.
        self.trail: List[int] = [0] * n
        self.trail_size = 0
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.cla_inc = 1.0

        #: The flat clause arena (see the module docstring for layout).
        self.arena: List = []
        #: Paired watcher arrays indexed by packed literal (size > 2).
        self.watch_blockers: List[List[int]] = [[] for _ in range(2 * n)]
        self.watch_refs: List[List[int]] = [[] for _ in range(2 * n)]
        #: Binary clauses live in their own paired arrays: the "blocker"
        #: is the other literal, and the entry never relocates, so the
        #: propagation pass over them is a pure read loop.
        self.bin_blockers: List[List[int]] = [[] for _ in range(2 * n)]
        self.bin_refs: List[List[int]] = [[] for _ in range(2 * n)]
        #: Refs of live learned clauses (may briefly contain dead refs
        #: between a deletion and the next filter; flags are authoritative).
        self.learned_refs: List[int] = []
        #: Non-unit original clause count (sizes the learned-DB limit).
        self.n_original = 0
        #: Size-bucketed free list of dead refs, refreshed on _reduce_db.
        self._free: Dict[int, List[int]] = {}
        self._wasted = 0
        self._ok = True
        self._units: List[int] = []
        self._heap: List = []
        #: Clause-sharing hooks (cube-and-conquer conduit, PR 8).
        #: ``export_hook(signed_lits, lbd)`` is called for every learned
        #: clause passing the size/glue admission filter below; learned
        #: units are exported with ``lbd=1``.  ``import_hook()`` returns
        #: signed clauses to adopt and is drained at restart boundaries
        #: (the solver is at the root level there, so imported clauses
        #: and units attach exactly like :meth:`add_clause` additions).
        #: Shared clauses are sound across cubes because nothing learned
        #: ever depends on assumptions (see
        #: :meth:`solve_under_assumptions`).
        self.export_hook: Optional[Callable[[List[int], int], None]] = None
        self.import_hook: Optional[Callable[[], List[List[int]]]] = None
        #: Admission filter: non-unit clauses are exported when they are
        #: short (at most ``export_max_size`` literals) *or* glue (LBD at
        #: most ``export_max_lbd``) — pigeonhole-style instances learn
        #: long low-LBD clauses, so an AND filter would share nothing.
        self.export_max_size = 8
        self.export_max_lbd = 4
        #: Scratch stamps for duplicate/tautology detection on insert.
        self._stamps: List[int] = [0] * (2 * n)
        self._stamp = 0

        self.attach_from(cnf, 0)

    # -- clause plumbing ----------------------------------------------------

    def attach_from(self, cnf: Cnf, start: int = 0) -> None:
        """Bulk-attach clauses ``start..`` of ``cnf``'s packed arena.

        Used at construction (``start=0``) and by incremental sessions
        feeding CNF growth into a live solver without materializing
        signed clause lists.  Backtracks to the root level first, like
        :meth:`add_clause`.
        """
        if cnf.num_vars > self.nvars:
            self.ensure_nvars(cnf.num_vars)
        self._backtrack(0)
        lits, starts = cnf.packed_arrays()
        stamps = self._stamps
        for i in range(start, len(starts) - 1):
            if not self._ok:
                return
            a = starts[i]
            b = starts[i + 1]
            self._stamp += 1
            stamp = self._stamp
            simplified: List[int] = []
            tautology = False
            for k in range(a, b):
                q = lits[k]
                if stamps[q ^ 1] == stamp:
                    tautology = True
                    break
                if stamps[q] != stamp:
                    stamps[q] = stamp
                    simplified.append(q)
            if not tautology:
                self._attach_simplified(simplified)

    def _attach_simplified(self, lits: List[int]) -> None:
        """Attach a deduplicated, tautology-free packed clause."""
        if not lits:
            self._ok = False
            return
        if len(lits) == 1:
            self._units.append(lits[0])
            return
        ref = self._alloc(lits, FLAG_ORIGINAL, 0)
        self.n_original += 1
        self._watch_clause(ref)

    def _alloc(self, lits: List[int], flags: int, lbd: int) -> int:
        """Place a clause in the arena, recycling a free slot if one fits."""
        size = len(lits)
        bucket = self._free.get(size)
        arena = self.arena
        if bucket:
            ref = bucket.pop()
            arena[ref] = size
            arena[ref + 1] = flags
            arena[ref + 2] = lbd
            arena[ref + 3] = 0
            arena[ref + HEADER : ref + HEADER + size] = lits
            self._wasted -= HEADER + size
            return ref
        ref = len(arena)
        arena.append(size)
        arena.append(flags)
        arena.append(lbd)
        arena.append(0)
        arena.extend(lits)
        return ref

    def _watch_clause(self, ref: int) -> None:
        """Watch the first two literals; binary clauses get their own lists."""
        arena = self.arena
        base = ref + HEADER
        l0 = arena[base]
        l1 = arena[base + 1]
        if arena[ref] == 2:
            self.bin_blockers[l0].append(l1)
            self.bin_refs[l0].append(ref)
            self.bin_blockers[l1].append(l0)
            self.bin_refs[l1].append(ref)
            return
        self.watch_blockers[l0].append(l1)
        self.watch_refs[l0].append(ref)
        self.watch_blockers[l1].append(l0)
        self.watch_refs[l1].append(ref)

    def _detach_clause(self, ref: int) -> None:
        """Remove the clause's two watch entries (cold path)."""
        arena = self.arena
        base = ref + HEADER
        binary = arena[ref] == 2
        for lit in (arena[base], arena[base + 1]):
            refs = self.bin_refs[lit] if binary else self.watch_refs[lit]
            idx = refs.index(ref)
            del refs[idx]
            if binary:
                del self.bin_blockers[lit][idx]
            else:
                del self.watch_blockers[lit][idx]

    def _mark_dead(self, ref: int) -> None:
        """Flag a (detached) clause dead; the slot is recycled later.

        The ``size`` slot is preserved so stride walks over the arena
        keep working; the ref enters the free list only when
        :meth:`_reduce_db` next rebuilds it, so a dead ref can never be
        reused while a stale copy of it is still held somewhere.
        """
        self._wasted += HEADER + self.arena[ref]
        self.arena[ref + 1] = FLAG_DEAD

    def add_clause(self, lits) -> None:
        """Add a clause of signed literals between solve calls.

        The solver backtracks to the root level; learned clauses and
        variable activities from earlier calls are retained, which is what
        makes lazy-refinement loops cheap when they reuse one solver.
        Only variables that existed at construction time may appear.
        """
        packed = []
        for lit in lits:
            if lit == 0 or abs(lit) > self.nvars:
                raise ValueError("invalid literal %r" % (lit,))
            packed.append((lit << 1) if lit > 0 else ((-lit) << 1) | 1)
        self.add_packed_clause(packed)

    def add_packed_clause(self, lits: List[int]) -> None:
        """Add a clause of packed literals between solve calls."""
        if not self._ok:
            return
        self._backtrack(0)
        stamps = self._stamps
        self._stamp += 1
        stamp = self._stamp
        simplified: List[int] = []
        for q in lits:
            if stamps[q ^ 1] == stamp:
                return  # tautology
            if stamps[q] != stamp:
                stamps[q] = stamp
                simplified.append(q)
        self._attach_simplified(simplified)

    def ensure_nvars(self, nvars: int) -> None:
        """Grow the variable space to ``nvars`` (incremental use).

        New variables start unassigned with zero activity and default
        phase; clauses, learned clauses, and saved activities/phases of
        existing variables are untouched, so a session can keep one
        solver alive while its CNF grows.
        """
        if nvars <= self.nvars:
            return
        grow = nvars - self.nvars
        self.vals.extend([0] * (2 * grow))
        self.levels.extend([0] * grow)
        self.reasons.extend([NO_REASON] * grow)
        self.activity.extend([0.0] * grow)
        self.phase.extend(b"\x01" * grow)
        self.trail.extend([0] * grow)
        self.watch_blockers.extend([] for _ in range(2 * grow))
        self.watch_refs.extend([] for _ in range(2 * grow))
        self.bin_blockers.extend([] for _ in range(2 * grow))
        self.bin_refs.extend([] for _ in range(2 * grow))
        self._stamps.extend([0] * (2 * grow))
        self.nvars = nvars

    # -- introspection (tests / debugging; not hot paths) -------------------

    def clause_signed(self, ref: int) -> List[int]:
        """The clause at ``ref`` as signed literals."""
        arena = self.arena
        base = ref + HEADER
        return [unpack_literal(q) for q in arena[base : base + arena[ref]]]

    def live_learned_refs(self) -> List[int]:
        arena = self.arena
        return [r for r in self.learned_refs if arena[r + 1] != FLAG_DEAD]

    def learned_signed(self) -> List[List[int]]:
        """Live learned clauses as signed-literal lists."""
        return [self.clause_signed(r) for r in self.live_learned_refs()]

    # -- assignment ---------------------------------------------------------

    def _assign(self, lit: int, reason: int) -> None:
        var = lit >> 1
        self.vals[lit] = 1
        self.vals[lit ^ 1] = -1
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.phase[var] = lit & 1
        self.trail[self.trail_size] = lit
        self.trail_size += 1

    def _backtrack(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        bound = self.trail_lim[level]
        vals = self.vals
        reasons = self.reasons
        trail = self.trail
        activity = self.activity
        heap = self._heap
        heappush = heapq.heappush
        # Unassignment is order-independent; iterate the slice directly.
        for lit in trail[bound:self.trail_size]:
            vals[lit] = 0
            vals[lit ^ 1] = 0
            var = lit >> 1
            reasons[var] = NO_REASON
            heappush(heap, (-activity[var], var))
        self.trail_size = bound
        del self.trail_lim[level:]
        if self.qhead > bound:
            self.qhead = bound

    # -- propagation --------------------------------------------------------

    def _propagate(self) -> int:  # repro: hot-loop
        """Unit propagation; returns the conflicting ref or ``NO_REASON``.

        This is the solver's hot loop and it is deliberately flat: every
        table is a cached local, valuation is one load (``vals`` indexes
        by packed literal), and watcher traversal walks two parallel int
        lists instead of tuple objects.  Binary clauses live in their own
        paired lists and are handled by a dedicated pass that never loads
        the arena or moves a watch — the "blocker" *is* the other
        literal, and the ref only matters for a reason or conflict.

        Each long-clause watch list is scanned in two phases: a read-only
        pass that runs until a watch actually leaves the list (most
        visits move nothing, so most scans never write), and a copy-down
        pass that compacts the survivors in place from that point on.
        """
        vals = self.vals
        arena = self.arena
        all_blockers = self.watch_blockers
        all_refs = self.watch_refs
        all_bin_blockers = self.bin_blockers
        all_bin_refs = self.bin_refs
        trail = self.trail
        levels = self.levels
        reasons = self.reasons
        phase = self.phase
        stats = self.stats
        lvl = len(self.trail_lim)
        qhead = self.qhead
        ts = self.trail_size
        props = 0
        while qhead < ts:
            fkey = trail[qhead] ^ 1
            qhead += 1
            props += 1
            # Binary pass: pure reads, the list never changes shape.
            bin_blockers = all_bin_blockers[fkey]
            if bin_blockers:
                for blocker, bref in zip(bin_blockers, all_bin_refs[fkey]):
                    bv = vals[blocker]
                    if bv > 0:
                        continue
                    if bv < 0:
                        self.qhead = qhead
                        self.trail_size = ts
                        stats.propagations += props
                        return bref
                    var = blocker >> 1
                    vals[blocker] = 1
                    vals[blocker ^ 1] = -1
                    levels[var] = lvl
                    reasons[var] = bref
                    phase[var] = blocker & 1
                    trail[ts] = blocker
                    ts += 1
            flevel = levels[fkey >> 1]
            blockers = all_blockers[fkey]
            refs = all_refs[fkey]
            i = 0
            relocated = False
            # Phase 1: nothing has left this list yet, so every survivor
            # is already in place — no compaction writes.  (In-place
            # stores during iteration are safe: the list only changes
            # shape in phase 2, and relocation appends target a
            # different literal's list — ``other`` is never false here
            # while ``fkey`` is, so the two can't alias.)
            for i, blocker in enumerate(blockers):
                if vals[blocker] > 0:
                    continue
                ref = refs[i]
                base = ref + 4
                # Ensure the falsified literal sits at slot base+1.
                first = arena[base]
                if first == fkey:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = fkey
                if first != blocker and vals[first] > 0:
                    blockers[i] = first
                    continue
                # Search for a replacement watch (ternary clauses — the
                # bulk of 3-CNF databases — skip the scan loop).
                size = arena[ref]
                if size == 3:
                    other = arena[base + 2]
                    if vals[other] >= 0:
                        if vals[other] > 0 and levels[other >> 1] <= flevel:
                            # Clause already satisfied: keep the (false)
                            # watch and remember the witness as blocker.
                            # Sound only while any backtrack unassigning
                            # the witness unassigns fkey too — hence the
                            # level guard.
                            blockers[i] = other
                            continue
                        # First relocation: drop to the copy-down pass.
                        arena[base + 1] = other
                        arena[base + 2] = fkey
                        all_blockers[other].append(first)
                        all_refs[other].append(ref)
                        relocated = True
                        break
                else:
                    end = base + size
                    k = base + 2
                    while k < end:
                        if vals[arena[k]] >= 0:
                            break
                        k += 1
                    if k < end:
                        other = arena[k]
                        if vals[other] > 0 and levels[other >> 1] <= flevel:
                            # Satisfied: keep the watch (level guard as
                            # above).
                            blockers[i] = other
                            continue
                        # Before paying for a relocation, scan the rest
                        # of the clause for a keepable true witness — a
                        # relocation costs two appends now and a revisit
                        # later, so a longer read-only scan wins.
                        k2 = k + 1
                        witness = -1
                        while k2 < end:
                            o2 = arena[k2]
                            if vals[o2] > 0 and levels[o2 >> 1] <= flevel:
                                witness = o2
                                break
                            k2 += 1
                        if witness >= 0:
                            blockers[i] = witness
                            continue
                        arena[base + 1] = other
                        arena[k] = fkey
                        all_blockers[other].append(first)
                        all_refs[other].append(ref)
                        relocated = True
                        break
                # No replacement: clause is unit or conflicting.
                blockers[i] = first
                fv = vals[first]
                if fv < 0:
                    self.qhead = qhead
                    self.trail_size = ts
                    stats.propagations += props
                    return ref
                # Inlined assignment of the implied literal.
                var = first >> 1
                vals[first] = 1
                vals[first ^ 1] = -1
                levels[var] = lvl
                reasons[var] = ref
                phase[var] = first & 1
                trail[ts] = first
                ts += 1
            if not relocated:
                continue
            # Phase 2: the slot at i is free; compact survivors down.
            n = len(blockers)
            j = i
            i += 1
            while i < n:
                blocker = blockers[i]
                bv = vals[blocker]
                if bv > 0:
                    blockers[j] = blocker
                    refs[j] = refs[i]
                    j += 1
                    i += 1
                    continue
                ref = refs[i]
                i += 1
                base = ref + 4
                first = arena[base]
                if first == fkey:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = fkey
                if first != blocker and vals[first] > 0:
                    blockers[j] = first
                    refs[j] = ref
                    j += 1
                    continue
                size = arena[ref]
                if size == 3:
                    other = arena[base + 2]
                    if vals[other] >= 0:
                        if vals[other] > 0 and levels[other >> 1] <= flevel:
                            # Satisfied: keep the watch, refresh the
                            # blocker (same level guard as in phase 1).
                            blockers[j] = other
                            refs[j] = ref
                            j += 1
                            continue
                        arena[base + 1] = other
                        arena[base + 2] = fkey
                        all_blockers[other].append(first)
                        all_refs[other].append(ref)
                        continue
                else:
                    end = base + size
                    k = base + 2
                    while k < end:
                        if vals[arena[k]] >= 0:
                            break
                        k += 1
                    if k < end:
                        other = arena[k]
                        if vals[other] > 0 and levels[other >> 1] <= flevel:
                            blockers[j] = other
                            refs[j] = ref
                            j += 1
                            continue
                        # Same extended witness scan as phase 1.
                        k2 = k + 1
                        witness = -1
                        while k2 < end:
                            o2 = arena[k2]
                            if vals[o2] > 0 and levels[o2 >> 1] <= flevel:
                                witness = o2
                                break
                            k2 += 1
                        if witness >= 0:
                            blockers[j] = witness
                            refs[j] = ref
                            j += 1
                            continue
                        arena[base + 1] = other
                        arena[k] = fkey
                        all_blockers[other].append(first)
                        all_refs[other].append(ref)
                        continue
                blockers[j] = first
                refs[j] = ref
                j += 1
                fv = vals[first]
                if fv < 0:
                    # Conflict: keep remaining watches in place.
                    while i < n:
                        blockers[j] = blockers[i]
                        refs[j] = refs[i]
                        j += 1
                        i += 1
                    del blockers[j:]
                    del refs[j:]
                    self.qhead = qhead
                    self.trail_size = ts
                    stats.propagations += props
                    return ref
                var = first >> 1
                vals[first] = 1
                vals[first ^ 1] = -1
                levels[var] = lvl
                reasons[var] = ref
                phase[var] = first & 1
                trail[ts] = first
                ts += 1
            del blockers[j:]
            del refs[j:]
        self.qhead = qhead
        self.trail_size = ts
        stats.propagations += props
        return NO_REASON

    # -- conflict analysis ---------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            self._rescale_var_activity()

    def _rescale_var_activity(self) -> None:
        activity = self.activity
        for v in range(1, self.nvars + 1):
            activity[v] *= 1e-100
        self.var_inc *= 1e-100
        # Heap keys predate the rescale by varying factors, so ordering
        # against fresh pushes would be wrong; rebuild from scratch.
        vals = self.vals
        heap = [
            (-activity[v], v)
            for v in range(1, self.nvars + 1)
            if vals[v << 1] == 0
        ]
        heapq.heapify(heap)
        self._heap = heap

    def _bump_clause(self, ref: int) -> None:
        arena = self.arena
        arena[ref + 3] += self.cla_inc
        if arena[ref + 3] > 1e20:
            self._rescale_clause_activity()

    def _rescale_clause_activity(self) -> None:
        # Stride-walk the whole arena (dead slots keep their size).
        arena = self.arena
        ref = 0
        end = len(arena)
        while ref < end:
            arena[ref + 3] *= 1e-20
            ref += HEADER + arena[ref]
        self.cla_inc *= 1e-20

    def _analyze(self, conflict: int):
        """First-UIP learning; returns ``(learned_lits, backtrack_level)``."""
        arena = self.arena
        levels = self.levels
        reasons = self.reasons
        trail = self.trail
        activity = self.activity
        var_inc = self.var_inc
        cla_inc = self.cla_inc
        learnt: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = bytearray(self.nvars + 1)
        counter = 0
        lit = -1
        ref = conflict
        index = self.trail_size - 1
        cur_level = len(self.trail_lim)

        while True:
            arena[ref + 3] += cla_inc
            if arena[ref + 3] > 1e20:
                self._rescale_clause_activity()
                cla_inc = self.cla_inc
            base = ref + HEADER
            # By convention arena[base] is the literal just resolved on
            # (for reason clauses); skip it on continuation rounds.
            start = base if lit < 0 else base + 1
            for k in range(start, base + arena[ref]):
                q = arena[k]
                var = q >> 1
                if seen[var] or levels[var] == 0:
                    continue
                seen[var] = 1
                activity[var] += var_inc
                if activity[var] > 1e100:
                    self._rescale_var_activity()
                    var_inc = self.var_inc
                if levels[var] == cur_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Pick the next trail literal to resolve on.
            while not seen[trail[index] >> 1]:
                index -= 1
            lit = trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learnt[0] = lit ^ 1
                break
            ref = reasons[var]
            # Reorder so arena[base] is the implied literal of this reason.
            base = ref + HEADER
            if arena[base] != lit:
                for k in range(base + 1, base + arena[ref]):
                    if arena[k] == lit:
                        arena[k] = arena[base]
                        arena[base] = lit
                        break

        learnt = self._minimize(learnt, seen)

        if len(learnt) == 1:
            return learnt, 0
        # Second-highest decision level among learnt literals.
        max_i = 1
        for i in range(2, len(learnt)):
            if levels[learnt[i] >> 1] > levels[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, levels[learnt[1] >> 1]

    def _minimize(self, learnt: List[int], seen: bytearray) -> List[int]:
        """Drop literals implied by the rest of the clause (simple check)."""
        arena = self.arena
        levels = self.levels
        reasons = self.reasons
        for lit in learnt[1:]:
            seen[lit >> 1] = 1
        out = [learnt[0]]
        for lit in learnt[1:]:
            var = lit >> 1
            reason = reasons[var]
            if reason < 0:
                out.append(lit)
                continue
            redundant = True
            base = reason + HEADER
            for k in range(base, base + arena[reason]):
                qvar = arena[k] >> 1
                if qvar == var:
                    continue
                if not seen[qvar] and levels[qvar] != 0:
                    redundant = False
                    break
            if not redundant:
                out.append(lit)
        for lit in learnt[1:]:
            seen[lit >> 1] = 0
        return out

    def _analyze_final(self, p: int) -> List[int]:
        """Final-conflict analysis (MiniSat's ``analyzeFinal``).

        Called when assumption ``p`` (packed) is already false under the
        current trail.  Walks the trail backwards from the top, expanding
        reason clauses, and collects the reason-free entries above level
        0 — during assumption processing every decision level is an
        assumption level, so those are exactly the assumption literals
        the falsification of ``p`` depends on.  The result (including
        ``p`` itself) is an unsat core: the clause database conjoined
        with exactly these literals is unsatisfiable.
        """
        core = [p]
        if not self.trail_lim:
            return core
        arena = self.arena
        levels = self.levels
        seen = bytearray(self.nvars + 1)
        seen[p >> 1] = 1
        for index in range(self.trail_size - 1, self.trail_lim[0] - 1, -1):
            lit = self.trail[index]
            var = lit >> 1
            if not seen[var]:
                continue
            reason = self.reasons[var]
            if reason < 0:
                core.append(lit)
            else:
                base = reason + HEADER
                for k in range(base, base + arena[reason]):
                    qvar = arena[k] >> 1
                    if qvar != var and levels[qvar] > 0:
                        seen[qvar] = 1
            seen[var] = 0
        return core

    # -- decision heuristic ---------------------------------------------------

    def _pick_branch_var(self) -> int:
        # Lazy heap: assigned entries are discarded on pop.  No staleness
        # check is needed for the rest: only trail variables are ever
        # bumped (in _analyze), so an *unassigned* variable's activity is
        # exactly what _backtrack pushed at its last unassignment, and
        # that entry outranks any older duplicate.  Activity rescaling is
        # the one exception and rebuilds the heap outright.
        heap = self._heap
        vals = self.vals
        heappop = heapq.heappop
        while heap:
            var = heappop(heap)[1]
            if vals[var << 1] == 0:
                return var
        return 0

    def _next_decision(self) -> int:
        """Next decision literal (packed); 0 when the assignment is total."""
        var = self._pick_branch_var()
        if var == 0:
            return 0
        return (var << 1) | self.phase[var]

    # -- learned clause DB ----------------------------------------------------

    def _locked_refs(self) -> Set[int]:
        """Refs currently serving as reasons on the trail."""
        reasons = self.reasons
        trail = self.trail
        locked = set()
        for t in range(self.trail_size):
            r = reasons[trail[t] >> 1]
            if r >= 0:
                locked.add(r)
        return locked

    def _reduce_db(self) -> None:
        """Drop the worse half of the learned-clause database.

        Retention is LBD-aware (Glucose-style): clauses are ranked by
        literal-block distance first (high LBD goes first) and activity
        second, and "glue" clauses (LBD <= :attr:`GLUE_LBD`), binary
        clauses, and clauses locked as reasons are never deleted.

        Afterwards the free list is rebuilt from the arena (recycling
        every dead slot, including vivification kills) and the arena is
        compacted if more than half of it is dead.
        """
        arena = self.arena
        learned = [r for r in self.learned_refs if arena[r + 1] != FLAG_DEAD]
        learned.sort(key=lambda r: (-arena[r + 2], arena[r + 3]))
        locked = self._locked_refs()
        keep: List[int] = []
        half = len(learned) // 2
        dropped = False
        for i, ref in enumerate(learned):
            if (
                i < half
                and arena[ref + 2] > self.GLUE_LBD
                and ref not in locked
                and arena[ref] > 2
            ):
                self._mark_dead(ref)
                self.stats.deleted_clauses += 1
                dropped = True
            else:
                keep.append(ref)
        self.learned_refs = keep
        if dropped:
            self._purge_dead_watches()
        self._rebuild_free_list()
        if self._wasted * 2 > len(arena):
            self._compact()

    def _purge_dead_watches(self) -> None:
        """Drop watch entries whose ref points at a dead clause."""
        arena = self.arena
        for all_blockers, all_refs in (
            (self.watch_blockers, self.watch_refs),
            (self.bin_blockers, self.bin_refs),
        ):
            for key in range(len(all_refs)):
                refs = all_refs[key]
                dirty = False
                for r in refs:
                    if arena[r + 1] == FLAG_DEAD:
                        dirty = True
                        break
                if not dirty:
                    continue
                blockers = all_blockers[key]
                j = 0
                for i in range(len(refs)):
                    r = refs[i]
                    if arena[r + 1] == FLAG_DEAD:
                        continue
                    blockers[j] = blockers[i]
                    refs[j] = r
                    j += 1
                del blockers[j:]
                del refs[j:]

    def _rebuild_free_list(self) -> None:
        """Collect every dead slot into the size-bucketed free list."""
        arena = self.arena
        free: Dict[int, List[int]] = {}
        ref = 0
        end = len(arena)
        while ref < end:
            size = arena[ref]
            if arena[ref + 1] == FLAG_DEAD:
                free.setdefault(size, []).append(ref)
            ref += HEADER + size
        self._free = free

    def _compact(self) -> None:
        """Slide live clauses down, remapping every stored ref.

        Only called between conflicts at a point where no propagation is
        in flight (from :meth:`_reduce_db`), so the refs to remap are
        exactly: learned refs, trail reasons, and watch entries (both the
        long-clause and the binary lists).
        """
        arena = self.arena
        new_arena: List = []
        remap: Dict[int, int] = {}
        ref = 0
        end = len(arena)
        while ref < end:
            size = arena[ref]
            nxt = ref + HEADER + size
            if arena[ref + 1] != FLAG_DEAD:
                remap[ref] = len(new_arena)
                new_arena.extend(arena[ref:nxt])
            ref = nxt
        self.arena = new_arena
        self.learned_refs = [remap[r] for r in self.learned_refs]
        reasons = self.reasons
        trail = self.trail
        for t in range(self.trail_size):
            var = trail[t] >> 1
            r = reasons[var]
            if r >= 0:
                reasons[var] = remap[r]
        for refs in self.watch_refs:
            for i in range(len(refs)):
                refs[i] = remap[refs[i]]
        for refs in self.bin_refs:
            for i in range(len(refs)):
                refs[i] = remap[refs[i]]
        self._free = {}
        self._wasted = 0
        self.stats.compactions += 1

    # -- inprocessing ---------------------------------------------------------

    def _inprocess(self) -> bool:
        """Vivify + subsume the learned DB at the root level.

        Returns ``False`` when a root-level contradiction is derived
        (the clause database alone is unsatisfiable).  Runs just before
        :meth:`_reduce_db`, which recycles the slots killed here.
        """
        self._backtrack(0)
        self.stats.inprocessings += 1
        self._subsume_learned()
        return self._vivify()

    def _subsume_learned(self) -> None:
        """Backward subsumption among live learned clauses.

        Signature-filtered subset tests: each clause carries a 64-bit
        variable signature; ``C`` subsumes ``D`` only if ``sig(C)`` is a
        subset of ``sig(D)``.  Victims are found through an occurrence
        index on the clause's least-common literal.  Reason-locked
        clauses are never removed.
        """
        arena = self.arena
        refs = [r for r in self.learned_refs if arena[r + 1] != FLAG_DEAD]
        if len(refs) < 2:
            return
        locked = self._locked_refs()
        sigs: Dict[int, int] = {}
        occ: Dict[int, List[int]] = {}
        for r in refs:
            base = r + HEADER
            sig = 0
            for k in range(base, base + arena[r]):
                q = arena[k]
                sig |= 1 << ((q >> 1) & 63)
                occ.setdefault(q, []).append(r)
            sigs[r] = sig
        refs.sort(key=lambda r: arena[r])
        removed = 0
        for r in refs:
            if arena[r + 1] == FLAG_DEAD:
                continue
            base = r + HEADER
            size = arena[r]
            lits = arena[base : base + size]
            best = min(lits, key=lambda q: len(occ.get(q, ())))
            sig = sigs[r]
            litset = frozenset(lits)
            for cand in occ.get(best, ()):
                if cand == r or arena[cand + 1] == FLAG_DEAD:
                    continue
                if arena[cand] <= size or cand in locked:
                    continue
                if sig & ~sigs[cand]:
                    continue
                cbase = cand + HEADER
                if litset.issubset(arena[cbase : cbase + arena[cand]]):
                    self._detach_clause(cand)
                    self._mark_dead(cand)
                    removed += 1
        if removed:
            self.learned_refs = [
                r for r in self.learned_refs if arena[r + 1] != FLAG_DEAD
            ]
            self.stats.subsumed_clauses += removed

    def _vivify(self) -> bool:
        """Bounded clause vivification over the learned DB.

        Candidates are the live, unlocked, non-binary learned clauses
        with the best (lowest) LBD.  Returns ``False`` on a root-level
        contradiction.
        """
        arena = self.arena
        locked = self._locked_refs()
        cands = [
            r
            for r in self.learned_refs
            if arena[r + 1] != FLAG_DEAD and arena[r] > 2 and r not in locked
        ]
        cands.sort(key=lambda r: (arena[r + 2], arena[r]))
        del cands[self.VIVIFY_MAX_CLAUSES :]
        start_props = self.stats.propagations
        changed = False
        ok = True
        for ref in cands:
            if self.stats.propagations - start_props > self.VIVIFY_BUDGET:
                break
            result = self._vivify_one(ref)
            if result is None:
                ok = False
                break
            changed = changed or result
        if changed or not ok:
            self.learned_refs = [
                r for r in self.learned_refs if arena[r + 1] != FLAG_DEAD
            ]
        return ok

    def _vivify_one(self, ref: int) -> Optional[bool]:
        """Vivify one clause; ``True`` if changed, ``None`` on root conflict.

        The clause ``C = q1 ... qn`` is detached, then each literal is
        checked against the rest of the database by assuming the
        negations of the prefix:

        * ``qi`` true at level 0 -> the whole clause is satisfied: delete;
        * ``qi`` true under the scratch assumptions -> the prefix plus
          ``qi`` is implied: shorten to it;
        * ``qi`` false (any level) -> drop ``qi`` from the clause;
        * otherwise assume ``not qi``; a propagation conflict means the
          prefix plus ``qi`` is already implied: shorten to it.

        Every scratch decision is popped before returning.  A clause
        vivified down to one literal becomes a persistent unit; down to
        zero literals, a root-level contradiction.
        """
        arena = self.arena
        base = ref + HEADER
        size = arena[ref]
        lits = arena[base : base + size]
        vals = self.vals
        levels = self.levels
        self._detach_clause(ref)
        kept: List[int] = []
        satisfied = False
        for q in lits:
            v = vals[q]
            if v > 0:
                if levels[q >> 1] == 0:
                    satisfied = True
                else:
                    kept.append(q)
                break
            if v < 0:
                continue  # falsified under the prefix: drop the literal
            self.trail_lim.append(self.trail_size)
            self._assign(q ^ 1, NO_REASON)
            kept.append(q)
            if self._propagate() >= 0:
                break
        self._backtrack(0)
        if satisfied:
            self._mark_dead(ref)
            self.stats.vivified_clauses += 1
            return True
        if len(kept) == size:
            self._watch_clause(ref)
            return False
        self.stats.vivified_clauses += 1
        self.stats.vivified_literals += size - len(kept)
        if not kept:
            self._ok = False
            self._mark_dead(ref)
            return None
        if len(kept) == 1:
            self._mark_dead(ref)
            unit = kept[0]
            self._units.append(unit)
            v = vals[unit]
            if v < 0:
                self._ok = False
                return None
            if v == 0:
                self._assign(unit, NO_REASON)
                if self._propagate() >= 0:
                    self._ok = False
                    return None
            return True
        new_ref = self._alloc(
            kept, FLAG_LEARNED, min(arena[ref + 2], len(kept))
        )
        self.learned_refs.append(new_ref)
        self._watch_clause(new_ref)
        self._mark_dead(ref)
        return True

    # -- clause sharing -------------------------------------------------------

    def _import_shared(self) -> bool:
        """Adopt clauses from :attr:`import_hook`; ``False`` = root conflict.

        Called at restart boundaries, where the solver sits at decision
        level 0: every imported clause attaches through the
        :meth:`add_clause` path (deduplication, unit extraction), pending
        units are flushed onto the root trail, and one propagation round
        integrates the new clauses.  A contradiction here means the
        clause database alone is unsatisfiable.
        """
        assert self.import_hook is not None
        clauses = self.import_hook()
        if not clauses:
            return True
        for lits in clauses:
            self.add_clause(lits)
            self.stats.imported_clauses += 1
        if not self._ok:
            return False
        vals = self.vals
        for lit in self._units:
            val = vals[lit]
            if val < 0:
                return False
            if val == 0:
                self._assign(lit, NO_REASON)
        return self._propagate() < 0

    # -- main loop ------------------------------------------------------------

    def solve(self) -> SatResult:
        """Run the CDCL search.  May be called repeatedly; clauses added
        with :meth:`add_clause` in between are taken into account and all
        learned clauses/activities carry over."""
        return self.solve_under_assumptions(())

    def solve_under_assumptions(self, assumptions=()) -> SatResult:
        """Solve under temporary assumption literals (MiniSat-style).

        Assumptions are signed literals, as is the returned
        :attr:`SatResult.core`.  Each assumption occupies its own
        decision level before any real decision (an already-satisfied
        assumption gets an empty "dummy" level so levels and assumption
        indices stay aligned across backjumps).  When an assumption is
        falsified, final-conflict analysis produces an unsat core over
        the assumption literals.

        Assumptions are *not* clauses: nothing learned ever depends on
        them.  Learned clauses are resolvents of database clauses only
        (assumptions enter analysis as reason-free decisions, which are
        never resolved on), so the full learned-clause database, variable
        activities, and saved phases safely carry over to later calls
        with different — or no — assumptions.
        """
        start = time.perf_counter()
        packed_assumptions: List[int] = []
        for lit in assumptions:
            if lit == 0 or abs(lit) > self.nvars:
                raise ValueError("invalid assumption literal %r" % (lit,))
            packed_assumptions.append(pack_literal(lit))

        self._backtrack(0)
        # Re-propagate the whole root-level trail: clauses added since the
        # last call may be watched on literals that were already falsified
        # at level 0 and would otherwise never be examined.
        self.qhead = 0
        activity = self.activity
        heap = [(-activity[var], var) for var in range(1, self.nvars + 1)]
        heapq.heapify(heap)
        self._heap = heap

        if not self._ok:
            return self._finish(UNSAT, start, core=[])

        # Level-0 units.
        vals = self.vals
        for lit in self._units:
            val = vals[lit]
            if val < 0:
                return self._finish(UNSAT, start, core=[])
            if val == 0:
                self._assign(lit, NO_REASON)
        if self._propagate() >= 0:
            return self._finish(UNSAT, start, core=[])
        # A solve call is a restart boundary too: cube workers often
        # finish a cube between two Luby restarts, and clauses shared by
        # their peers must not wait a full restart period to arrive.
        if self.import_hook is not None and not self._import_shared():
            return self._finish(UNSAT, start, core=[])

        max_learned = max(self.n_original // 3, 2000)
        conflicts_until_restart = self.RESTART_BASE * _luby(1)
        restart_count = 1
        conflicts_since_restart = 0
        levels = self.levels

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if not self.trail_lim:
                    return self._finish(UNSAT, start, core=[])
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    unit = learnt[0]
                    if self.export_hook is not None:
                        self.stats.exported_clauses += 1
                        self.export_hook([unpack_literal(unit)], 1)
                    if vals[unit] < 0:
                        return self._finish(UNSAT, start, core=[])
                    if vals[unit] == 0:
                        self._assign(unit, NO_REASON)
                else:
                    lbd = len({levels[q >> 1] for q in learnt})
                    ref = self._alloc(learnt, FLAG_LEARNED, lbd)
                    self.learned_refs.append(ref)
                    self.stats.learned_clauses += 1
                    self._watch_clause(ref)
                    self._bump_clause(ref)
                    self._assign(learnt[0], ref)
                    if self.export_hook is not None and (
                        len(learnt) <= self.export_max_size
                        or lbd <= self.export_max_lbd
                    ):
                        self.stats.exported_clauses += 1
                        self.export_hook(
                            [unpack_literal(q) for q in learnt], lbd
                        )
                self.var_inc /= self.VAR_DECAY
                self.cla_inc /= self.CLAUSE_DECAY

                if (
                    self.max_conflicts is not None
                    and self.stats.conflicts >= self.max_conflicts
                ):
                    return self._finish(UNKNOWN, start)
                if (
                    self.time_limit is not None
                    and self.stats.conflicts % 64 == 0
                    and time.perf_counter() - start > self.time_limit
                ):
                    return self._finish(UNKNOWN, start)
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_count += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self.RESTART_BASE * _luby(
                    restart_count
                )
                # Backtracking to 0 pops the assumption levels too; the
                # decision step below re-pushes them in order.
                self._backtrack(0)
                if self.import_hook is not None and not self._import_shared():
                    return self._finish(UNSAT, start, core=[])
                continue

            if len(self.learned_refs) - self.trail_size >= max_learned:
                if self.inprocess and not self._inprocess():
                    return self._finish(UNSAT, start, core=[])
                self._reduce_db()
                max_learned = int(max_learned * 1.3)

            # Assumption levels precede real decisions.
            lit = 0
            while len(self.trail_lim) < len(packed_assumptions):
                p = packed_assumptions[len(self.trail_lim)]
                val = vals[p]
                if val > 0:
                    self.trail_lim.append(self.trail_size)  # dummy level
                elif val < 0:
                    return self._finish(
                        UNSAT, start, core=self._analyze_final(p)
                    )
                else:
                    lit = p
                    break
            if lit == 0:
                lit = self._next_decision()
                if lit == 0:
                    model = {
                        v: vals[v << 1] > 0
                        for v in range(1, self.nvars + 1)
                    }
                    return self._finish(SAT, start, model=model)
                self.stats.decisions += 1
            self.trail_lim.append(self.trail_size)
            if len(self.trail_lim) > self.stats.max_decision_level:
                self.stats.max_decision_level = len(self.trail_lim)
            self._assign(lit, NO_REASON)

    def _finish(
        self,
        status: str,
        start: float,
        model: Optional[Dict[int, bool]] = None,
        core: Optional[List[int]] = None,
    ) -> SatResult:
        self.stats.time_seconds = time.perf_counter() - start
        if core:
            core = [unpack_literal(q) for q in core]
        return SatResult(status, model=model, stats=self.stats, core=core)


def solve_cnf(
    cnf: Cnf,
    max_conflicts: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> SatResult:
    """One-shot convenience wrapper around :class:`CdclSolver`."""
    return CdclSolver(
        cnf, max_conflicts=max_conflicts, time_limit=time_limit
    ).solve()
