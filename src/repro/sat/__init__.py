"""Propositional substrate: CNF, DIMACS I/O, Tseitin, preprocessing, CDCL."""

from .cnf import Cnf
from .dimacs import dumps, loads, read_dimacs, write_dimacs
from .preprocess import PreprocessResult, PreprocessStats, preprocess_cnf
from .solver import CdclSolver, SatResult, SatStats, solve_cnf
from .tseitin import compute_polarities, to_cnf, tseitin

__all__ = [
    "Cnf",
    "dumps",
    "loads",
    "read_dimacs",
    "write_dimacs",
    "PreprocessResult",
    "PreprocessStats",
    "preprocess_cnf",
    "CdclSolver",
    "SatResult",
    "SatStats",
    "solve_cnf",
    "compute_polarities",
    "to_cnf",
    "tseitin",
]
