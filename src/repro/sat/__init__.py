"""Propositional substrate: CNF, DIMACS I/O, Tseitin, CDCL solver."""

from .cnf import Cnf
from .dimacs import dumps, loads, read_dimacs, write_dimacs
from .solver import CdclSolver, SatResult, SatStats, solve_cnf
from .tseitin import to_cnf, tseitin

__all__ = [
    "Cnf",
    "dumps",
    "loads",
    "read_dimacs",
    "write_dimacs",
    "CdclSolver",
    "SatResult",
    "SatStats",
    "solve_cnf",
    "to_cnf",
    "tseitin",
]
