"""DIMACS CNF reading and writing.

Provided so that encodings produced by this package can be cross-checked
with external SAT solvers (the paper used zChaff 2001.2.17), and so random
DIMACS instances can be fed to :mod:`repro.sat.solver` in tests.

Both directions talk to the packed clause arena directly: the writer
serializes straight from :meth:`Cnf.packed_arrays` (no signed clause
lists are materialized) and the reader packs literals as it parses.
"""

from __future__ import annotations

from typing import TextIO

from .cnf import Cnf

__all__ = ["write_dimacs", "read_dimacs", "dumps", "loads"]


def write_dimacs(cnf: Cnf, fp: TextIO, comment: str = "") -> None:
    """Write ``cnf`` to ``fp`` in DIMACS format.

    The whole file is serialized into one buffer and written with a
    single ``fp.write`` — per-clause writes dominate serialization time
    on large CNFs (two buffered-IO calls per clause).
    """
    lits, starts = cnf.packed_arrays()
    lines = []
    if comment:
        for line in comment.splitlines():
            lines.append("c %s" % line)
    lines.append("p cnf %d %d" % (cnf.num_vars, len(starts) - 1))
    for i in range(len(starts) - 1):
        row = [
            ("-%d" % (q >> 1)) if q & 1 else ("%d" % (q >> 1))
            for q in lits[starts[i] : starts[i + 1]]
        ]
        row.append("0")
        lines.append(" ".join(row))
    lines.append("")
    fp.write("\n".join(lines))


def read_dimacs(fp: TextIO) -> Cnf:
    """Read a DIMACS CNF file into a :class:`Cnf`."""
    cnf = Cnf()
    declared_vars = None
    pending: list = []
    for raw in fp:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError("malformed problem line: %r" % line)
            declared_vars = int(parts[2])
            while cnf.num_vars < declared_vars:
                cnf.new_var()
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                cnf.add_packed_clause(pending)
                pending = []
            else:
                while abs(lit) > cnf.num_vars:
                    cnf.new_var()
                pending.append(
                    (lit << 1) if lit > 0 else ((-lit) << 1) | 1
                )
    if pending:
        cnf.add_packed_clause(pending)
    return cnf


def dumps(cnf: Cnf, comment: str = "") -> str:
    import io

    buf = io.StringIO()
    write_dimacs(cnf, buf, comment)
    return buf.getvalue()


def loads(text: str) -> Cnf:
    import io

    return read_dimacs(io.StringIO(text))
