"""Differential and metamorphic fuzzing of the decision procedures.

The paper's argument rests on SD, EIJ, HYBRID and the lazy/SVC baselines
agreeing on validity; this package turns that agreement into an always-on
harness:

* :mod:`repro.fuzz.profiles` — tunable generation profiles mirroring the
  comparison-class structure HYBRID partitions on (equality-heavy,
  offset-heavy, UF-heavy, mixed);
* :mod:`repro.fuzz.generator` — a seeded random SUF formula generator;
* :mod:`repro.fuzz.oracle` — the differential oracle: every procedure is
  run on each sample, verdicts are cross-checked, and countermodels are
  re-validated against the reference semantics;
* :mod:`repro.fuzz.metamorphic` — equivalence-preserving transforms that
  must not change the verdict;
* :mod:`repro.fuzz.shrink` — a delta-debugging shrinker that minimises
  any discrepancy to a small reproducer;
* :mod:`repro.fuzz.harness` — the campaign driver behind
  ``repro fuzz`` and the CI smoke test.
"""

from .generator import generate_formula
from .harness import FuzzConfig, FuzzReport, run_campaign
from .metamorphic import TRANSFORMS, apply_transform
from .oracle import (
    Discrepancy,
    default_methods,
    differential_check,
    inject_strictness_bug,
)
from .profiles import PROFILES, Profile
from .shrink import shrink

__all__ = [
    "PROFILES",
    "Profile",
    "generate_formula",
    "Discrepancy",
    "default_methods",
    "differential_check",
    "inject_strictness_bug",
    "TRANSFORMS",
    "apply_transform",
    "shrink",
    "FuzzConfig",
    "FuzzReport",
    "run_campaign",
]
