"""The fuzzing campaign driver behind ``repro fuzz``.

One iteration = generate a sample for the next profile (or, in corpus
mode, mutate the next parsed ``.smt2`` instance through the metamorphic
transforms), run the
differential oracle, then (for agreeing samples) check that the
metamorphic transforms preserve the consensus verdict.  Any failure is
delta-debugged down to a minimal reproducer and serialized twice — the
exact s-expression syntax the ``repro check`` CLI reads back, and an
SMT-LIB 2 script for external solvers — under ``fuzz-failures/``.

Everything is deterministic in ``(seed, profile, iterations)``; the seed
is echoed in every report and stamped into every reproducer.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..logic.printer import to_sexpr
from ..logic.smtlib import to_smtlib_script
from ..logic.terms import Formula
from ..logic.traversal import collect_atoms, dag_size
from .generator import generate_formula
from .metamorphic import TRANSFORMS, apply_transform
from .oracle import (
    DEFAULT_ORACLE_LIMIT,
    Discrepancy,
    MethodOutcome,
    check_outcomes,
    consensus_verdict,
    decided_verdict,
    default_methods,
    run_methods,
)
from .profiles import PROFILES, profile_by_name
from .shrink import shrink_report

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzReport", "run_campaign"]

#: Transforms per agreeing sample; more would slow the loop for little
#: extra coverage since successive iterations rotate through all of them.
_TRANSFORMS_PER_SAMPLE = 2


@dataclass
class FuzzConfig:
    """Campaign parameters; everything downstream is derived from these."""

    iterations: int = 500
    seed: int = 0
    profile: str = "all"  # a profile name, or "all" to rotate
    metamorphic: bool = True
    shrink: bool = True
    out_dir: Optional[str] = "fuzz-failures"
    methods: Optional[Dict[str, Callable[[Formula], MethodOutcome]]] = None
    oracle_limit: int = DEFAULT_ORACLE_LIMIT
    max_failures: int = 5
    max_shrink_checks: int = 600
    #: When set, samples come from the ``.smt2`` scripts under this
    #: directory (mutated through the metamorphic transforms) instead of
    #: the random generator — real-world shapes for the oracle to chew.
    corpus_dir: Optional[str] = None

    def profile_names(self) -> List[str]:
        if self.profile == "all":
            return sorted(PROFILES)
        return [profile_by_name(self.profile).name]


@dataclass
class FuzzFailure:
    """One discrepancy: the raw sample, its minimised form, and files."""

    iteration: int
    profile: str
    discrepancy: Discrepancy
    original: Formula
    shrunk: Formula
    shrink_checks: int = 0
    paths: List[str] = field(default_factory=list)


@dataclass
class FuzzReport:
    config: FuzzConfig
    iterations_run: int = 0
    decided: int = 0  # samples where the brute/any oracle decided
    valid_count: int = 0
    invalid_count: int = 0
    metamorphic_checks: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_lines(self) -> List[str]:
        config = self.config
        lines = [
            "fuzz: %d iteration(s), seed=%d, profile=%s"
            % (self.iterations_run, config.seed, config.profile),
            "      %d decided (%d valid, %d invalid), "
            "%d metamorphic check(s), %.1fs"
            % (
                self.decided,
                self.valid_count,
                self.invalid_count,
                self.metamorphic_checks,
                self.elapsed_seconds,
            ),
        ]
        if self.ok:
            lines.append("      no discrepancies")
        for failure in self.failures:
            lines.append(
                "FAIL  iteration %d [%s]: %s"
                % (
                    failure.iteration,
                    failure.profile,
                    failure.discrepancy.describe(),
                )
            )
            lines.append(
                "      shrunk %d -> %d DAG nodes (%d atoms): %s"
                % (
                    dag_size(failure.original),
                    dag_size(failure.shrunk),
                    len(collect_atoms(failure.shrunk)),
                    to_sexpr(failure.shrunk),
                )
            )
            for path in failure.paths:
                lines.append("      wrote %s" % path)
        return lines


def _load_corpus(corpus_dir: str) -> List[tuple]:
    """``(name, validity query)`` per parseable ``.smt2`` instance.

    Out-of-fragment or malformed files are skipped (external corpora
    legitimately contain them — ``repro compete`` is where they are
    accounted for); an empty result is an error.
    """
    from ..logic.smtlib import SmtLibError, parse_smtlib
    from ..logic.terms import Not

    samples: List[tuple] = []
    for dirpath, dirnames, filenames in os.walk(corpus_dir):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".smt2"):
                continue
            path = os.path.join(dirpath, filename)
            try:
                with open(path) as fp:
                    script = parse_smtlib(fp.read())
            except SmtLibError:
                continue
            samples.append(
                (os.path.relpath(path, corpus_dir), Not(script.conjunction()))
            )
    if not samples:
        raise ValueError(
            "no parseable .smt2 instance under %r" % corpus_dir
        )
    return samples


def _mutate_sample(formula: Formula, rng: random.Random) -> Formula:
    """A corpus sample, pushed through a short random transform chain.

    A zero-length chain (about a third of draws) replays the instance
    verbatim; longer chains walk its verdict-preserving neighbourhood so
    repeated passes over a small corpus keep producing fresh shapes.
    """
    names = [name for name, _ in TRANSFORMS]
    for _ in range(rng.randint(0, 2)):
        variant = apply_transform(rng.choice(names), formula, rng)
        if variant is not None:
            formula = variant
    return formula


def _metamorphic_discrepancy(
    formula: Formula,
    baseline: Optional[bool],
    methods: Dict[str, Callable[[Formula], MethodOutcome]],
    rng: random.Random,
    report: FuzzReport,
    transform_names: List[str],
) -> Optional[Discrepancy]:
    """Check that each transform preserves the consensus verdict."""
    if baseline is None:
        return None
    for name in transform_names:
        variant = apply_transform(name, formula, rng)
        if variant is None:
            continue
        report.metamorphic_checks += 1
        verdict = consensus_verdict(variant, methods)
        if verdict is not None and verdict != baseline:
            return Discrepancy(
                kind="metamorphic",
                formula=formula,
                detail=(
                    "verdict flipped from %s to %s under %s"
                    % (baseline, verdict, name)
                ),
                verdicts={"baseline": baseline, "transformed": verdict},
                transform=name,
            )
    return None


def _same_failure(
    discrepancy: Discrepancy,
    methods: Dict[str, Callable[[Formula], MethodOutcome]],
    variant_methods: Dict[str, Callable[[Formula], MethodOutcome]],
    rng: random.Random,
) -> Callable[[Formula], bool]:
    """Shrink predicate: a discrepancy of the same kind still reproduces."""
    if discrepancy.kind == "metamorphic":
        transform = discrepancy.transform
        # A fixed transform seed keeps the variant of a given candidate
        # stable across shrink rounds.
        transform_seed = rng.random()

        def holds_meta(candidate: Formula) -> bool:
            baseline = consensus_verdict(candidate, methods)
            if baseline is None:
                return False
            variant = apply_transform(
                transform, candidate, random.Random(transform_seed)
            )
            if variant is None:
                return False
            verdict = consensus_verdict(variant, variant_methods)
            return verdict is not None and verdict != baseline

        return holds_meta

    def holds(candidate: Formula) -> bool:
        found = check_outcomes(candidate, run_methods(candidate, methods))
        return found is not None and found.kind == discrepancy.kind

    return holds


def _write_reproducer(
    out_dir: str, config: FuzzConfig, failure: FuzzFailure
) -> List[str]:
    os.makedirs(out_dir, exist_ok=True)
    stem = "seed%d-iter%04d-%s" % (
        config.seed,
        failure.iteration,
        failure.discrepancy.kind,
    )
    header = [
        "fuzz reproducer: %s" % failure.discrepancy.describe(),
        "campaign: seed=%d profile=%s iteration=%d"
        % (config.seed, failure.profile, failure.iteration),
        "replay: repro fuzz --iterations %d --seed %d --profile %s"
        % (config.iterations, config.seed, config.profile),
        "check:  repro check %s.sexpr --method <each>" % stem,
    ]
    paths = []
    sexpr_path = os.path.join(out_dir, stem + ".sexpr")
    with open(sexpr_path, "w") as fp:
        for line in header:
            fp.write("; %s\n" % line)
        fp.write(to_sexpr(failure.shrunk))
        fp.write("\n")
    paths.append(sexpr_path)
    smt_path = os.path.join(out_dir, stem + ".smt2")
    with open(smt_path, "w") as fp:
        fp.write(to_smtlib_script(failure.shrunk, comments=header))
    paths.append(smt_path)
    return paths


def run_campaign(
    config: FuzzConfig,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one differential + metamorphic fuzzing campaign."""
    methods = config.methods
    if methods is None:
        methods = default_methods(oracle_limit=config.oracle_limit)
    # Metamorphic variants are checked with the eager methods only: the
    # translate-offsets transform can push the brute-force domain bound
    # past its budget, and one procedure's verdict vs. the baseline is the
    # whole point of a metamorphic check anyway.
    variant_methods = {
        name: methods[name]
        for name in ("hybrid", "eij", "sd", "static")
        if name in methods
    } or methods
    report = FuzzReport(config=config)
    profiles = config.profile_names()
    corpus = (
        _load_corpus(config.corpus_dir)
        if config.corpus_dir is not None
        else None
    )
    transform_names = [name for name, _ in TRANSFORMS]
    started = time.perf_counter()

    for iteration in range(config.iterations):
        report.iterations_run = iteration + 1
        if corpus is not None:
            name, base = corpus[iteration % len(corpus)]
            profile = "corpus:%s" % name
            formula = _mutate_sample(
                base,
                random.Random("corpus:%d:%d" % (config.seed, iteration)),
            )
        else:
            profile = profiles[iteration % len(profiles)]
            formula = generate_formula(
                config.seed * 1_000_003 + iteration, profile
            )
        rng = random.Random(
            "meta:%d:%d:%s" % (config.seed, iteration, profile)
        )

        outcomes = run_methods(formula, methods)
        discrepancy = check_outcomes(formula, outcomes)
        if discrepancy is None:
            baseline = decided_verdict(outcomes)
            if baseline is not None:
                report.decided += 1
                if baseline:
                    report.valid_count += 1
                else:
                    report.invalid_count += 1
            if config.metamorphic:
                offset = iteration % len(transform_names)
                rotation = (
                    transform_names[offset:] + transform_names[:offset]
                )[:_TRANSFORMS_PER_SAMPLE]
                discrepancy = _metamorphic_discrepancy(
                    formula, baseline, variant_methods, rng, report, rotation
                )

        if discrepancy is not None:
            shrunk = formula
            checks = 0
            if config.shrink:
                result = shrink_report(
                    formula,
                    _same_failure(discrepancy, methods, variant_methods, rng),
                    max_checks=config.max_shrink_checks,
                )
                shrunk, checks = result.formula, result.checks
            failure = FuzzFailure(
                iteration=iteration,
                profile=profile,
                discrepancy=discrepancy,
                original=formula,
                shrunk=shrunk,
                shrink_checks=checks,
            )
            if config.out_dir:
                failure.paths = _write_reproducer(
                    config.out_dir, config, failure
                )
            report.failures.append(failure)
            if log:
                log(
                    "iteration %d [%s]: %s"
                    % (iteration, profile, discrepancy.describe())
                )
            if len(report.failures) >= config.max_failures:
                break

    report.elapsed_seconds = time.perf_counter() - started
    return report
