"""Delta-debugging shrinker: minimise a formula that exhibits a failure.

Classic greedy ddmin over the hash-consed DAG: propose structurally
smaller variants (drop a conjunct, promote a child, collapse a term),
keep any variant for which the caller's predicate still holds, and repeat
to a fixpoint.  The predicate is arbitrary — the harness passes "the same
kind of discrepancy still reproduces", re-running the full differential
oracle on every candidate, which stays cheap because candidates only ever
get smaller.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..logic.terms import (
    And,
    BoolConst,
    FALSE,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Node,
    Not,
    Offset,
    Or,
    Term,
    TRUE,
    Var,
)
from ..logic.traversal import collect_vars, dag_size, iter_dag
from .rewrite import replace_node

__all__ = ["shrink", "shrink_report", "ShrinkResult"]


def _formula_candidates(node: Formula) -> Iterator[Formula]:
    """Smaller formulas that could replace ``node``."""
    yield TRUE
    yield FALSE
    if isinstance(node, Not):
        yield node.arg
    elif isinstance(node, (And, Or)):
        cls = type(node)
        for arg in node.args:
            yield arg
        if len(node.args) > 2:
            for i in range(len(node.args)):
                yield cls(*(node.args[:i] + node.args[i + 1:]))
    elif isinstance(node, Implies):
        yield node.rhs
        yield Not(node.lhs)
        yield node.lhs
    elif isinstance(node, Iff):
        yield node.lhs
        yield node.rhs


def _term_candidates(node: Term, leaf: Optional[Var]) -> Iterator[Term]:
    """Smaller terms that could replace ``node``."""
    if leaf is not None and node is not leaf:
        yield leaf
    if isinstance(node, Offset):
        yield node.base
        if abs(node.k) > 1:
            yield Offset(node.base, node.k // 2)
    elif isinstance(node, Ite):
        yield node.then
        yield node.els
    elif isinstance(node, FuncApp):
        for arg in node.args:
            yield arg


def _candidates(root: Formula) -> Iterator[Formula]:
    """All one-step reductions of ``root``, largest targets first."""
    int_vars = collect_vars(root)
    leaf = int_vars[0] if int_vars else None
    nodes = sorted(iter_dag(root), key=dag_size, reverse=True)
    for node in nodes:
        if isinstance(node, Formula) and not isinstance(node, BoolConst):
            replacements: Iterator[Node] = _formula_candidates(node)
        elif isinstance(node, Term) and not isinstance(node, Var):
            replacements = _term_candidates(node, leaf)
        else:
            continue
        for replacement in replacements:
            if replacement is node:
                continue
            if node is root:
                if isinstance(replacement, Formula):
                    yield replacement
                continue
            reduced = replace_node(root, node, replacement)
            if reduced is not root:
                yield reduced


class ShrinkResult:
    """The minimised formula plus shrink-loop accounting."""

    def __init__(self, formula: Formula, checks: int, rounds: int) -> None:
        self.formula = formula
        self.checks = checks
        self.rounds = rounds


def shrink_report(
    formula: Formula,
    predicate: Callable[[Formula], bool],
    max_checks: int = 600,
) -> ShrinkResult:
    """Greedily minimise ``formula`` while ``predicate`` keeps holding.

    ``predicate(formula)`` is assumed true on entry.  ``max_checks`` caps
    predicate evaluations so a pathological failure cannot stall a
    campaign; the best formula found so far is returned either way.
    """
    current = formula
    checks = 0
    rounds = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        rounds += 1
        current_size = dag_size(current)
        for candidate in _candidates(current):
            if checks >= max_checks:
                break
            if dag_size(candidate) >= current_size:
                continue
            checks += 1
            if predicate(candidate):
                current = candidate
                improved = True
                break
    return ShrinkResult(current, checks, rounds)


def shrink(
    formula: Formula,
    predicate: Callable[[Formula], bool],
    max_checks: int = 600,
) -> Formula:
    """:func:`shrink_report` returning just the minimised formula."""
    return shrink_report(formula, predicate, max_checks).formula
