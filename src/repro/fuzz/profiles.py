"""Generation profiles for the fuzzer.

Each profile biases the random generator toward one of the comparison
classes the HYBRID method partitions on (paper §4): equality-only classes
(EIJ with dedicated equality variables), offset/inequality-heavy classes
(difference bounds, SD bit-vectors), and positive-equality function
applications (``V_p`` constants).  Fuzzing each regime separately keeps
every encoder path exercised even on small formulas.

Sizes are deliberately tiny: the brute-force oracle enumerates
``domain ** num_vars`` interpretations, so a couple of constants and a
handful of atoms is the sweet spot where every sample is fully decided
by the reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Profile", "PROFILES", "profile_by_name"]


@dataclass(frozen=True)
class Profile:
    """Tunable knobs for one generation regime.

    ``atom_weights`` is ``(eq, lt, boolvar)`` — relative odds of each leaf
    kind; ``connective_weights`` is ``(not, and, or, implies, iff)``.
    """

    name: str
    description: str
    max_vars: int = 3
    num_funcs: int = 0
    num_preds: int = 0
    num_bools: int = 1
    min_depth: int = 1
    max_depth: int = 3
    offset_prob: float = 0.3
    max_offset: int = 2
    func_prob: float = 0.0
    ite_prob: float = 0.15
    atom_weights: Tuple[float, float, float] = (0.5, 0.3, 0.2)
    connective_weights: Tuple[float, float, float, float, float] = (
        0.2,
        0.25,
        0.25,
        0.2,
        0.1,
    )


PROFILES: Dict[str, Profile] = {
    profile.name: profile
    for profile in (
        Profile(
            name="equality",
            description=(
                "equality-only atoms, no offsets — exercises EIJ "
                "equality variables and polynomial transitivity"
            ),
            max_vars=4,
            num_bools=1,
            offset_prob=0.0,
            max_offset=0,
            ite_prob=0.1,
            atom_weights=(0.85, 0.0, 0.15),
        ),
        Profile(
            name="offset",
            description=(
                "inequality- and offset-heavy — exercises difference "
                "bounds, Bellman-Ford decoding and SD comparators"
            ),
            max_vars=3,
            num_bools=0,
            offset_prob=0.6,
            max_offset=2,
            ite_prob=0.15,
            atom_weights=(0.3, 0.7, 0.0),
        ),
        Profile(
            name="uf",
            description=(
                "uninterpreted function/predicate applications — "
                "exercises elimination, V_p constants and lifting"
            ),
            max_vars=2,
            num_funcs=2,
            num_preds=1,
            num_bools=0,
            offset_prob=0.2,
            max_offset=1,
            func_prob=0.45,
            ite_prob=0.1,
            atom_weights=(0.55, 0.25, 0.2),
        ),
        Profile(
            name="mixed",
            description="everything at once, mirroring the random cross-method tests",
            max_vars=3,
            num_funcs=1,
            num_preds=1,
            num_bools=1,
            offset_prob=0.35,
            max_offset=2,
            func_prob=0.3,
            ite_prob=0.15,
            atom_weights=(0.45, 0.35, 0.2),
        ),
    )
}


def profile_by_name(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            "unknown profile %r; expected one of %s"
            % (name, ", ".join(sorted(PROFILES)))
        )
