"""Bottom-up DAG rewriting shared by the metamorphic transforms and the
shrinker.

:func:`repro.logic.traversal.map_terms` only maps term nodes; the fuzzer
also needs to rename predicate symbols and Boolean constants and to splice
an arbitrary replacement in for one chosen node, so this module provides a
general rebuild with per-node hooks.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    PredApp,
    Term,
    Var,
)
from ..logic.traversal import postorder

__all__ = ["rebuild", "replace_node"]


def _reconstruct(node: Node, memo: Dict[Node, Node]) -> Node:
    if isinstance(node, (Var, BoolVar, BoolConst)):
        return node
    if isinstance(node, Offset):
        return Offset(memo[node.base], node.k)
    if isinstance(node, FuncApp):
        return FuncApp(node.symbol, [memo[a] for a in node.args])
    if isinstance(node, Ite):
        return Ite(memo[node.cond], memo[node.then], memo[node.els])
    if isinstance(node, PredApp):
        return PredApp(node.symbol, [memo[a] for a in node.args])
    if isinstance(node, Not):
        return Not(memo[node.arg])
    if isinstance(node, And):
        return And(*[memo[a] for a in node.args])
    if isinstance(node, Or):
        return Or(*[memo[a] for a in node.args])
    if isinstance(node, Implies):
        return Implies(memo[node.lhs], memo[node.rhs])
    if isinstance(node, Iff):
        return Iff(memo[node.lhs], memo[node.rhs])
    if isinstance(node, Eq):
        return Eq(memo[node.lhs], memo[node.rhs])
    if isinstance(node, Lt):
        return Lt(memo[node.lhs], memo[node.rhs])
    raise TypeError("unknown node kind: %r" % (type(node),))


def rebuild(
    root: Node,
    term_fn: Optional[Callable[[Term], Term]] = None,
    formula_fn: Optional[Callable[[Formula], Formula]] = None,
) -> Node:
    """Reconstruct ``root`` bottom-up, mapping each rebuilt node.

    ``term_fn``/``formula_fn`` run on every node of the matching sort after
    its children have been rebuilt; either may return the node unchanged.
    """
    memo: Dict[Node, Node] = {}
    for node in postorder(root):
        new = _reconstruct(node, memo)
        # Hooks fire per *original* node.  When a smart constructor folds
        # the reconstruction into a different kind — e.g. shifting the
        # base of ``(pred v)`` gives ``Offset(succ v, -1)`` which folds
        # to the bare ``v`` — the folded node was already hooked at its
        # own visit, and hooking it again would apply the map twice.
        if type(new) is type(node):
            if term_fn is not None and isinstance(new, Term):
                new = term_fn(new)
            if formula_fn is not None and isinstance(new, Formula):
                new = formula_fn(new)
        memo[node] = new
    return memo[root]


def replace_node(root: Node, target: Node, replacement: Node) -> Node:
    """``root`` with every occurrence of ``target`` replaced.

    Occurrence is DAG identity: the hash-consed ``target`` node is one
    object however many syntactic positions it fills.
    """
    if root is target:
        return replacement
    memo: Dict[Node, Node] = {target: replacement}
    for node in postorder(root):
        if node in memo:
            continue
        memo[node] = _reconstruct(node, memo)
    return memo[root]
