"""Seeded random SUF formula generation, parameterised by profile.

Determinism contract: ``generate_formula(seed, profile)`` depends only on
its arguments — the same pair always yields the identical (hash-consed)
formula object, so any fuzzing failure is reproducible from the campaign
seed alone.
"""

from __future__ import annotations

import random
from typing import List, Union

from ..logic import builders as b
from ..logic.terms import Formula, Term
from .profiles import Profile, profile_by_name

__all__ = ["generate_formula"]


class _Generator:
    def __init__(self, rng: random.Random, profile: Profile) -> None:
        self.rng = rng
        self.p = profile
        self.vars = [
            b.const("v%d" % i)
            for i in range(rng.randint(1, profile.max_vars))
        ]
        self.funcs = [b.func("f%d" % i) for i in range(profile.num_funcs)]
        self.preds = [
            b.pred_symbol("p%d" % i) for i in range(profile.num_preds)
        ]
        self.bools = [b.bconst("B%d" % i) for i in range(profile.num_bools)]

    def term(self, depth: int) -> Term:
        rng, p = self.rng, self.p
        roll = rng.random()
        if depth <= 0 or roll < 0.45:
            term = rng.choice(self.vars)
        elif self.funcs and roll < 0.45 + p.func_prob:
            func = rng.choice(self.funcs)
            term = func(self.term(depth - 1))
        elif roll < 0.45 + p.func_prob + p.ite_prob:
            term = b.ite(
                self.formula(depth - 1),
                self.term(depth - 1),
                self.term(depth - 1),
            )
        else:
            term = rng.choice(self.vars)
        if p.max_offset and rng.random() < p.offset_prob:
            k = rng.randint(-p.max_offset, p.max_offset)
            term = b.offset(term, k)
        return term

    def atom(self, depth: int) -> Formula:
        rng, p = self.rng, self.p
        eq_w, lt_w, bool_w = p.atom_weights
        if not self.bools and not self.preds:
            bool_w = 0.0
        total = eq_w + lt_w + bool_w
        roll = rng.random() * total
        if roll < eq_w:
            return b.eq(self.term(depth), self.term(depth))
        if roll < eq_w + lt_w:
            return b.lt(self.term(depth), self.term(depth))
        if self.preds and (not self.bools or rng.random() < 0.5):
            pred = rng.choice(self.preds)
            return pred(self.term(depth))
        return rng.choice(self.bools)

    def formula(self, depth: int) -> Formula:
        rng, p = self.rng, self.p
        if depth <= 0 or rng.random() < 0.35:
            return self.atom(depth)
        weights = p.connective_weights
        roll = rng.random() * sum(weights)
        acc = 0.0
        for kind, weight in zip("nao=i", weights):
            acc += weight
            if roll < acc:
                break
        if kind == "n":
            return b.bnot(self.formula(depth - 1))
        if kind == "a":
            return b.band(self.formula(depth - 1), self.formula(depth - 1))
        if kind == "o":
            return b.bor(self.formula(depth - 1), self.formula(depth - 1))
        if kind == "=":
            return b.implies(self.formula(depth - 1), self.formula(depth - 1))
        return b.iff(self.formula(depth - 1), self.formula(depth - 1))


def generate_formula(
    seed: int, profile: Union[str, Profile] = "mixed"
) -> Formula:
    """A deterministic random SUF formula for the given seed and profile.

    The generator resamples (with a seed-derived offset) when the smart
    constructors fold the draw to a constant — ``true``/``false`` samples
    exercise nothing downstream.
    """
    if isinstance(profile, str):
        profile = profile_by_name(profile)
    for attempt in range(50):
        # String seeding is stable across processes (unlike hashing a
        # tuple, which PYTHONHASHSEED randomises).
        rng = random.Random("%d:%s:%d" % (seed, profile.name, attempt))
        gen = _Generator(rng, profile)
        depth = rng.randint(profile.min_depth, profile.max_depth)
        formula = gen.formula(depth)
        if formula.children():
            return formula
    return formula  # pathological profile; return the constant fold
