"""Verdict-preserving metamorphic transforms.

Each transform maps a SUF formula to an *equivalent* one (same truth value
under every interpretation, up to a bijective reinterpretation of the
vocabulary), so validity must be preserved exactly.  A procedure whose
verdict changes under any of these transforms has a bug even when no
reference oracle is available — that is the point of metamorphic testing.

The smart constructors fold trivial rewrites away (``Not(Not(f))`` *is*
``f``), so every transform here is built to survive construction-time
simplification: tautological guards use ``Or(Q, not Q)`` over a fresh
Boolean constant (which no constructor folds), and double negation pushes
the inner negation through connectives and atoms De-Morgan-style before
re-negating.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Not,
    Offset,
    Or,
    PredApp,
    TRUE,
    Var,
)
from ..logic.traversal import collect_bool_vars, collect_vars, postorder
from .rewrite import rebuild

__all__ = ["TRANSFORMS", "apply_transform", "structural_negation"]

Transform = Callable[[Formula, random.Random], Optional[Formula]]


def _fresh_bool(formula: Formula, rng: random.Random) -> BoolVar:
    used = {bv.name for bv in collect_bool_vars(formula)}
    index = rng.randint(0, 999)
    while "MT%d" % index in used:
        index += 1
    return BoolVar("MT%d" % index)


def _tautology(formula: Formula, rng: random.Random) -> Formula:
    """``Q or not Q`` for a fresh ``Q`` — true everywhere, folds nowhere."""
    q = _fresh_bool(formula, rng)
    return Or(q, Not(q))


def rename_vars(formula: Formula, rng: random.Random) -> Optional[Formula]:
    """Bijectively rename every constant and uninterpreted symbol."""
    int_vars = collect_vars(formula)
    bool_vars = collect_bool_vars(formula)
    if not int_vars and not bool_vars:
        return None
    perm = list(range(len(int_vars)))
    rng.shuffle(perm)
    var_map = {
        old: Var("r%d" % perm[i]) for i, old in enumerate(int_vars)
    }
    bool_map = {
        old: BoolVar("R%d" % i) for i, old in enumerate(bool_vars)
    }
    symbol_map: Dict[str, str] = {}

    def map_term(node):
        if isinstance(node, Var):
            return var_map.get(node, node)
        if isinstance(node, FuncApp):
            fresh = symbol_map.setdefault(
                "f:" + node.symbol, "rf%d" % len(symbol_map)
            )
            return FuncApp(fresh, node.args)
        return node

    def map_formula(node):
        if isinstance(node, BoolVar):
            return bool_map.get(node, node)
        if isinstance(node, PredApp):
            fresh = symbol_map.setdefault(
                "p:" + node.symbol, "rp%d" % len(symbol_map)
            )
            return PredApp(fresh, node.args)
        return node

    return rebuild(formula, term_fn=map_term, formula_fn=map_formula)


def translate_offsets(
    formula: Formula, rng: random.Random
) -> Optional[Formula]:
    """Shift every constant by one global ``k`` — a model bijection."""
    if not collect_vars(formula):
        return None
    k = rng.choice([-3, -2, -1, 1, 2, 3])

    def shift(node):
        if isinstance(node, Var):
            return Offset(node, k)
        return node

    return rebuild(formula, term_fn=shift)


def strengthen_antecedent(
    formula: Formula, rng: random.Random
) -> Optional[Formula]:
    """Guard with a tautological antecedent: ``F`` -> ``taut => F``."""
    return Implies(_tautology(formula, rng), formula)


def structural_negation(formula: Formula) -> Formula:
    """``not formula``, with the negation pushed through the structure.

    De Morgan over the connectives; at the atoms, integer reasoning:
    ``not (a = b)`` becomes ``a < b or b < a`` and ``not (a < b)`` becomes
    ``b < a + 1``.  The result is equivalent to ``Not(formula)`` but almost
    never syntactically a ``Not`` node, so re-negating it yields a
    structurally fresh equivalent of ``formula``.
    """
    memo: Dict[Formula, Formula] = {}
    for node in postorder(formula):
        if not isinstance(node, Formula):
            continue
        if isinstance(node, BoolConst):
            memo[node] = FALSE if node.value else TRUE
        elif isinstance(node, (BoolVar, PredApp)):
            memo[node] = Not(node)
        elif isinstance(node, Not):
            memo[node] = node.arg
        elif isinstance(node, And):
            memo[node] = Or(*[memo[a] for a in node.args])
        elif isinstance(node, Or):
            memo[node] = And(*[memo[a] for a in node.args])
        elif isinstance(node, Implies):
            memo[node] = And(node.lhs, memo[node.rhs])
        elif isinstance(node, Iff):
            memo[node] = Iff(node.lhs, memo[node.rhs])
        elif isinstance(node, Eq):
            memo[node] = Or(
                Lt(node.lhs, node.rhs), Lt(node.rhs, node.lhs)
            )
        elif isinstance(node, Lt):
            memo[node] = Lt(node.rhs, Offset(node.lhs, 1))
        else:
            raise TypeError("unknown formula kind: %r" % (type(node),))
    return memo[formula]


def double_negation(
    formula: Formula, rng: random.Random
) -> Optional[Formula]:
    """``F`` -> ``not (structural negation of F)``."""
    return Not(structural_negation(formula))


def introduce_ite(formula: Formula, rng: random.Random) -> Optional[Formula]:
    """Wrap one constant in a tautologically-guarded ITE.

    ``v`` becomes ``ITE(taut, v, v + 1)``: the guard is always true, so the
    value is unchanged, but every encoder now has to thread a guarded term
    through its atom translation.
    """
    int_vars = collect_vars(formula)
    if not int_vars:
        return None
    victim = rng.choice(int_vars)
    guard = _tautology(formula, rng)
    wrapped = Ite(guard, victim, Offset(victim, 1))

    def wrap(node):
        if node is victim:
            return wrapped
        return node

    # rebuild() maps bottom-up, so `wrapped` (which contains `victim`)
    # is not re-entered: the hook fires on the original leaf only.
    return rebuild(formula, term_fn=wrap)


TRANSFORMS: List[Tuple[str, Transform]] = [
    ("rename_vars", rename_vars),
    ("translate_offsets", translate_offsets),
    ("strengthen_antecedent", strengthen_antecedent),
    ("double_negation", double_negation),
    ("introduce_ite", introduce_ite),
]


def apply_transform(
    name: str, formula: Formula, rng: random.Random
) -> Optional[Formula]:
    """Apply one named transform; ``None`` when it does not apply."""
    for tname, fn in TRANSFORMS:
        if tname == name:
            result = fn(formula, rng)
            return None if result is formula else result
    raise ValueError("unknown transform %r" % name)
