"""The differential oracle: run every procedure, cross-check everything.

Oracle hierarchy (weakest assumptions first):

1. **brute force** (:mod:`repro.solvers.brute`) — enumeration against the
   reference semantics over the small-model domain; obviously correct but
   resource-limited;
2. **lazy / SVC baselines** — independent algorithms sharing almost no
   code with the eager pipeline;
3. **eager methods** (``sd``, ``eij``, ``hybrid``, ``static``) — the
   procedures under test.

Every decided verdict must agree with every other decided verdict, and
every INVALID countermodel must falsify the input under
:func:`repro.logic.semantics.evaluate`.  Resource-limited runs (``None``)
are excluded from the comparison rather than treated as verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..engine import registry
from ..engine.contract import SolveRequest
from ..logic.semantics import evaluate
from ..logic.terms import Formula, Lt, Offset
from ..logic.traversal import (
    collect_bool_vars,
    collect_func_symbols,
    collect_pred_symbols,
    collect_vars,
)
from .rewrite import rebuild

__all__ = [
    "MethodOutcome",
    "Discrepancy",
    "default_methods",
    "run_methods",
    "differential_check",
    "check_outcomes",
    "decided_verdict",
    "consensus_verdict",
    "inject_strictness_bug",
]

#: Enumeration budget for the brute-force reference, chosen so the stock
#: profiles are almost always fully decided in well under a second.
DEFAULT_ORACLE_LIMIT = 200_000


@dataclass
class MethodOutcome:
    """One procedure's answer on one sample."""

    name: str
    valid: Optional[bool] = None  # None = resource-limited / undecided
    countermodel_ok: Optional[bool] = None  # None = no countermodel to check
    error: Optional[str] = None


@dataclass
class Discrepancy:
    """A cross-check failure, ready for shrinking and serialization.

    ``kind`` is one of ``"verdict"`` (two procedures decided differently),
    ``"countermodel"`` (an INVALID verdict whose model does not falsify the
    formula), ``"crash"`` (a procedure raised), or ``"metamorphic"`` (a
    verdict-preserving transform changed the verdict; attached by the
    harness, not here).
    """

    kind: str
    formula: Formula
    detail: str
    verdicts: Dict[str, Optional[bool]] = field(default_factory=dict)
    transform: Optional[str] = None

    def describe(self) -> str:
        parts = ["%s discrepancy: %s" % (self.kind, self.detail)]
        if self.transform:
            parts.append("transform: %s" % self.transform)
        if self.verdicts:
            parts.append(
                "verdicts: "
                + ", ".join(
                    "%s=%s" % (name, value)
                    for name, value in sorted(self.verdicts.items())
                )
            )
        return "; ".join(parts)


def _engine_method(
    name: str, preprocess: bool = True, **options
) -> Callable[[Formula], MethodOutcome]:
    """Wrap a registry engine as a differential-oracle method.

    Limit-style knobs travel in the request's ``options``; resource-
    limited outcomes map to ``valid=None`` (excluded from comparison),
    and every INVALID countermodel is replayed against the reference
    semantics.  ``preprocess`` toggles the eager pipeline's CNF
    simplification stage, so the same engine can be registered as two
    differential configurations (with and without preprocessing).
    """

    def run(formula: Formula) -> MethodOutcome:
        result = registry.get(name).solve(
            SolveRequest(
                formula=formula,
                preprocess=preprocess,
                options=dict(options),
            )
        )
        outcome = MethodOutcome(name, valid=result.valid)
        if result.valid is False and result.counterexample is not None:
            outcome.countermodel_ok = not evaluate(
                formula, result.counterexample
            )
        return outcome

    return run


def _alpha_variant(formula: Formula) -> Formula:
    """An injectively renamed copy of ``formula`` (same isomorphism
    class, disjoint spelling) for exercising canonical-key collisions."""
    from ..logic.canonical import rename_symbols

    return rename_symbols(
        formula,
        vars={v.name: "rn_" + v.name for v in collect_vars(formula)},
        bools={b.name: "rn_" + b.name for b in collect_bool_vars(formula)},
        funcs={name: "rn_" + name for name in collect_func_symbols(formula)},
        preds={name: "rn_" + name for name in collect_pred_symbols(formula)},
    )


def _cached_method(
    inner: str = "hybrid",
) -> Callable[[Formula], MethodOutcome]:
    """The ``cached`` differential arm: the result cache under test.

    Holds a cache that is *cold at the start of every campaign* (one
    fresh :class:`ResultCache` per ``default_methods()`` call) and, per
    sample, solves three times:

    1. the formula itself (populates the cache on a decided verdict),
    2. the formula again (must be answered from the cache),
    3. an alpha-renamed variant (must *hit the same entry* via the
       canonical key, with the countermodel lifted through the
       renaming map).

    All three verdicts must agree, every countermodel must falsify the
    formula it was returned for, and the repeat solve must actually hit
    — any violation surfaces as a discrepancy against the bare engines.
    """
    from ..service.cache import CachedEngine, ResultCache

    engine = CachedEngine(cache=ResultCache())

    def run(formula: Formula) -> MethodOutcome:
        cold = engine.solve(
            SolveRequest(formula=formula, options={"engine": inner})
        )
        warm = engine.solve(
            SolveRequest(formula=formula, options={"engine": inner})
        )
        renamed_formula = _alpha_variant(formula)
        renamed = engine.solve(
            SolveRequest(formula=renamed_formula, options={"engine": inner})
        )
        outcome = MethodOutcome("cached", valid=cold.valid)
        if not (cold.valid == warm.valid == renamed.valid):
            outcome.error = (
                "cache changed a verdict: cold=%s warm=%s renamed=%s"
                % (cold.valid, warm.valid, renamed.valid)
            )
            return outcome
        if cold.valid is not None and (
            warm.stats.cache is None or warm.stats.cache.hits == 0
        ):
            outcome.error = "repeat solve missed the cache on a decided verdict"
            return outcome
        if cold.valid is not None and (
            renamed.stats.cache is None or renamed.stats.cache.hits == 0
        ):
            outcome.error = (
                "alpha-renamed variant missed the cache (canonical keys "
                "diverged within one isomorphism class)"
            )
            return outcome
        if cold.valid is False:
            checks = [
                not evaluate(query, result.counterexample)
                for result, query in (
                    (cold, formula),
                    (warm, formula),
                    (renamed, renamed_formula),
                )
                if result.counterexample is not None
            ]
            if checks:
                outcome.countermodel_ok = all(checks)
        return outcome

    return run


def _incremental_method(
    inner: str = "hybrid",
) -> Callable[[Formula], MethodOutcome]:
    """The ``incremental`` differential arm: assumption-based sessions
    under test (:mod:`repro.engine.session`).

    Holds **one** session for the whole campaign, so the solver's clause
    database, variable activities, and theory lemmas persist across
    samples — retention must never leak a verdict between unrelated
    queries.  Per sample it runs a prefix-sharing sequence in pushed
    frames:

    1. assert the sample's negation and check (the sample is VALID iff
       the negation is unsatisfiable) — cross-checked against a one-shot
       scratch solve of the assertion stack;
    2. push a random same-vocabulary difference atom on top and re-check
       (again vs. scratch: the shared prefix is where incrementality
       actually bites);
    3. pop back and re-check — the verdict from step 1 must reproduce.

    Every SAT model is replayed through the reference semantics and
    every UNSAT core is re-solved from scratch.
    """
    import random as random_mod
    import zlib

    from ..engine.session import SAT, UNKNOWN, UNSAT, Session
    from ..logic.printer import to_sexpr
    from ..logic.terms import And, Lt, Not, Offset, TRUE

    session = Session(engine=inner)

    def scratch(assertions: List[Formula]) -> str:
        conjunction = And(*assertions) if assertions else TRUE
        result = registry.get(inner).solve(
            SolveRequest(formula=Not(conjunction))
        )
        if result.valid is True:
            return UNSAT
        if result.valid is False:
            return SAT
        return UNKNOWN

    def cross_check(
        outcome: MethodOutcome, label: str
    ) -> Optional[str]:
        """One incremental check vs. scratch; returns the status."""
        stack = session.assertions()
        result = session.check_sat()
        expected = scratch(stack)
        if UNKNOWN in (result.status, expected):
            return None
        if result.status != expected:
            outcome.error = (
                "%s: incremental %s != scratch %s"
                % (label, result.status, expected)
            )
            return None
        if result.status == SAT:
            conjunction = And(*stack) if stack else TRUE
            if evaluate(conjunction, result.model) is not True:
                outcome.error = (
                    "%s: SAT model does not satisfy the stack" % label
                )
                return None
        else:
            core = session.last_core()
            if not core or scratch(core) != UNSAT:
                outcome.error = (
                    "%s: unsat core failed to re-solve UNSAT" % label
                )
                return None
        return result.status

    def run(formula: Formula) -> MethodOutcome:
        outcome = MethodOutcome("incremental")
        rng = random_mod.Random(
            zlib.crc32(to_sexpr(formula).encode("utf-8"))
        )
        session.push()
        try:
            session.assert_formula(Not(formula))
            first = cross_check(outcome, "base query")
            if outcome.error is not None:
                return outcome
            if first is not None:
                outcome.valid = first == UNSAT
                if first == SAT:
                    outcome.countermodel_ok = not evaluate(
                        formula, session.model()
                    )
            variables = sorted(collect_vars(formula), key=lambda v: v.name)
            if len(variables) >= 2:
                lhs, rhs = rng.sample(variables, 2)
                session.push()
                session.assert_formula(
                    Lt(
                        Offset(lhs, rng.randint(-2, 2)),
                        Offset(rhs, rng.randint(-2, 2)),
                    )
                )
                cross_check(outcome, "extended stack")
                session.pop()
                if outcome.error is not None:
                    return outcome
                replay = cross_check(outcome, "replay after pop")
                if outcome.error is None and None not in (first, replay):
                    if replay != first:
                        outcome.error = (
                            "replay after pop changed the verdict: "
                            "%s -> %s" % (first, replay)
                        )
            return outcome
        finally:
            session.pop()

    return run


def _smtlib_roundtrip_method(
    inner: str = "hybrid",
) -> Callable[[Formula], MethodOutcome]:
    """The ``smtlib-roundtrip`` differential arm: printer ∘ reader.

    Serializes every sample with :func:`to_smtlib_script` (asserting the
    negation, the way benchmark scripts are written), re-reads it with
    :func:`parse_smtlib`, and requires the recovered validity query to
    land in the same alpha-invariant canonical-key class as the input —
    any drift is reported as an error outright.  The verdict is then
    computed on the *reparsed* formula, so a silent perturbation that
    survived the key check would still surface as a verdict disagreement
    against the arms solving the original.
    """
    from ..logic.canonical import canonical_key
    from ..logic.smtlib import parse_smtlib, to_smtlib_script
    from ..logic.terms import Not

    def run(formula: Formula) -> MethodOutcome:
        outcome = MethodOutcome("smtlib-roundtrip")
        script = parse_smtlib(to_smtlib_script(formula))
        recovered = Not(script.conjunction())
        if canonical_key(recovered) != canonical_key(formula):
            outcome.error = (
                "print -> parse changed the formula's canonical key"
            )
            return outcome
        result = registry.get(inner).solve(SolveRequest(formula=recovered))
        outcome.valid = result.valid
        if result.valid is False and result.counterexample is not None:
            outcome.countermodel_ok = not evaluate(
                recovered, result.counterexample
            )
        return outcome

    return run


def default_methods(
    oracle_limit: int = DEFAULT_ORACLE_LIMIT,
    names: Optional[List[str]] = None,
) -> Dict[str, Callable[[Formula], MethodOutcome]]:
    """The full method registry, optionally restricted to ``names``.

    ``brute`` is the reference; the eager methods and both baselines are
    the systems under test.  The bare eager methods run with the CNF
    preprocessing stage off (the raw encodings the paper describes);
    ``sd+preprocess`` / ``hybrid+preprocess`` run the same engines with
    preprocessing on, so every verdict *and* every countermodel coming
    back through the model-reconstruction stack is cross-checked against
    all other procedures.  ``cached`` is the result-cache layer under
    differential test (cold store per campaign, every formula solved
    twice plus an alpha-renamed variant; see :func:`_cached_method`).
    ``incremental`` is the assumption-based session layer under
    differential test (one persistent session per campaign, random
    prefix-sharing sequences cross-checked against one-shot scratch
    solves; see :func:`_incremental_method`).  ``cube`` is the
    cube-and-conquer conductor under differential test: every sample is
    split by the lookahead generator and conquered under assumption
    prefixes, and both the verdict and the lifted countermodel are
    cross-checked against the sequential procedures (sequential
    conquering — ``cube_procs=1`` — keeps the campaign fast while still
    exercising cube generation, refutation, and prefix solving).
    ``smtlib-roundtrip`` is the SMT-LIB printer/reader pair under
    differential test: every sample is serialized and re-parsed, the
    canonical keys must match, and the verdict is recomputed on the
    reparsed formula (see :func:`_smtlib_roundtrip_method`).
    Every method dispatches through :mod:`repro.engine.registry`.
    """
    methods: Dict[str, Callable[[Formula], MethodOutcome]] = {
        "brute": _engine_method("brute", limit=oracle_limit),
        "sd": _engine_method("sd", preprocess=False),
        "eij": _engine_method("eij", preprocess=False),
        "hybrid": _engine_method("hybrid", preprocess=False),
        "static": _engine_method("static", preprocess=False),
        "sd+preprocess": _engine_method("sd"),
        "hybrid+preprocess": _engine_method("hybrid"),
        "lazy": _engine_method("lazy", max_iterations=10_000),
        "svc": _engine_method("svc", max_splits=200_000),
        "cached": _cached_method(),
        "incremental": _incremental_method(),
        "cube": _engine_method("cube", cube_depth=2, cube_procs=1),
        "smtlib-roundtrip": _smtlib_roundtrip_method(),
    }
    if names is None:
        return methods
    unknown = sorted(set(names) - set(methods))
    if unknown:
        raise ValueError(
            "unknown method(s) %s; expected a subset of %s"
            % (", ".join(unknown), ", ".join(methods))
        )
    return {name: methods[name] for name in names}


def run_methods(
    formula: Formula,
    methods: Dict[str, Callable[[Formula], MethodOutcome]],
) -> List[MethodOutcome]:
    outcomes: List[MethodOutcome] = []
    for name, run in methods.items():
        try:
            outcome = run(formula)
        except Exception as exc:  # a crash is a finding, not an abort
            outcome = MethodOutcome(name, error="%s: %s" % (type(exc).__name__, exc))
        outcome.name = name
        outcomes.append(outcome)
    return outcomes


def decided_verdict(outcomes: List[MethodOutcome]) -> Optional[bool]:
    """The first decided verdict among ``outcomes`` (``None``: undecided)."""
    for outcome in outcomes:
        if outcome.error is None and outcome.valid is not None:
            return outcome.valid
    return None


def differential_check(
    formula: Formula,
    methods: Dict[str, Callable[[Formula], MethodOutcome]],
) -> Optional[Discrepancy]:
    """Cross-check all methods on ``formula``; ``None`` means agreement."""
    return check_outcomes(formula, run_methods(formula, methods))


def check_outcomes(
    formula: Formula, outcomes: List[MethodOutcome]
) -> Optional[Discrepancy]:
    """Cross-check already-computed outcomes; ``None`` means agreement."""
    verdicts = {o.name: o.valid for o in outcomes}

    for outcome in outcomes:
        if outcome.error is not None:
            return Discrepancy(
                kind="crash",
                formula=formula,
                detail="%s raised %s" % (outcome.name, outcome.error),
                verdicts=verdicts,
            )
    for outcome in outcomes:
        if outcome.countermodel_ok is False:
            return Discrepancy(
                kind="countermodel",
                formula=formula,
                detail=(
                    "%s returned INVALID with a countermodel that does "
                    "not falsify the formula" % outcome.name
                ),
                verdicts=verdicts,
            )
    decided = {
        name: value for name, value in verdicts.items() if value is not None
    }
    if len(set(decided.values())) > 1:
        return Discrepancy(
            kind="verdict",
            formula=formula,
            detail="decided verdicts disagree",
            verdicts=verdicts,
        )
    return None


def consensus_verdict(
    formula: Formula,
    methods: Dict[str, Callable[[Formula], MethodOutcome]],
) -> Optional[bool]:
    """The first decided verdict, or ``None`` if nothing was decided."""
    for run in methods.values():
        try:
            outcome = run(formula)
        # A crashed method simply abstains from the metamorphic
        # consensus; run_methods() is the path that records crashes.
        # repro: ignore[RE304] -- abstain-on-crash is the contract here
        except Exception:
            continue
        if outcome.valid is not None:
            return outcome.valid
    return None


# ---------------------------------------------------------------------------
# Bug injection (self-check / tests)
# ---------------------------------------------------------------------------


def _drop_strictness(formula: Formula) -> Formula:
    """Model an off-by-one comparator bug: encode ``a < b`` as ``a <= b``."""

    def weaken(node):
        if isinstance(node, Lt):
            return Lt(node.lhs, Offset(node.rhs, 1))
        return node

    return rebuild(formula, formula_fn=weaken)


def inject_strictness_bug(
    methods: Dict[str, Callable[[Formula], MethodOutcome]],
    victim: str = "hybrid",
) -> Dict[str, Callable[[Formula], MethodOutcome]]:
    """A registry where ``victim`` suffers the strictness-dropping bug.

    Used by ``repro fuzz --self-check`` and the test suite to prove the
    harness actually catches and shrinks encoder bugs.
    """
    if victim not in methods:
        raise ValueError("victim %r not in the method registry" % victim)
    sound = methods[victim]

    def buggy(formula: Formula) -> MethodOutcome:
        return sound(_drop_strictness(formula))

    injected = dict(methods)
    injected[victim] = buggy
    return injected
