"""The pluggable engine layer: every decision procedure, one contract.

* :mod:`repro.engine.contract` — ``SolveRequest`` / ``SolveOutcome``,
  the uniform request/result types that subsume the historical
  per-procedure signatures;
* :mod:`repro.engine.base` — the ``Engine`` protocol plus capability
  metadata (countermodels, resource limits, completeness bounds);
* :mod:`repro.engine.stages` — the eager pipeline as individually timed
  stages (func-elim → encode → CNF → SAT → decode);
* :mod:`repro.engine.registry` — name → engine resolution for every
  front end (CLI, fuzzer, experiments);
* :mod:`repro.engine.portfolio` — the process-parallel portfolio race
  with first-decided-wins cancellation and the batch API;
* :mod:`repro.engine.session` — incremental assertion-stack sessions
  (``assert_formula`` / ``push`` / ``pop`` / ``check_sat`` /
  ``last_core``) over one long-lived assumption-capable CDCL solver.

Quickstart::

    from repro.engine import registry
    from repro.engine.contract import SolveRequest

    outcome = registry.get("portfolio").decide(formula, time_limit=5.0)
    print(outcome.status, outcome.winner)
"""

from . import registry
from .base import Engine, EngineCapabilities
from .contract import SolveOutcome, SolveRequest
from .portfolio import solve_batch, solve_portfolio
from .session import CheckResult, Session, SessionError
from .stages import run_eager

__all__ = [
    "registry",
    "Engine",
    "EngineCapabilities",
    "SolveRequest",
    "SolveOutcome",
    "solve_portfolio",
    "solve_batch",
    "run_eager",
    "Session",
    "SessionError",
    "CheckResult",
]
