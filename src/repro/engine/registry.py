"""The engine registry: the single dispatch point for every front end.

``cli.py``, ``fuzz.oracle`` and ``experiments.runner`` all resolve
procedures here instead of importing solver modules directly, so adding
an engine (or swapping an implementation) is a one-file change::

    from repro.engine import registry

    outcome = registry.get("hybrid").decide(formula)
    registry.list_engines()   # priority order, portfolio included

Registration order defines the default priority used by the portfolio
driver's deterministic tie-break.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from .base import Engine
from .contract import SolveOutcome, SolveRequest

__all__ = [
    "register",
    "unregister",
    "get",
    "list_engines",
    "engines",
    "priority",
]

_REGISTRY: Dict[str, Engine] = {}
_BUILTINS_LOADED = False
#: One reentrant lock guards both the loaded flag and every registry
#: mutation: ``register`` is called from ``_ensure_builtins`` while the
#: lock is already held, and from user code (tests, plugins) while serve
#: worker threads may be reading concurrently.
_REGISTRY_LOCK = threading.RLock()


def _ensure_builtins() -> None:
    """Populate the registry on first use (deferred to avoid cycles).

    Thread-safe double-checked locking: the loaded flag is only raised
    *after* every builtin is registered, and registration runs under the
    lock — concurrent first callers (the serve worker threads) must
    never observe a partial registry.  ``RC102`` (the static-analysis
    suite) checks the flag-last ordering.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _REGISTRY_LOCK:
        if _BUILTINS_LOADED:
            return
        from . import cube as _cube
        from . import engines as _engines
        from . import portfolio as _portfolio
        from ..service import cache as _cache

        for factory in _engines.BUILTIN_ENGINES:
            register(factory())
        register(_cube.CubeEngine())
        register(_portfolio.PortfolioEngine())
        register(_cache.CachedEngine())
        _BUILTINS_LOADED = True


def register(engine: Engine, replace: bool = False) -> Engine:
    """Add ``engine`` under ``engine.name``; appended to priority order."""
    if not engine.name:
        raise ValueError("engine has no name: %r" % (engine,))
    with _REGISTRY_LOCK:
        if engine.name in _REGISTRY and not replace:
            raise ValueError(
                "engine %r is already registered (pass replace=True to "
                "swap)" % engine.name
            )
        _REGISTRY[engine.name] = engine
    return engine


def unregister(name: str) -> None:
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def get(name: str) -> Engine:
    """The engine registered under ``name`` (KeyError lists known names)."""
    _ensure_builtins()
    try:
        with _REGISTRY_LOCK:
            return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown engine %r; registered: %s"
            % (name, ", ".join(list_engines()))
        ) from None


def list_engines() -> List[str]:
    """Registered engine names in priority (registration) order."""
    _ensure_builtins()
    # Snapshot under the lock: list(dict) can raise RuntimeError if a
    # concurrent register() resizes the dict mid-iteration.
    with _REGISTRY_LOCK:
        return list(_REGISTRY)


def engines() -> List[Engine]:
    _ensure_builtins()
    with _REGISTRY_LOCK:
        return list(_REGISTRY.values())


def priority(name: str) -> int:
    """Rank of ``name`` in the tie-break order (lower wins)."""
    names = list_engines()
    try:
        return names.index(name)
    except ValueError:
        return len(names)


def solve(name: str, request: SolveRequest) -> SolveOutcome:
    """Shorthand for ``get(name).solve(request)``."""
    return get(name).solve(request)
