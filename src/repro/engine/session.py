"""Incremental solving sessions: assert / push / pop / check over one solver.

The paper's flagship applications (translation validation, predicate
abstraction) fire thousands of closely related queries.  A
:class:`Session` serves that workload: it maintains a stack of asserted
SUF formulas and decides satisfiability of their conjunction with one
long-lived CDCL solver whose clause database, variable activities, and
saved phases carry over between checks.

Architecture
------------
Assertions in the *separation fragment* (``=``/``<`` atoms over symbolic
constants and offsets, Boolean structure, Boolean constants) are handled
natively and incrementally:

* every atom maps to difference-bound Boolean variables from one shared
  :class:`~repro.encodings.sepvars.SepVarRegistry` (the same abstraction
  the lazy engine uses, without eager transitivity constraints);
* each asserted formula is Tseitin-encoded *once* into a growing CNF,
  guarded by a fresh **selector variable** (``selector → formula``);
* ``check_sat`` activates the live assertions' selectors as solver
  assumptions (:meth:`~repro.sat.solver.CdclSolver.solve_under_assumptions`)
  and runs the lazy theory-refinement loop: a propositional model's
  asserted bounds are checked with Bellman–Ford, and each negative cycle
  becomes a conflict clause.  Refinement lemmas are valid
  difference-logic facts, so they are added *unguarded* and deliberately
  outlive every push/pop — exactly like retained learned clauses;
* an UNSAT answer's assumption core maps selector literals back to the
  asserted formulas: :meth:`Session.last_core` is a sound unsat core
  (re-asserting only the core formulas stays unsatisfiable).

Assertions outside the fragment (uninterpreted function/predicate
applications, ITE terms) make the check fall back to a one-shot solve of
the conjunction through the configured registry engine — slower, but
exactly as sound, and cores degrade to the full assertion list.

Engine-contract composition
---------------------------
Satisfiability maps onto the validity question every engine speaks: the
conjunction ``F`` is satisfiable iff ``Not(F)`` is INVALID, and a
countermodel of ``Not(F)`` *is* a model of ``F``.  The session reuses
the canonicalization key of ``Not(F)``, so its cache entries are
ordinary validity entries — sessions, ``repro check``, ``repro serve``
and ``solve_batch`` all compose with the same two-tier result cache.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.status import Status
from ..encodings.sepvars import SepVarRegistry
from ..logic.canonical import CanonicalForm, canonicalize, lift_interpretation
from ..logic.semantics import Interpretation
from ..logic.terms import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    Iff,
    Implies,
    Lt,
    Node,
    Not,
    Offset,
    Or,
    TRUE,
    Term,
    Var,
)
from ..logic.traversal import collect_bool_vars, collect_vars, postorder
from ..sat.cnf import Cnf
from ..sat.solver import CdclSolver, SatResult
from ..sat.tseitin import tseitin
from ..theory.difference import check_bounds
from .contract import SolveRequest

if TYPE_CHECKING:  # deferred to dodge the service ↔ engine import cycle
    from ..service.cache import ResultCache

__all__ = [
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "CheckResult",
    "Session",
    "SessionError",
    "SessionStats",
]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Safety valve on the theory-refinement loop of one check.
MAX_REFINEMENTS = 100_000


class SessionError(Exception):
    """Stack misuse: pop below the bottom frame, use after close."""


class _Unsupported(Exception):
    """An assertion falls outside the incremental separation fragment."""


@dataclass
class SessionStats:
    """Counters across one session's lifetime."""

    checks: int = 0
    cache_hits: int = 0
    incremental_checks: int = 0
    engine_checks: int = 0
    theory_lemmas: int = 0
    stores: int = 0


@dataclass
class CheckResult:
    """One ``check_sat`` answer.

    ``status`` is ``"sat"`` / ``"unsat"`` / ``"unknown"``; ``backend``
    records which path produced it (``incremental``, ``engine``,
    ``cache``, or ``trivial``); ``key`` is the canonical key of the
    validity query ``Not(conjunction)`` that scopes the cache entry.
    """

    status: str
    model: Optional[Interpretation] = None
    core: Optional[List[Formula]] = None
    backend: str = ""
    key: str = ""
    wall_seconds: float = 0.0

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT


class _IncrementalBackend:
    """Selector-guarded incremental abstraction-refinement core.

    One growing CNF, one growing solver, one shared atom registry and
    Tseitin memo.  Encodings are permanent: popping an assertion merely
    stops activating its selector, so re-asserting it later costs
    nothing and everything the solver learned meanwhile is kept.
    """

    def __init__(self) -> None:
        self._cnf = Cnf()
        self._solver = CdclSolver(self._cnf)
        self._fed_clauses = 0
        self._registry = SepVarRegistry()
        self._tseitin_memo: Dict[Node, int] = {}
        self._abstract_memo: Dict[Formula, Formula] = {}
        self._selectors: Dict[Formula, int] = {}
        self._by_selector: Dict[int, Formula] = {}
        self.theory_lemmas = 0

    # -- encoding ------------------------------------------------------------

    @staticmethod
    def _split(term: Term) -> Tuple[Var, int]:
        """Decompose ``term`` as ``base + k`` with a ``Var`` base."""
        if isinstance(term, Offset):
            base: Term = term.base
            k = term.k
        else:
            base, k = term, 0
        if not isinstance(base, Var):
            raise _Unsupported("non-constant term %r" % (term,))
        return base, k

    def _abstract(self, formula: Formula) -> Formula:
        """Propositional abstraction over registry difference bounds."""
        memo = self._abstract_memo
        for node in postorder(formula):
            if not isinstance(node, Formula) or node in memo:
                continue
            out: Formula
            if isinstance(node, (BoolConst, BoolVar)):
                out = node
            elif isinstance(node, Eq):
                # x + a = y + b  ⇔  x - y <= c  ∧  y - x <= -c  (c = b - a)
                x, a = self._split(node.lhs)
                y, b = self._split(node.rhs)
                c = b - a
                out = And(
                    self._registry.literal(x, y, c),
                    self._registry.literal(y, x, -c),
                )
            elif isinstance(node, Lt):
                # x + a < y + b  ⇔  x - y <= b - a - 1
                x, a = self._split(node.lhs)
                y, b = self._split(node.rhs)
                out = self._registry.literal(x, y, b - a - 1)
            elif isinstance(node, Not):
                out = Not(memo[node.arg])
            elif isinstance(node, And):
                out = And(*[memo[arg] for arg in node.args])
            elif isinstance(node, Or):
                out = Or(*[memo[arg] for arg in node.args])
            elif isinstance(node, Implies):
                out = Implies(memo[node.lhs], memo[node.rhs])
            elif isinstance(node, Iff):
                out = Iff(memo[node.lhs], memo[node.rhs])
            else:  # PredApp (FuncApp/Ite surface through _split)
                raise _Unsupported(
                    "unsupported connective %s" % type(node).__name__
                )
            memo[node] = out
        return memo[formula]

    def _selector(self, formula: Formula) -> int:
        """Selector variable guarding ``formula``'s (one-time) encoding."""
        sel = self._selectors.get(formula)
        if sel is None:
            prop = self._abstract(formula)
            sel = self._cnf.new_var(
                ("session", "selector", len(self._selectors))
            )
            # tseitin hands back a packed root; guard it with the packed
            # negative selector literal so the clause never round-trips
            # through the signed representation.
            _, root = tseitin(prop, self._cnf, self._tseitin_memo)
            self._cnf.add_packed_clause([(sel << 1) | 1, root])
            self._selectors[formula] = sel
            self._by_selector[sel] = formula
            self._sync()
        return sel

    def _sync(self) -> None:
        """Feed CNF growth (new vars and clauses) into the live solver.

        Bulk-attaches straight from the packed arena: no signed clause
        lists are materialized on the incremental path.
        """
        self._solver.attach_from(self._cnf, self._fed_clauses)
        self._fed_clauses = len(self._cnf)

    def _dimacs(self, literal: Formula) -> int:
        if isinstance(literal, Not):
            arg = literal.arg
            return -self._cnf.var_for(arg)
        return self._cnf.var_for(literal)

    # -- checking ------------------------------------------------------------

    def _bool_model(self, model: Dict[int, bool]) -> Dict[BoolVar, bool]:
        out: Dict[BoolVar, bool] = {}
        for var, name in self._cnf.names.items():
            if isinstance(name, BoolVar) and var in model:
                out[name] = model[var]
        return out

    def _build_model(
        self,
        assertions: Sequence[Formula],
        bool_model: Dict[BoolVar, bool],
        theory_model: Dict[Var, int],
    ) -> Interpretation:
        """Restrict the raw models to the live assertions' vocabulary."""
        vars_out: Dict[str, int] = {}
        bools_out: Dict[str, bool] = {}
        for formula in assertions:
            for var in collect_vars(formula):
                vars_out[var.name] = theory_model.get(var, 0)
            for bvar in collect_bool_vars(formula):
                if bvar in bool_model:
                    bools_out[bvar.name] = bool_model[bvar]
        return Interpretation(vars=vars_out, bools=bools_out)

    def check(
        self,
        assertions: Sequence[Formula],
        time_limit: Optional[float] = None,
    ) -> Tuple[str, Optional[Interpretation], Optional[List[Formula]]]:
        """Decide SAT of the conjunction of ``assertions``.

        Returns ``(status, model, core)``; exactly one of ``model`` /
        ``core`` is set on a decided answer.  Raises :class:`_Unsupported`
        when any assertion falls outside the separation fragment.
        """
        sels = [self._selector(f) for f in assertions]
        start = time.perf_counter()
        solver = self._solver
        for _ in range(MAX_REFINEMENTS):
            if time_limit is not None:
                remaining = time_limit - (time.perf_counter() - start)
                if remaining <= 0:
                    return UNKNOWN, None, None
                solver.time_limit = remaining
            else:
                solver.time_limit = None
            result: SatResult = solver.solve_under_assumptions(sels)
            if result.status == "UNKNOWN":
                return UNKNOWN, None, None
            if result.is_unsat:
                return UNSAT, None, self._core_formulas(result.core)
            model = result.model or {}
            bool_model = self._bool_model(model)
            bounds = self._registry.asserted_bounds(bool_model)
            theory = check_bounds(bounds)
            if theory.consistent:
                interp = self._build_model(
                    assertions, bool_model, theory.model or {}
                )
                return SAT, interp, None
            # Refine: the negative cycle becomes an unguarded conflict
            # clause — a valid theory lemma, safe to retain forever.
            cycle = theory.cycle or []
            clause = [
                -self._dimacs(
                    self._registry.literal(bound.lhs, bound.rhs, bound.c)
                )
                for bound in cycle
            ]
            self._cnf.add_clause(clause)
            self._sync()
            self.theory_lemmas += 1
        return UNKNOWN, None, None

    def _core_formulas(
        self, core: Optional[List[int]]
    ) -> List[Formula]:
        """Map an assumption core (selector literals) back to assertions."""
        out: List[Formula] = []
        seen: Dict[int, bool] = {}
        for lit in core or []:
            formula = self._by_selector.get(lit)
            if formula is not None and lit not in seen:
                seen[lit] = True
                out.append(formula)
        return out


class Session:
    """An incremental assertion-stack session (assert / push / pop / check).

    See the module docstring for the architecture.  Typical use::

        session = Session(engine="hybrid")
        session.assert_formula(f)
        session.push()
        session.assert_formula(g)
        if session.check_sat().is_unsat:
            core = session.last_core()
        session.pop()

    Not thread-safe per instance (``repro serve`` serializes access per
    session id); distinct sessions are independent.
    """

    def __init__(
        self,
        engine: str = "hybrid",
        cache: Optional["ResultCache"] = None,
        time_limit: Optional[float] = None,
        want_model: bool = True,
    ) -> None:
        from . import registry

        if engine not in registry.list_engines():
            raise ValueError(
                "unknown engine %r; registered: %s"
                % (engine, ", ".join(registry.list_engines()))
            )
        self._engine_name = engine
        self._cache = cache
        self._time_limit = time_limit
        self._want_model = want_model
        self._frames: List[List[Formula]] = [[]]
        self._backend = _IncrementalBackend()
        self._last_model: Optional[Interpretation] = None
        self._last_core: Optional[List[Formula]] = None
        self._closed = False
        self._lock = threading.Lock()
        self.stats = SessionStats()
        if cache is not None:
            from ..service.cache import config_fingerprint

            self._fingerprint = config_fingerprint(
                engine, SolveRequest(formula=TRUE)
            )
        else:
            self._fingerprint = ""

    # -- stack ---------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def assert_formula(self, formula: Formula) -> int:
        """Append ``formula`` to the top frame; returns its stack index."""
        self._ensure_open()
        if not isinstance(formula, Formula):
            raise TypeError(
                "assert_formula expects a Formula, got %r" % (formula,)
            )
        self._frames[-1].append(formula)
        return sum(len(frame) for frame in self._frames) - 1

    def push(self) -> int:
        """Open a new frame; returns the new stack depth."""
        self._ensure_open()
        self._frames.append([])
        return self.depth

    def pop(self, levels: int = 1) -> int:
        """Discard the top ``levels`` frames; returns the new depth.

        Raises :class:`SessionError` when popping below the bottom frame
        (the bottom frame itself is never popped).
        """
        self._ensure_open()
        if levels < 1:
            raise ValueError("pop levels must be >= 1, got %r" % (levels,))
        if levels > self.depth:
            raise SessionError(
                "pop(%d) below the bottom of a stack at depth %d"
                % (levels, self.depth)
            )
        del self._frames[-levels:]
        return self.depth

    @property
    def depth(self) -> int:
        """Number of frames above the bottom one (0 after construction)."""
        return len(self._frames) - 1

    def assertions(self) -> List[Formula]:
        """All live assertions, bottom frame first."""
        return [f for frame in self._frames for f in frame]

    def close(self) -> None:
        """Mark the session closed; further operations raise."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # -- checking ------------------------------------------------------------

    def state_key(self) -> str:
        """Canonical key of the current state's validity query.

        The key of ``Not(conjunction)`` — the same key ``repro check``
        on that formula would cache under, which is what lets session
        states compose with the two-tier cache.
        """
        from ..logic.canonical import canonical_key

        active = self.assertions()
        conjunction: Formula = And(*active) if active else TRUE
        return canonical_key(Not(conjunction))

    def last_core(self) -> Optional[List[Formula]]:
        """Unsat core of the last UNSAT ``check_sat`` (sound: the core
        formulas alone are jointly unsatisfiable; minimal only on the
        incremental path)."""
        return self._last_core

    def model(self) -> Optional[Interpretation]:
        """Model from the last SAT ``check_sat``."""
        return self._last_model

    def check_sat(
        self, time_limit: Optional[float] = None
    ) -> CheckResult:
        """Decide satisfiability of the conjunction of live assertions."""
        self._ensure_open()
        with self._lock:
            return self._check_sat_locked(
                time_limit if time_limit is not None else self._time_limit
            )

    def _check_sat_locked(self, time_limit: Optional[float]) -> CheckResult:
        start = time.perf_counter()
        self.stats.checks += 1
        self._last_model = None
        self._last_core = None
        active = self.assertions()
        conjunction: Formula = And(*active) if active else TRUE

        if conjunction is TRUE:
            self._last_model = Interpretation()
            return CheckResult(
                SAT,
                model=self._last_model,
                backend="trivial",
                wall_seconds=time.perf_counter() - start,
            )
        if conjunction is FALSE:
            # Some assertion folded to ``false`` at construction time.
            core = [f for f in active if f is FALSE] or list(active)
            self._last_core = core
            return CheckResult(
                UNSAT,
                core=core,
                backend="trivial",
                wall_seconds=time.perf_counter() - start,
            )

        query: Formula = Not(conjunction)
        form = canonicalize(query)
        hit = self._cache_lookup(active, form)
        if hit is not None:
            hit.wall_seconds = time.perf_counter() - start
            return hit

        try:
            status, model, core = self._backend.check(
                active, time_limit=time_limit
            )
            backend = "incremental"
            self.stats.incremental_checks += 1
            self.stats.theory_lemmas = self._backend.theory_lemmas
        except _Unsupported:
            status, model, core = self._check_via_engine(
                query, active, time_limit
            )
            backend = "engine"
            self.stats.engine_checks += 1

        self._last_model = model
        self._last_core = core
        self._cache_store(status, model, form, backend)
        return CheckResult(
            status,
            model=model,
            core=core,
            backend=backend,
            key=form.key,
            wall_seconds=time.perf_counter() - start,
        )

    def _check_via_engine(
        self,
        query: Formula,
        active: Sequence[Formula],
        time_limit: Optional[float],
    ) -> Tuple[str, Optional[Interpretation], Optional[List[Formula]]]:
        """One-shot fallback through the configured registry engine."""
        from . import registry

        request = SolveRequest(
            formula=query,
            want_countermodel=True,
            time_limit=time_limit,
        )
        outcome = registry.get(self._engine_name).solve(request)
        if outcome.status is Status.VALID:
            return UNSAT, None, list(active)
        if outcome.status is Status.INVALID:
            return SAT, outcome.counterexample, None
        return UNKNOWN, None, None

    # -- cache composition ---------------------------------------------------

    def _cache_lookup(
        self, active: Sequence[Formula], form: CanonicalForm
    ) -> Optional[CheckResult]:
        if self._cache is None:
            return None
        entry, _tier = self._cache.lookup(
            form.key, self._fingerprint, want_countermodel=self._want_model
        )
        if entry is None:
            return None
        self.stats.cache_hits += 1
        if entry.status == str(Status.VALID):
            self._last_core = list(active)
            return CheckResult(
                UNSAT, core=self._last_core, backend="cache", key=form.key
            )
        model: Optional[Interpretation] = None
        if entry.countermodel is not None:
            model = lift_interpretation(entry.countermodel, form)
        self._last_model = model
        return CheckResult(SAT, model=model, backend="cache", key=form.key)

    def _cache_store(
        self,
        status: str,
        model: Optional[Interpretation],
        form: CanonicalForm,
        backend: str,
    ) -> None:
        if self._cache is None or status == UNKNOWN:
            return
        from ..service.cache import CacheEntry

        stored_model: Optional[Interpretation] = None
        if status == SAT and model is not None:
            stored_model = _to_canonical(model, form)
        entry_status = Status.VALID if status == UNSAT else Status.INVALID
        if self._cache.store(
            form.key,
            self._fingerprint,
            CacheEntry(
                status=str(entry_status),
                countermodel=stored_model,
                engine="session:%s" % backend,
            ),
        ):
            self.stats.stores += 1


def _to_canonical(
    model: Interpretation, form: CanonicalForm
) -> Interpretation:
    """Rename a model from original names into ``form``'s canonical names
    (the inverse of :func:`~repro.logic.canonical.lift_interpretation`);
    names outside the renaming pass through unchanged."""
    vars_fwd = {orig: canon for canon, orig in form.vars.items()}
    bools_fwd = {orig: canon for canon, orig in form.bools.items()}
    funcs_fwd = {orig: canon for canon, orig in form.funcs.items()}
    preds_fwd = {orig: canon for canon, orig in form.preds.items()}
    return Interpretation(
        vars={vars_fwd.get(n, n): v for n, v in model.vars.items()},
        bools={bools_fwd.get(n, n): v for n, v in model.bools.items()},
        funcs={funcs_fwd.get(n, n): dict(t) for n, t in model.funcs.items()},
        preds={preds_fwd.get(n, n): dict(t) for n, t in model.preds.items()},
        func_default=model.func_default,
        pred_default=model.pred_default,
    )
