"""The eager pipeline, restructured as individually-timed stages.

``func-elim → encode → cnf → preprocess → sat → decode`` is the paper's
§2.1 flow plus a SatELite-style CNF simplification stage
(:mod:`repro.sat.preprocess`); this module is the single implementation
behind the ``sd`` / ``eij`` / ``hybrid`` / ``static`` engines *and* the
historical :func:`repro.core.decision.check_validity` entry point.
Every stage appends a :class:`~repro.core.result.StageRecord` (wall
seconds plus counters) so telemetry has the same shape for every engine.
The preprocess stage is skipped when ``SolveRequest.preprocess`` is
false (``repro check --no-preprocess``); when it runs, eliminated
variables are re-derived through the model-reconstruction stack before
countermodel decode.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..core.decision import decode_countermodel, lift_countermodel
from ..core.result import DecisionStats, StageRecord
from ..core.status import Status
from ..encodings.hybrid import (
    encode_eij,
    encode_hybrid,
    encode_sd,
    encode_static_hybrid,
)
from ..encodings.transitivity import TransitivityBudgetExceeded
from ..logic.semantics import evaluate
from ..logic.terms import BoolVar
from ..logic.traversal import dag_size
from ..sat.preprocess import preprocess_cnf
from ..sat.solver import CdclSolver, SatStats
from ..sat.tseitin import to_cnf
from ..transform.func_elim import eliminate_applications
from .contract import SolveOutcome, SolveRequest

__all__ = ["StageClock", "run_eager", "boolvar_model", "SatRunner"]

#: Replacement SAT search for :func:`run_eager`: called with the solver's
#: CNF, the request, the live ``sat`` :class:`StageRecord`, and the CNF
#: variable ids of the surviving separation predicates (EIJ/equality
#: registry variables — see ``cnf`` stage artifacts).  Must return a
#: :class:`repro.sat.solver.SatResult`-shaped object.  Cube-and-conquer
#: (:mod:`repro.engine.cube`) plugs in here; everything before and after
#: the SAT stage — encoding, preprocessing, model reconstruction,
#: countermodel decode — is shared with the sequential engines.
SatRunner = Callable[[Any, SolveRequest, StageRecord, List[int]], Any]


class StageClock:
    """Collects :class:`StageRecord` entries with wall-clock timing.

    Use as ``with clock.stage("encode") as rec: ...``; counters added to
    ``rec.counters`` inside the block are kept, the elapsed time is
    stamped on exit (also on exceptions, so failed stages still report
    how long they ran).
    """

    def __init__(self) -> None:
        self.records: List[StageRecord] = []

    @contextmanager
    def stage(self, name: str) -> Iterator[StageRecord]:
        record = StageRecord(name=name)
        self.records.append(record)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - start

    def seconds(self, *names: str) -> float:
        return sum(r.seconds for r in self.records if r.name in names)


def boolvar_model(cnf: Any, model: Dict[int, bool]) -> Dict[BoolVar, bool]:
    """Restrict a DIMACS model to the named Boolean variables."""
    out: Dict[BoolVar, bool] = {}
    for var, name in cnf.names.items():
        if isinstance(name, BoolVar) and var in model:
            out[name] = model[var]
    return out


_ENCODERS = {
    "sd": lambda f_sep, req: encode_sd(f_sep, sd_ranges=req.sd_ranges),
    "eij": lambda f_sep, req: encode_eij(f_sep, trans_budget=req.trans_budget),
    "static": lambda f_sep, req: encode_static_hybrid(
        f_sep, trans_budget=req.trans_budget
    ),
    "hybrid": lambda f_sep, req: encode_hybrid(
        f_sep, sep_thold=req.sep_thold, trans_budget=req.trans_budget
    ),
}


def run_eager(
    request: SolveRequest,
    method: str = "hybrid",
    sat_runner: Optional[SatRunner] = None,
) -> SolveOutcome:
    """Run the eager pipeline end to end with per-stage telemetry.

    The returned outcome's ``stats`` keeps the historical field split
    (``encode_seconds`` covers func-elim + encode + CNF, ``sat_seconds``
    the SAT search) on top of the finer-grained ``stats.stages``.
    """
    if method not in _ENCODERS:
        raise ValueError(
            "unknown eager method %r; expected one of %r"
            % (method, tuple(_ENCODERS))
        )
    clock = StageClock()
    stats = DecisionStats(method=method.upper(), stages=clock.records)
    start = time.perf_counter()

    def outcome(
        status: Status,
        counterexample: Optional[Any] = None,
        detail: str = "",
    ) -> SolveOutcome:
        stats.encode_seconds = clock.seconds(
            "func-elim", "encode", "cnf", "preprocess"
        )
        stats.sat_seconds = clock.seconds("sat")
        return SolveOutcome(
            engine=method,
            status=status,
            stats=stats,
            counterexample=counterexample,
            detail=detail,
            wall_seconds=time.perf_counter() - start,
        )

    with clock.stage("func-elim") as rec:
        stats.dag_size_suf = dag_size(request.formula)
        f_sep, elim_info = eliminate_applications(request.formula)
        stats.dag_size_sep = dag_size(f_sep)
        rec.counters["dag_suf"] = stats.dag_size_suf
        rec.counters["dag_sep"] = stats.dag_size_sep
        rec.counters["fresh_consts"] = len(elim_info.fresh_func_vars()) + len(
            elim_info.fresh_pred_vars()
        )

    try:
        with clock.stage("encode") as rec:
            encoding = _ENCODERS[method](f_sep, request)
            rec.counters["classes"] = encoding.stats.num_classes
            rec.counters["sd_classes"] = encoding.stats.sd_classes
            rec.counters["eij_classes"] = encoding.stats.eij_classes
            rec.counters["sep_vars"] = encoding.stats.sep_vars
            rec.counters["trans_clauses"] = encoding.stats.trans_clauses
    except TransitivityBudgetExceeded as exc:
        return outcome(Status.TRANSLATION_LIMIT, detail=str(exc))
    stats.encoding = encoding.stats

    with clock.stage("cnf") as rec:
        cnf = to_cnf(encoding.check_formula, mode="pg")
        stats.cnf_vars = cnf.num_vars
        stats.cnf_clauses = len(cnf)
        rec.counters["vars"] = cnf.num_vars
        rec.counters["clauses"] = len(cnf)
        # Surface the EIJ→CNF-var map: these are the separation
        # predicates cube-and-conquer prefers as splitting points.
        sep_cnf_vars = encoding.registry.cnf_var_ids(cnf)
        rec.counters["sep_cnf_vars"] = len(sep_cnf_vars)
        rec.artifacts["sep_cnf_vars"] = sep_cnf_vars

    pre = None
    solver_cnf = cnf
    if request.preprocess:
        with clock.stage("preprocess") as rec:
            pre = preprocess_cnf(cnf)
            stats.preprocess = pre.stats
            solver_cnf = pre.simplified
            rec.counters["clauses_before"] = pre.stats.clauses_before
            rec.counters["clauses_after"] = pre.stats.clauses_after
            rec.counters["vars_before"] = pre.stats.vars_before
            rec.counters["vars_after"] = pre.stats.vars_after
            rec.counters["units"] = pre.stats.units_fixed
            rec.counters["pure"] = pre.stats.pure_literals
            rec.counters["subsumed"] = pre.stats.clauses_subsumed
            rec.counters["strengthened"] = pre.stats.literals_strengthened
            rec.counters["eliminated"] = pre.stats.vars_eliminated
        if pre.status == "UNSAT":
            # Preprocessing closed the instance; the search never runs,
            # so report truthful all-zero SAT counters.
            stats.sat = SatStats(original_clauses=pre.stats.clauses_before)
            return outcome(Status.VALID)

    with clock.stage("sat") as rec:
        if sat_runner is not None:
            sat_result = sat_runner(solver_cnf, request, rec, sep_cnf_vars)
        else:
            solver = CdclSolver(
                solver_cnf,
                max_conflicts=request.conflict_limit,
                time_limit=request.time_limit,
            )
            sat_result = solver.solve()
        stats.sat = sat_result.stats
        rec.counters["decisions"] = sat_result.stats.decisions
        rec.counters["propagations"] = sat_result.stats.propagations
        rec.counters["conflicts"] = sat_result.stats.conflicts
        rec.counters["learned"] = sat_result.stats.learned_clauses

    if sat_result.status == "UNKNOWN":
        return outcome(Status.UNKNOWN)
    if sat_result.is_unsat:
        return outcome(Status.VALID)

    counterexample = None
    if request.want_countermodel:
        with clock.stage("decode") as rec:
            sat_model = sat_result.model
            if pre is not None:
                # Re-derive eliminated/fixed variables so the model
                # satisfies the *original* CNF before decoding.
                sat_model = pre.reconstruct(sat_model)
            model = boolvar_model(cnf, sat_model)
            sep_model = decode_countermodel(encoding, model)
            counterexample = lift_countermodel(elim_info, f_sep, sep_model)
            rec.counters["model_vars"] = len(counterexample.vars)
            if evaluate(f_sep, sep_model):
                raise AssertionError(
                    "decoded countermodel does not falsify F_sep — "
                    "encoding bug"
                )
    return outcome(Status.INVALID, counterexample=counterexample)
