"""Cube-and-conquer: split one hard formula, conquer cubes in parallel.

The portfolio (PR 2) parallelises across *engines* and ``solve_batch``
dedupes across *formulas*; this module parallelises **within** one
formula.  The eager pipeline runs unchanged up to the SAT stage
(:func:`repro.engine.stages.run_eager` with a ``sat_runner``), then:

1. :func:`repro.sat.cubes.generate_cubes` splits the CNF into assumption
   cubes, preferring the separation-predicate (EIJ) variables surfaced
   by the ``cnf`` stage — the paper's structurally important case
   splits.
2. Worker processes conquer cubes from a shared queue with
   :meth:`~repro.sat.solver.CdclSolver.solve_under_assumptions` (the
   arena solver is reused unchanged; cubes are assumption lists).
3. Learned units and short/low-LBD clauses flow back through a
   multiprocessing conduit: workers export through the solver's
   admission filter, the conductor deduplicates and broadcasts, and
   peers import at restart boundaries.  Sharing is sound because
   nothing learned under assumptions ever depends on them.
4. A cube whose conflict budget runs out is *re-split* by a resident
   :class:`~repro.sat.cubes.CubeSplitter` and its children re-queued
   with a doubled budget — work-stealing-style dynamic refutation, so
   one pathological cube cannot stall the run.

With a single worker (or inside a daemonic pool process, which cannot
fork) the conductor degrades to sequential conquering in one resident
solver — still profitable, because every cube inherits the full learned
clause database of its predecessors.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from dataclasses import asdict
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.result import StageRecord
from ..sat.cnf import Cnf
from ..sat.cubes import CubeConfig, CubeSplitter, generate_cubes
from ..sat.solver import CdclSolver, SatResult, SatStats
from .base import Engine, EngineCapabilities
from .contract import SolveOutcome, SolveRequest
from .portfolio import _mp_context
from .stages import run_eager

__all__ = ["CubeEngine", "conquer"]

#: Initial per-cube conflict budget; doubled on every re-split.
DEFAULT_BUDGET = 3000
#: Default cube-tree depth (2**depth leaves before refutation/capping).
DEFAULT_DEPTH = 4
#: Grace period for worker shutdown before escalating to terminate().
_TERMINATE_GRACE = 2.0
#: Conductor poll interval while waiting for cube results.
_POLL_SECONDS = 0.05


def _auto_procs() -> int:
    """Default worker count: one per core, capped at 4."""
    return max(1, min(4, os.cpu_count() or 1))


def _snapshot(stats: SatStats) -> Dict[str, Any]:
    return asdict(stats)


def _merge_stats(total: SatStats, snap: Dict[str, Any]) -> None:
    total.decisions += int(snap["decisions"])
    total.propagations += int(snap["propagations"])
    total.conflicts += int(snap["conflicts"])
    total.learned_clauses += int(snap["learned_clauses"])
    total.restarts += int(snap["restarts"])
    total.max_decision_level = max(
        total.max_decision_level, int(snap["max_decision_level"])
    )
    total.deleted_clauses += int(snap["deleted_clauses"])
    total.inprocessings += int(snap["inprocessings"])
    total.vivified_clauses += int(snap["vivified_clauses"])
    total.subsumed_clauses += int(snap["subsumed_clauses"])
    total.exported_clauses += int(snap["exported_clauses"])
    total.imported_clauses += int(snap["imported_clauses"])


def _cube_worker(
    wid: int,
    cnf: Cnf,
    units: List[int],
    share: bool,
    deadline: Optional[float],
    task_q: Any,
    result_q: Any,
    clause_q: Any,
    in_q: Any,
) -> None:
    """One conquering process: pull cubes, solve, report, share clauses.

    The solver is resident across cubes, so learned clauses, variable
    activities, and saved phases carry over locally; the conduit only
    has to recover *cross*-worker retention.  Stats snapshots sent with
    every result are cumulative — the conductor keeps the latest one per
    worker and sums at the end.

    With ``REPRO_CUBE_PROFILE_DIR`` set (``tools/profile_sat.py
    --cube``) the whole worker runs under cProfile and dumps its pstats
    there on exit, one file per worker, for the tool to merge.
    """
    profile_dir = os.environ.get("REPRO_CUBE_PROFILE_DIR")
    profiler = None
    if profile_dir:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        _cube_worker_loop(
            wid, cnf, units, share, deadline, task_q, result_q, clause_q, in_q
        )
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(
                os.path.join(
                    profile_dir,
                    "cube-worker-%d-%d.pstats" % (wid, os.getpid()),
                )
            )


def _cube_worker_loop(
    wid: int,
    cnf: Cnf,
    units: List[int],
    share: bool,
    deadline: Optional[float],
    task_q: Any,
    result_q: Any,
    clause_q: Any,
    in_q: Any,
) -> None:
    solver = CdclSolver(cnf)
    for unit in units:
        solver.add_clause([unit])
    if share:

        def _export(lits: List[int], lbd: int) -> None:
            clause_q.put((wid, lits))

        def _import() -> List[List[int]]:
            out: List[List[int]] = []
            while True:
                try:
                    out.append(in_q.get_nowait())
                except queue.Empty:
                    return out

        solver.export_hook = _export
        solver.import_hook = _import
    while True:
        task = task_q.get()
        if task is None:
            return
        cube_id, cube, budget = task
        if deadline is not None:
            remaining = deadline - time.time()
            if remaining <= 0:
                result_q.put((wid, cube_id, "UNKNOWN", None, None))
                continue
            solver.time_limit = remaining
        solver.max_conflicts = solver.stats.conflicts + budget
        result = solver.solve_under_assumptions(cube)
        model = result.model if result.status == "SAT" else None
        result_q.put(
            (wid, cube_id, result.status, model, _snapshot(solver.stats))
        )


def _conquer_sequential(
    cnf: Cnf,
    cubes: List[List[int]],
    units: List[int],
    request: SolveRequest,
    record: StageRecord,
) -> SatResult:
    """Single-process conquering: one resident solver, maximal retention."""
    deadline: Optional[float] = None
    if request.time_limit is not None:
        deadline = time.time() + request.time_limit
    solver = CdclSolver(cnf, max_conflicts=request.conflict_limit)
    for unit in units:
        solver.add_clause([unit])
    for cube in cubes:
        if deadline is not None:
            remaining = deadline - time.time()
            if remaining <= 0:
                return SatResult(status="UNKNOWN", stats=solver.stats)
            solver.time_limit = remaining
        result = solver.solve_under_assumptions(cube)
        if result.status != "UNSAT":
            # SAT: a satisfiable cube gives the model; UNKNOWN: budget.
            return SatResult(
                status=result.status,
                model=result.model,
                stats=solver.stats,
            )
    record.counters["refuted_cubes"] = len(cubes)
    return SatResult(status="UNSAT", stats=solver.stats)


def _conquer_parallel(
    cnf: Cnf,
    cubes: List[List[int]],
    units: List[int],
    procs: int,
    share: bool,
    splitter: CubeSplitter,
    budget: int,
    request: SolveRequest,
    record: StageRecord,
) -> SatResult:
    """Fan cubes over ``procs`` workers with clause sharing + re-splits."""
    deadline: Optional[float] = None
    if request.time_limit is not None:
        deadline = time.time() + request.time_limit
    ctx = _mp_context()
    task_q = ctx.Queue()
    result_q = ctx.Queue()
    clause_q = ctx.Queue()
    in_qs = [ctx.Queue() for _ in range(procs)]
    workers = [
        ctx.Process(
            target=_cube_worker,
            args=(
                wid,
                cnf,
                units,
                share,
                deadline,
                task_q,
                result_q,
                clause_q,
                in_qs[wid],
            ),
            daemon=True,
        )
        for wid in range(procs)
    ]
    for proc in workers:
        proc.start()

    pending: Dict[int, Tuple[List[int], int]] = {}
    next_id = 0
    for cube in cubes:
        pending[next_id] = (cube, budget)
        task_q.put((next_id, cube, budget))
        next_id += 1

    seen_clauses: Set[FrozenSet[int]] = set()
    latest: Dict[int, Dict[str, Any]] = {}
    shared = 0
    resplits = 0
    refuted = 0
    status = "UNSAT"
    model: Optional[Dict[int, bool]] = None

    def _broadcast() -> None:
        nonlocal shared
        while True:
            try:
                src, lits = clause_q.get_nowait()
            except queue.Empty:
                return
            key = frozenset(lits)
            if key in seen_clauses:
                continue
            seen_clauses.add(key)
            shared += 1
            for wid, in_q in enumerate(in_qs):
                if wid != src:
                    in_q.put(lits)

    try:
        while pending:
            _broadcast()
            if deadline is not None and time.time() > deadline:
                status = "UNKNOWN"
                break
            if request.conflict_limit is not None:
                total_conflicts = sum(
                    int(snap["conflicts"]) for snap in latest.values()
                )
                if total_conflicts >= request.conflict_limit:
                    status = "UNKNOWN"
                    break
            try:
                wid, cube_id, cube_status, cube_model, snap = result_q.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                if not any(proc.is_alive() for proc in workers):
                    status = "UNKNOWN"  # workers died under us
                    break
                continue
            if snap is not None:
                latest[wid] = snap
            cube, cube_budget = pending.pop(cube_id)
            if cube_status == "SAT":
                status, model = "SAT", cube_model
                break
            if cube_status == "UNSAT":
                refuted += 1
                continue
            # Budget exhausted: dynamically refine the cube and requeue
            # the children with a doubled budget (a cube that cannot be
            # split just gets the bigger budget directly).
            if deadline is not None and time.time() > deadline:
                status = "UNKNOWN"
                break
            children = splitter.resplit(cube)
            if children is None:
                refuted += 1  # lookahead refuted the whole cube
                continue
            resplits += 1
            for child in children:
                pending[next_id] = (child, cube_budget * 2)
                task_q.put((next_id, child, cube_budget * 2))
                next_id += 1
    finally:
        for _ in workers:
            task_q.put(None)
        deadline_join = time.time() + _TERMINATE_GRACE
        for proc in workers:
            proc.join(timeout=max(0.0, deadline_join - time.time()))
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_TERMINATE_GRACE)
        for q in (task_q, result_q, clause_q, *in_qs):
            q.cancel_join_thread()

    total = SatStats(original_clauses=len(cnf))
    for snap in latest.values():
        _merge_stats(total, snap)
    record.counters["workers"] = procs
    record.counters["resplits"] = resplits
    record.counters["refuted_cubes"] = refuted
    record.counters["shared_clauses"] = shared
    record.counters["imported"] = total.imported_clauses
    record.counters["exported"] = total.exported_clauses
    return SatResult(status=status, model=model, stats=total)


def conquer(
    cnf: Cnf,
    request: SolveRequest,
    record: StageRecord,
    sep_vars: List[int],
) -> SatResult:
    """The cube-and-conquer SAT stage (a :data:`~.stages.SatRunner`).

    Options read from ``request.options`` (all prefixed ``cube_``):
    ``cube_depth``, ``cube_procs`` (0 = one per core, capped at 4),
    ``cube_share`` (default on), ``cube_seed``, ``cube_budget``.
    """
    options = request.options
    depth = int(options.get("cube_depth", DEFAULT_DEPTH))
    procs = int(options.get("cube_procs", 0)) or _auto_procs()
    share = bool(options.get("cube_share", True))
    seed = int(options.get("cube_seed", 0))
    budget = int(options.get("cube_budget", DEFAULT_BUDGET))
    config = CubeConfig(depth=depth, seed=seed, prefer_vars=sep_vars)

    cube_set = generate_cubes(cnf, config)
    record.counters["cubes"] = len(cube_set.cubes)
    record.counters["cube_units"] = len(cube_set.units)
    record.counters["failed_literals"] = cube_set.stats.failed_literals
    record.counters["refuted_branches"] = cube_set.stats.refuted_branches
    record.counters["lookaheads"] = cube_set.stats.lookaheads
    if cube_set.status == "UNSAT":
        return SatResult(
            status="UNSAT", stats=SatStats(original_clauses=len(cnf))
        )

    # Daemonic pool workers (portfolio members, batch workers) cannot
    # fork children; degrade to sequential conquering there.
    if procs <= 1 or multiprocessing.current_process().daemon:
        return _conquer_sequential(
            cnf, cube_set.cubes, cube_set.units, request, record
        )
    splitter = CubeSplitter(cnf, config)
    splitter.add_units(cube_set.units)
    if not splitter.ok:
        return SatResult(
            status="UNSAT", stats=SatStats(original_clauses=len(cnf))
        )
    return _conquer_parallel(
        cnf,
        cube_set.cubes,
        cube_set.units,
        procs,
        share,
        splitter,
        budget,
        request,
        record,
    )


class CubeEngine(Engine):
    """Cube-and-conquer over the eager pipeline (``--method cube``).

    Everything except the SAT stage is the sequential hybrid pipeline;
    the search itself is split into cubes and conquered in parallel
    with learned-clause sharing.  Complete, and countermodel-capable:
    a satisfiable cube's model flows through the standard
    reconstruction/decode stages.
    """

    name = "cube"
    capabilities = EngineCapabilities(
        description="cube-and-conquer parallel SAT over the hybrid encoding",
        complete=True,
        countermodels=True,
        time_limit=True,
        conflict_limit=True,
        preprocessing=True,
    )

    def solve(self, request: SolveRequest) -> SolveOutcome:
        method = str(request.options.get("cube_method", "hybrid"))
        outcome = run_eager(request, method=method, sat_runner=conquer)
        outcome.engine = self.name
        outcome.stats.method = "CUBE(%s)" % method.upper()
        return outcome
