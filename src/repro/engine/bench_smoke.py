"""``repro bench-smoke``: a fixed micro-benchmark over every engine.

Runs a small, deterministic suite subset through each registered engine
and writes per-engine wall/encode/sat seconds to a JSON file
(``BENCH_PR2.json`` by default).  CI runs it on every push, so the file
seeds a perf trajectory: later PRs can diff the numbers to show a hot
path got faster (or catch one getting slower) without re-running the
full paper experiments.
"""

from __future__ import annotations

import json
import platform
from typing import Dict, List, Optional

from ..benchgen.suite import benchmark_by_name
from .contract import SolveRequest

__all__ = ["SMOKE_BENCHMARKS", "run_bench_smoke", "format_table"]

#: Small members of three suite domains — decided in well under a second
#: by every unbounded engine, so the whole matrix stays CI-friendly.
SMOKE_BENCHMARKS = (
    "pipeline_s2_r2_1",
    "transval_s1_i3_1",
    "ooo_t4_1",
    "loadstore_e3_p6_1",
    "driver_s3_1",
)

DEFAULT_TIMEOUT = 5.0


def run_bench_smoke(
    timeout: float = DEFAULT_TIMEOUT,
    engines: Optional[List[str]] = None,
    benchmarks: Optional[List[str]] = None,
) -> Dict:
    """Run the smoke matrix; returns the JSON-ready report dict."""
    from . import registry

    engine_names = engines if engines is not None else registry.list_engines()
    bench_names = list(benchmarks or SMOKE_BENCHMARKS)

    report: Dict = {
        "meta": {
            "benchmarks": bench_names,
            "timeout_seconds": timeout,
            "python": platform.python_version(),
            "generated_by": "repro bench-smoke",
        },
        "engines": {},
    }
    for name in engine_names:
        engine = registry.get(name)
        rows: Dict[str, Dict] = {}
        for bench_name in bench_names:
            bench = benchmark_by_name(bench_name)
            if bench is None:
                raise ValueError("unknown benchmark %r" % bench_name)
            outcome = engine.solve(
                SolveRequest(
                    formula=bench.formula,
                    time_limit=timeout,
                    want_countermodel=False,
                )
            )
            rows[bench_name] = {
                "status": str(outcome.status),
                "wall_seconds": round(outcome.wall_seconds, 6),
                "encode_seconds": round(outcome.stats.encode_seconds, 6),
                "sat_seconds": round(outcome.stats.sat_seconds, 6),
                "winner": outcome.winner,
            }
        report["engines"][name] = rows
    return report


def format_table(report: Dict) -> str:
    """Human-readable summary of a smoke report (one row per engine)."""
    bench_names = report["meta"]["benchmarks"]
    lines = [
        "%-10s %10s %10s %10s  %s"
        % ("engine", "wall", "encode", "sat", "statuses")
    ]
    for name, rows in report["engines"].items():
        wall = sum(r["wall_seconds"] for r in rows.values())
        encode = sum(r["encode_seconds"] for r in rows.values())
        sat = sum(r["sat_seconds"] for r in rows.values())
        statuses = ",".join(rows[b]["status"] for b in bench_names)
        lines.append(
            "%-10s %9.3fs %9.3fs %9.3fs  %s"
            % (name, wall, encode, sat, statuses)
        )
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
