"""``repro bench-smoke``: a fixed micro-benchmark over every engine.

Runs a small, deterministic suite subset through each registered engine
and writes per-engine wall/encode/sat seconds to a JSON file
(``BENCH_PR4.json`` by default).  CI runs it on every push, so the file
seeds a perf trajectory: later PRs can diff the numbers to show a hot
path got faster (or catch one getting slower) without re-running the
full paper experiments.

For engines that honour ``SolveRequest.preprocess`` (the eager
encodings) every benchmark is additionally run with the CNF
simplification stage disabled, and the report's ``preprocess`` section
records the before/after variable and clause counts, the sat-stage wall
time of both arms, and whether the verdicts agree — so the preprocessing
win (or a soundness regression) is recorded, not asserted.

The ``cache`` section measures the result-cache layer the same way:
every smoke benchmark is solved cold (fresh cache, full solve) and then
warm (same cache, canonical-key hit), recording both wall times, the
speedup, and whether the verdicts agree — the warm-vs-cold evidence for
the service layer, refreshed on every CI run.

The ``sat_core`` section benchmarks the arena-based CDCL solver against
the frozen pre-arena reference implementation
(:mod:`repro.sat.legacy_solver`) on generated CNF families — fixed-seed
random 3-CNF near the phase-transition ratio and pigeonhole instances.
Both solvers decide every instance; CI fails on any verdict mismatch,
and the per-instance wall seconds plus the aggregate speedup land in
``BENCH_PR7.json``.  The ``small`` family keeps the default run fast;
``--families large`` selects instances big enough for the speedup to
dominate timing noise (the perf gate in ``tools/bench_gate.py`` compares
that aggregate against ``benchmarks/baseline.json``).

The ``cube_vs_sequential`` section measures cube-and-conquer
(:mod:`repro.engine.cube`) against a single sequential solve on hard
generated CNF families — pigeonhole instances and phase-transition
random 3-CNF sized so the decomposition/sharing win dominates process
overhead.  Per instance it records both statuses (CI fails on any
mismatch), wall seconds, the speedup, and the clause-sharing evidence
(exported/imported/broadcast counts); a share-ablation sub-section
re-runs the pigeonhole members with sharing disabled so "sharing does
not slow us down" is recorded, not assumed.  The section lands in
``BENCH_PR8.json`` and is gated by ``tools/bench_gate.py``.

The ``incremental`` section compares assumption-based incremental
solving (:class:`~repro.engine.session.Session`) against scratch solves
on a generated prefix-sharing family: a growing chain of difference
constraints checked after every added link, closed into a negative
cycle at the last step.  The incremental arm keeps one session alive
and re-checks after each assert; the scratch arm rebuilds a fresh
session for every prefix.  Per-step verdicts must agree (CI fails on a
mismatch) and the section is also written on its own to
``BENCH_PR6.json``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Dict, List, Optional

from ..benchgen.suite import benchmark_by_name
from ..logic.terms import Formula
from .base import Engine
from .contract import SolveRequest

__all__ = [
    "SMOKE_BENCHMARKS",
    "PREFIX_FAMILY_STEPS",
    "SAT_CORE_FAMILIES",
    "prefix_sharing_family",
    "random_3cnf",
    "pigeonhole_cnf",
    "sat_core_instance",
    "run_sat_core_comparison",
    "CUBE_FAMILIES",
    "DEFAULT_CUBE_PROCS",
    "cube_instance",
    "run_cube_comparison",
    "run_bench_smoke",
    "format_table",
    "write_report",
    "write_incremental_report",
    "write_sat_core_report",
    "write_cube_report",
]

#: Small members of three suite domains — decided in well under a second
#: by every unbounded engine, so the whole matrix stays CI-friendly.
SMOKE_BENCHMARKS = (
    "pipeline_s2_r2_1",
    "transval_s1_i3_1",
    "ooo_t4_1",
    "loadstore_e3_p6_1",
    "driver_s3_1",
)

DEFAULT_TIMEOUT = 5.0

#: Length of the generated prefix-sharing chain (one check per step).
PREFIX_FAMILY_STEPS = 40

#: Generated CNF instances for the arena-vs-legacy solver comparison.
#: Each entry is ``(name, kind, params)`` where ``kind`` selects the
#: generator (``rand3`` → seed/vars/clauses at the ~4.26 phase-transition
#: ratio, ``php`` → pigeons/holes).  ``small`` finishes in well under a
#: second and runs by default; ``large`` is sized so the speedup ratio
#: dominates timing noise and backs the committed perf baseline.
SAT_CORE_FAMILIES: Dict[str, tuple] = {
    "small": (
        ("r3_100_426_s3", "rand3", (3, 100, 426)),
        ("r3_120_511_s5", "rand3", (5, 120, 511)),
        ("php_6_5", "php", (6, 5)),
    ),
    "large": (
        ("r3_190_808_s19", "rand3", (19, 190, 808)),
        ("r3_200_852_s7", "rand3", (7, 200, 852)),
        ("r3_210_895_s23", "rand3", (23, 210, 895)),
        ("php_8_7", "php", (8, 7)),
    ),
}


#: Cube-and-conquer comparison instances: ``(name, kind, params, depth)``
#: where ``depth`` is the cube-tree depth for that instance.  Harder
#: instances get deeper trees: with more cubes per worker the local
#: clause-database retention is diluted, but decomposition + sharing
#: recover more total work — the crossover moves with instance size.
#: ``small`` keeps the default run fast; ``hard`` is sized so the
#: speedup ratio dominates process-management noise and backs the
#: committed perf baseline.
CUBE_FAMILIES: Dict[str, tuple] = {
    "small": (
        ("php_6_5", "php", (6, 5), 3),
        ("r3_100_426_s3", "rand3", (3, 100, 426), 3),
    ),
    "hard": (
        ("php_8_7", "php", (8, 7), 4),
        ("php_9_8", "php", (9, 8), 5),
        ("r3_190_808_s19", "rand3", (19, 190, 808), 4),
    ),
}

#: Worker count for the cube-and-conquer bench arm.
DEFAULT_CUBE_PROCS = 4


def random_3cnf(seed: int, num_vars: int, num_clauses: int):
    """Fixed-seed uniform random 3-CNF (three distinct variables)."""
    import random

    from ..sat.cnf import Cnf

    rng = random.Random(seed)
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause(
            [v if rng.random() < 0.5 else -v for v in chosen]
        )
    return cnf


def pigeonhole_cnf(pigeons: int, holes: int):
    """Pigeonhole principle CNF; UNSAT whenever ``pigeons > holes``."""
    from ..sat.cnf import Cnf

    cnf = Cnf()
    var = {
        (p, h): cnf.new_var()
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


def sat_core_instance(name: str):
    """Build the named :data:`SAT_CORE_FAMILIES` instance."""
    for members in SAT_CORE_FAMILIES.values():
        for inst_name, kind, params in members:
            if inst_name != name:
                continue
            if kind == "rand3":
                return random_3cnf(*params)
            return pigeonhole_cnf(*params)
    raise ValueError("unknown sat-core instance %r" % name)


def run_sat_core_comparison(
    families: Optional[List[str]] = None,
) -> Dict:
    """Solve each family instance with both solvers; returns the section.

    The arena solver and the frozen legacy reference get a fresh CNF
    each (no shared state), statuses must agree instance by instance,
    and the aggregate speedup is total legacy seconds over total arena
    seconds — the number the perf gate tracks.
    """
    from ..sat.legacy_solver import CdclSolver as LegacySolver
    from ..sat.solver import CdclSolver

    family_names = list(families or ["small"])
    section: Dict[str, Any] = {
        "families": family_names,
        "instances": {},
        "verdicts_match": True,
    }
    total_arena = 0.0
    total_legacy = 0.0
    for family in family_names:
        if family not in SAT_CORE_FAMILIES:
            raise ValueError("unknown sat-core family %r" % family)
        for name, _kind, _params in SAT_CORE_FAMILIES[family]:
            start = time.perf_counter()
            arena_result = CdclSolver(sat_core_instance(name)).solve()
            arena_seconds = time.perf_counter() - start
            start = time.perf_counter()
            legacy_result = LegacySolver(sat_core_instance(name)).solve()
            legacy_seconds = time.perf_counter() - start
            match = arena_result.status == legacy_result.status
            if not match:
                section["verdicts_match"] = False
            total_arena += arena_seconds
            total_legacy += legacy_seconds
            section["instances"][name] = {
                "family": family,
                "status_arena": arena_result.status,
                "status_legacy": legacy_result.status,
                "verdicts_match": match,
                "seconds_arena": arena_seconds,
                "seconds_legacy": legacy_seconds,
                "speedup": (
                    legacy_seconds / arena_seconds if arena_seconds else None
                ),
                "conflicts_arena": arena_result.stats.conflicts,
                "conflicts_legacy": legacy_result.stats.conflicts,
            }
    section["aggregate"] = {
        "seconds_arena": total_arena,
        "seconds_legacy": total_legacy,
        "speedup": total_legacy / total_arena if total_arena else None,
    }
    return section


def cube_instance(name: str):
    """Build the named :data:`CUBE_FAMILIES` instance (CNF only)."""
    for members in CUBE_FAMILIES.values():
        for inst_name, kind, params, _depth in members:
            if inst_name != name:
                continue
            if kind == "rand3":
                return random_3cnf(*params)
            return pigeonhole_cnf(*params)
    raise ValueError("unknown cube instance %r" % name)


def _conquer_cnf(
    cnf: Any,
    depth: int,
    procs: int,
    share: bool,
    timeout: Optional[float],
) -> tuple:
    """One cube-and-conquer run at the CNF level; ``(result, record)``."""
    from ..core.result import StageRecord
    from ..logic.terms import BoolVar
    from .contract import SolveRequest
    from .cube import conquer

    request = SolveRequest(
        formula=BoolVar("bench_cube_dummy"),  # conquer never reads it
        time_limit=timeout,
        options={
            "cube_depth": depth,
            "cube_procs": procs,
            "cube_share": share,
        },
    )
    record = StageRecord("sat")
    result = conquer(cnf, request, record, [])
    return result, record


def run_cube_comparison(
    families: Optional[List[str]] = None,
    procs: int = DEFAULT_CUBE_PROCS,
    timeout: Optional[float] = None,
) -> Dict:
    """Cube-and-conquer vs one sequential solve; returns the section.

    Statuses must agree instance by instance; the aggregate speedup is
    total sequential seconds over total cube seconds (the perf-gate
    ratio).  Pigeonhole members are re-run with sharing disabled and the
    wall times of both arms land in ``share_ablation`` — the evidence
    that the conduit pays for itself.
    """
    from ..sat.solver import CdclSolver

    family_names = list(families or ["small"])
    section: Dict[str, Any] = {
        "families": family_names,
        "procs": procs,
        "instances": {},
        "verdicts_match": True,
    }
    total_sequential = 0.0
    total_cube = 0.0
    total_imported = 0
    ablation: Dict[str, Any] = {"instances": {}}
    ablation_share = 0.0
    ablation_noshare = 0.0
    for family in family_names:
        if family not in CUBE_FAMILIES:
            raise ValueError("unknown cube family %r" % family)
        for name, kind, _params, depth in CUBE_FAMILIES[family]:
            start = time.perf_counter()
            seq_result = CdclSolver(
                cube_instance(name), time_limit=timeout
            ).solve()
            seq_seconds = time.perf_counter() - start

            start = time.perf_counter()
            cube_result, record = _conquer_cnf(
                cube_instance(name), depth, procs, True, timeout
            )
            cube_seconds = time.perf_counter() - start

            match = seq_result.status == cube_result.status
            if not match:
                section["verdicts_match"] = False
            total_sequential += seq_seconds
            total_cube += cube_seconds
            total_imported += cube_result.stats.imported_clauses
            section["instances"][name] = {
                "family": family,
                "depth": depth,
                "status_sequential": seq_result.status,
                "status_cube": cube_result.status,
                "verdicts_match": match,
                "seconds_sequential": seq_seconds,
                "seconds_cube": cube_seconds,
                "speedup": (
                    seq_seconds / cube_seconds if cube_seconds else None
                ),
                "cubes": record.counters.get("cubes", 0),
                "resplits": record.counters.get("resplits", 0),
                "conflicts_sequential": seq_result.stats.conflicts,
                "conflicts_cube": cube_result.stats.conflicts,
                "imported_clauses": cube_result.stats.imported_clauses,
                "exported_clauses": cube_result.stats.exported_clauses,
                "shared_clauses": record.counters.get("shared_clauses", 0),
            }
            if kind == "php":
                start = time.perf_counter()
                noshare_result, _ = _conquer_cnf(
                    cube_instance(name), depth, procs, False, timeout
                )
                noshare_seconds = time.perf_counter() - start
                ablation_share += cube_seconds
                ablation_noshare += noshare_seconds
                ablation["instances"][name] = {
                    "status_noshare": noshare_result.status,
                    "seconds_share": cube_seconds,
                    "seconds_noshare": noshare_seconds,
                }
    if ablation["instances"]:
        ablation["seconds_share"] = ablation_share
        ablation["seconds_noshare"] = ablation_noshare
        # Sharing must not slow the pigeonhole family down; 5% covers
        # process-scheduling noise in the comparison itself.
        ablation["no_share_no_faster"] = (
            ablation_noshare >= ablation_share * 0.95
        )
        section["share_ablation"] = ablation
    section["aggregate"] = {
        "seconds_sequential": total_sequential,
        "seconds_cube": total_cube,
        "speedup": (
            total_sequential / total_cube if total_cube else None
        ),
        "imported_clauses": total_imported,
    }
    return section


def prefix_sharing_family(steps: int = PREFIX_FAMILY_STEPS) -> List[Formula]:
    """A growing chain of difference constraints, one formula per step.

    Step ``i`` links ``x_i`` to ``x_{i+1}`` (with a varying offset and a
    guarded slack disjunct, so each step carries both theory and boolean
    structure); the final step closes the chain into a negative cycle.
    Every proper prefix is therefore satisfiable and the full family is
    unsatisfiable — checking after each step yields ``steps - 1`` SAT
    verdicts followed by one UNSAT.
    """
    from ..logic.terms import And, BoolVar, Lt, Offset, Or, Var

    if steps < 2:
        raise ValueError("prefix_sharing_family needs at least 2 steps")
    xs = [Var("pf_x%d" % i) for i in range(steps)]
    family: List[Formula] = []
    for i in range(steps - 1):
        link = Lt(Offset(xs[i], i % 3), xs[i + 1])
        slack = Or(
            BoolVar("pf_b%d" % i), Lt(xs[i], Offset(xs[i + 1], 4))
        )
        family.append(And(link, slack))
    family.append(Lt(xs[-1], xs[0]))
    return family


def _run_incremental_comparison(
    timeout: float,
    inner: str = "hybrid",
    steps: int = PREFIX_FAMILY_STEPS,
) -> Dict:
    """Incremental-vs-scratch timing over the prefix-sharing family.

    The incremental arm keeps one cache-less
    :class:`~repro.engine.session.Session` alive and re-checks after
    each assert, so clause-database and activity retention across calls
    is what is being measured; the scratch arm rebuilds a fresh session
    for every prefix and pays the full re-encode and re-solve each time.
    """
    from .session import Session

    family = prefix_sharing_family(steps)
    expected = ["sat"] * (steps - 1) + ["unsat"]
    rows: List[Dict[str, Any]] = []
    verdicts_match = True
    expected_ok = True
    total_incremental = 0.0
    total_scratch = 0.0
    final_core_size: Optional[int] = None

    session = Session(engine=inner, cache=None, want_model=False)
    try:
        for i, formula in enumerate(family):
            begin = time.perf_counter()
            session.assert_formula(formula)
            inc = session.check_sat(time_limit=timeout)
            inc_seconds = time.perf_counter() - begin

            begin = time.perf_counter()
            fresh = Session(engine=inner, cache=None, want_model=False)
            try:
                for prefix_formula in family[: i + 1]:
                    fresh.assert_formula(prefix_formula)
                scratch = fresh.check_sat(time_limit=timeout)
            finally:
                fresh.close()
            scratch_seconds = time.perf_counter() - begin

            match = inc.status == scratch.status
            if not match:
                verdicts_match = False
            if inc.status != expected[i]:
                expected_ok = False
            if inc.is_unsat and inc.core is not None:
                final_core_size = len(inc.core)
            total_incremental += inc_seconds
            total_scratch += scratch_seconds
            rows.append(
                {
                    "step": i,
                    "status_incremental": inc.status,
                    "status_scratch": scratch.status,
                    "status_expected": expected[i],
                    "verdicts_match": match,
                    "wall_seconds_incremental": round(inc_seconds, 6),
                    "wall_seconds_scratch": round(scratch_seconds, 6),
                }
            )
    finally:
        session.close()

    return {
        "family": "prefix_chain",
        "inner_engine": inner,
        "steps": steps,
        "rows": rows,
        "verdicts_match": verdicts_match,
        "expected_statuses_ok": expected_ok,
        "wall_seconds_incremental": round(total_incremental, 6),
        "wall_seconds_scratch": round(total_scratch, 6),
        "speedup": (
            round(total_scratch / total_incremental, 2)
            if total_incremental > 0
            else None
        ),
        "final_status": rows[-1]["status_incremental"] if rows else None,
        "final_core_size": final_core_size,
    }


def _solve(
    engine: Engine, formula: Formula, timeout: float, preprocess: bool
) -> Dict[str, Any]:
    outcome = engine.solve(
        SolveRequest(
            formula=formula,
            time_limit=timeout,
            want_countermodel=False,
            preprocess=preprocess,
        )
    )
    row = {
        "status": str(outcome.status),
        "wall_seconds": round(outcome.wall_seconds, 6),
        "encode_seconds": round(outcome.stats.encode_seconds, 6),
        "sat_seconds": round(outcome.stats.sat_seconds, 6),
        "winner": outcome.winner,
    }
    pre = outcome.stats.preprocess
    if pre is not None:
        row["preprocess"] = {
            "vars_before": pre.vars_before,
            "vars_after": pre.vars_after,
            "clauses_before": pre.clauses_before,
            "clauses_after": pre.clauses_after,
            "vars_eliminated": pre.vars_eliminated,
            "clauses_subsumed": pre.clauses_subsumed,
            "seconds": round(pre.seconds, 6),
        }
    return row


def _run_cache_comparison(
    bench_names: List[str], timeout: float, inner: str = "hybrid"
) -> Dict:
    """Cold-vs-warm cache measurement over the smoke benchmarks.

    Uses a fresh in-memory :class:`~repro.service.ResultCache` so the
    cold arm is a genuine miss-and-solve and the warm arm a genuine
    canonical-key hit; disk and process state do not leak in.
    """
    from ..service.cache import CachedEngine, ResultCache

    cache = ResultCache()
    engine = CachedEngine(cache=cache)
    rows: Dict[str, Dict] = {}
    verdicts_match = True
    total_cold = 0.0
    total_warm = 0.0
    for bench_name in bench_names:
        bench = benchmark_by_name(bench_name)
        if bench is None:
            raise ValueError("unknown benchmark %r" % bench_name)
        request = SolveRequest(
            formula=bench.formula,
            time_limit=timeout,
            want_countermodel=False,
            options={"engine": inner},
        )
        cold = engine.solve(request)
        warm = engine.solve(request)
        match = str(cold.status) == str(warm.status)
        if not match:
            verdicts_match = False
        warm_stats = warm.stats.cache
        total_cold += cold.wall_seconds
        total_warm += warm.wall_seconds
        rows[bench_name] = {
            "canonical_key": bench.canonical_key,
            "status_cold": str(cold.status),
            "status_warm": str(warm.status),
            "verdicts_match": match,
            "wall_seconds_cold": round(cold.wall_seconds, 6),
            "wall_seconds_warm": round(warm.wall_seconds, 6),
            "speedup": (
                round(cold.wall_seconds / warm.wall_seconds, 2)
                if warm.wall_seconds > 0
                else None
            ),
            "warm_hit": bool(warm_stats and warm_stats.hits),
        }
    return {
        "inner_engine": inner,
        "benchmarks": rows,
        "verdicts_match": verdicts_match,
        "wall_seconds_cold": round(total_cold, 6),
        "wall_seconds_warm": round(total_warm, 6),
        "speedup": (
            round(total_cold / total_warm, 2) if total_warm > 0 else None
        ),
        "stats": {
            "hits_memory": cache.stats.hits_memory,
            "hits_disk": cache.stats.hits_disk,
            "misses": cache.stats.misses,
            "stores": cache.stats.stores,
        },
    }


def run_bench_smoke(
    timeout: float = DEFAULT_TIMEOUT,
    engines: Optional[List[str]] = None,
    benchmarks: Optional[List[str]] = None,
    incremental_steps: int = PREFIX_FAMILY_STEPS,
    sat_core_families: Optional[List[str]] = None,
    cube_families: Optional[List[str]] = None,
    cube_procs: int = DEFAULT_CUBE_PROCS,
) -> Dict:
    """Run the smoke matrix; returns the JSON-ready report dict."""
    from . import registry

    engine_names = engines if engines is not None else registry.list_engines()
    bench_names = list(benchmarks or SMOKE_BENCHMARKS)

    report: Dict = {
        "meta": {
            "benchmarks": bench_names,
            "timeout_seconds": timeout,
            "python": platform.python_version(),
            "generated_by": "repro bench-smoke",
            "preprocess_verdicts_match": True,
            "cache_verdicts_match": True,
            "incremental_verdicts_match": True,
            "sat_core_verdicts_match": True,
            "cube_verdicts_match": True,
        },
        "engines": {},
        "preprocess": {},
    }
    for name in engine_names:
        engine = registry.get(name)
        rows: Dict[str, Dict] = {}
        compare: Dict[str, Dict] = {}
        for bench_name in bench_names:
            bench = benchmark_by_name(bench_name)
            if bench is None:
                raise ValueError("unknown benchmark %r" % bench_name)
            row = _solve(engine, bench.formula, timeout, preprocess=True)
            rows[bench_name] = row
            if engine.capabilities.preprocessing:
                raw = _solve(
                    engine, bench.formula, timeout, preprocess=False
                )
                verdicts_match = row["status"] == raw["status"]
                if not verdicts_match:
                    report["meta"]["preprocess_verdicts_match"] = False
                entry = {
                    "status_on": row["status"],
                    "status_off": raw["status"],
                    "verdicts_match": verdicts_match,
                    "sat_seconds_on": row["sat_seconds"],
                    "sat_seconds_off": raw["sat_seconds"],
                    "wall_seconds_on": row["wall_seconds"],
                    "wall_seconds_off": raw["wall_seconds"],
                }
                entry.update(row.get("preprocess", {}))
                compare[bench_name] = entry
        report["engines"][name] = rows
        if compare:
            report["preprocess"][name] = compare
    report["cache"] = _run_cache_comparison(bench_names, timeout)
    report["meta"]["cache_verdicts_match"] = report["cache"]["verdicts_match"]
    report["incremental"] = _run_incremental_comparison(
        timeout, steps=incremental_steps
    )
    report["meta"]["incremental_verdicts_match"] = bool(
        report["incremental"]["verdicts_match"]
        and report["incremental"]["expected_statuses_ok"]
    )
    report["sat_core"] = run_sat_core_comparison(sat_core_families)
    report["meta"]["sat_core_verdicts_match"] = report["sat_core"][
        "verdicts_match"
    ]
    report["cube_vs_sequential"] = run_cube_comparison(
        cube_families, procs=cube_procs
    )
    report["meta"]["cube_verdicts_match"] = report["cube_vs_sequential"][
        "verdicts_match"
    ]
    return report


def format_table(report: Dict) -> str:
    """Human-readable summary of a smoke report (one row per engine)."""
    bench_names = report["meta"]["benchmarks"]
    lines = [
        "%-10s %10s %10s %10s  %s"
        % ("engine", "wall", "encode", "sat", "statuses")
    ]
    for name, rows in report["engines"].items():
        wall = sum(r["wall_seconds"] for r in rows.values())
        encode = sum(r["encode_seconds"] for r in rows.values())
        sat = sum(r["sat_seconds"] for r in rows.values())
        statuses = ",".join(rows[b]["status"] for b in bench_names)
        lines.append(
            "%-10s %9.3fs %9.3fs %9.3fs  %s"
            % (name, wall, encode, sat, statuses)
        )
    if report.get("preprocess"):
        lines.append("")
        lines.append(
            "%-10s %9s %9s %9s %9s  %s"
            % (
                "preprocess",
                "clauses",
                "reduced",
                "sat-on",
                "sat-off",
                "verdicts",
            )
        )
        for name, compare in report["preprocess"].items():
            before = sum(r.get("clauses_before", 0) for r in compare.values())
            after = sum(r.get("clauses_after", 0) for r in compare.values())
            sat_on = sum(r["sat_seconds_on"] for r in compare.values())
            sat_off = sum(r["sat_seconds_off"] for r in compare.values())
            ok = all(r["verdicts_match"] for r in compare.values())
            reduced = (
                "%.0f%%" % (100.0 * (before - after) / before)
                if before
                else "-"
            )
            lines.append(
                "%-10s %9d %9s %8.3fs %8.3fs  %s"
                % (
                    name,
                    before,
                    reduced,
                    sat_on,
                    sat_off,
                    "ok" if ok else "MISMATCH",
                )
            )
    cache = report.get("cache")
    if cache:
        lines.append("")
        lines.append(
            "%-10s %9s %9s %9s  %s"
            % ("cache", "cold", "warm", "speedup", "verdicts")
        )
        lines.append(
            "%-10s %8.3fs %8.3fs %8sx  %s"
            % (
                cache["inner_engine"],
                cache["wall_seconds_cold"],
                cache["wall_seconds_warm"],
                cache["speedup"] if cache["speedup"] is not None else "-",
                "ok" if cache["verdicts_match"] else "MISMATCH",
            )
        )
    sat_core = report.get("sat_core")
    if sat_core:
        lines.append("")
        lines.append(
            "%-16s %9s %9s %9s  %s"
            % ("sat-core", "arena", "legacy", "speedup", "statuses")
        )
        for name, row in sat_core["instances"].items():
            lines.append(
                "%-16s %8.3fs %8.3fs %8.2fx  %s"
                % (
                    name,
                    row["seconds_arena"],
                    row["seconds_legacy"],
                    row["speedup"] or 0.0,
                    (
                        row["status_arena"]
                        if row["verdicts_match"]
                        else "MISMATCH"
                    ),
                )
            )
        agg = sat_core["aggregate"]
        lines.append(
            "%-16s %8.3fs %8.3fs %8.2fx  %s"
            % (
                "aggregate",
                agg["seconds_arena"],
                agg["seconds_legacy"],
                agg["speedup"] or 0.0,
                "ok" if sat_core["verdicts_match"] else "MISMATCH",
            )
        )
    cube = report.get("cube_vs_sequential")
    if cube:
        lines.append("")
        lines.append(
            "%-16s %9s %9s %9s %8s  %s"
            % ("cube(x%d)" % cube["procs"], "seq", "cube", "speedup",
               "shared", "statuses")
        )
        for name, row in cube["instances"].items():
            lines.append(
                "%-16s %8.3fs %8.3fs %8.2fx %8d  %s"
                % (
                    name,
                    row["seconds_sequential"],
                    row["seconds_cube"],
                    row["speedup"] or 0.0,
                    row["imported_clauses"],
                    (
                        row["status_cube"]
                        if row["verdicts_match"]
                        else "MISMATCH"
                    ),
                )
            )
        agg = cube["aggregate"]
        lines.append(
            "%-16s %8.3fs %8.3fs %8.2fx %8d  %s"
            % (
                "aggregate",
                agg["seconds_sequential"],
                agg["seconds_cube"],
                agg["speedup"] or 0.0,
                agg["imported_clauses"],
                "ok" if cube["verdicts_match"] else "MISMATCH",
            )
        )
        ablation = cube.get("share_ablation")
        if ablation:
            lines.append(
                "%-16s %8.3fs %8.3fs %18s  %s"
                % (
                    "share-ablation",
                    ablation["seconds_share"],
                    ablation["seconds_noshare"],
                    "(share vs noshare)",
                    (
                        "ok"
                        if ablation["no_share_no_faster"]
                        else "SHARING SLOWER"
                    ),
                )
            )
    incremental = report.get("incremental")
    if incremental:
        ok = (
            incremental["verdicts_match"]
            and incremental["expected_statuses_ok"]
        )
        lines.append("")
        lines.append(
            "%-10s %9s %9s %9s  %s"
            % ("session", "incr", "scratch", "speedup", "verdicts")
        )
        lines.append(
            "%-10s %8.3fs %8.3fs %8sx  %s"
            % (
                "%s/%d" % (incremental["inner_engine"], incremental["steps"]),
                incremental["wall_seconds_incremental"],
                incremental["wall_seconds_scratch"],
                (
                    incremental["speedup"]
                    if incremental["speedup"] is not None
                    else "-"
                ),
                "ok" if ok else "MISMATCH",
            )
        )
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")


def write_incremental_report(report: Dict, path: str) -> None:
    """Write just the incremental-vs-scratch section (BENCH_PR6.json)."""
    sub = {
        "meta": {
            "python": report["meta"]["python"],
            "timeout_seconds": report["meta"]["timeout_seconds"],
            "generated_by": "repro bench-smoke",
            "incremental_verdicts_match": report["meta"][
                "incremental_verdicts_match"
            ],
        },
        "incremental": report["incremental"],
    }
    write_report(sub, path)


def write_sat_core_report(report: Dict, path: str) -> None:
    """Write just the arena-vs-legacy section (BENCH_PR7.json)."""
    sub = {
        "meta": {
            "python": report["meta"]["python"],
            "generated_by": "repro bench-smoke",
            "sat_core_verdicts_match": report["meta"][
                "sat_core_verdicts_match"
            ],
        },
        "sat_core": report["sat_core"],
    }
    write_report(sub, path)


def write_cube_report(report: Dict, path: str) -> None:
    """Write just the cube-vs-sequential section (BENCH_PR8.json)."""
    sub = {
        "meta": {
            "python": report["meta"]["python"],
            "generated_by": "repro bench-smoke",
            "cube_verdicts_match": report["meta"]["cube_verdicts_match"],
        },
        "cube_vs_sequential": report["cube_vs_sequential"],
    }
    write_report(sub, path)
