"""The :class:`Engine` abstraction and its capability metadata.

An engine is one complete decision procedure behind the uniform
``SolveRequest → SolveOutcome`` contract.  Capability metadata lets
callers pick engines mechanically: the portfolio driver skips engines
that cannot honour a countermodel request, the experiment runner knows
which engines accept a wall-clock budget, and ``repro check`` can warn
before handing a huge formula to a bounded oracle.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..logic.terms import Formula
from .contract import SolveRequest, SolveOutcome

__all__ = ["EngineCapabilities", "Engine"]


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can and cannot do.

    ``complete``
        Decides every input given unbounded resources.
    ``bounded``
        May refuse inputs below any resource limit (the brute-force
        oracle gives up as soon as its enumeration space exceeds its
        budget, no matter how much time is available).
    ``countermodels``
        Can produce a falsifying interpretation for INVALID inputs.
    ``time_limit`` / ``conflict_limit``
        Honours the corresponding :class:`SolveRequest` knob.
    ``preprocessing``
        Honours ``SolveRequest.preprocess`` (runs the CNF simplifier
        between CNF generation and the SAT search); ``bench-smoke`` uses
        this to know which engines to measure with the stage on vs. off.
    """

    description: str = ""
    complete: bool = True
    bounded: bool = False
    countermodels: bool = True
    time_limit: bool = True
    conflict_limit: bool = False
    preprocessing: bool = False


class Engine(abc.ABC):
    """One decision procedure behind the shared contract.

    Subclasses set ``name`` (the registry key) and ``capabilities`` and
    implement :meth:`solve`.  Engines must be stateless across calls —
    the portfolio driver instantiates them once and reuses them from
    worker processes.
    """

    name: str = ""
    capabilities: EngineCapabilities = EngineCapabilities()

    @abc.abstractmethod
    def solve(self, request: SolveRequest) -> SolveOutcome:
        """Decide ``request.formula``; never raises on resource limits."""

    def decide(
        self,
        formula: Formula,
        time_limit: Optional[float] = None,
        **kwargs: Any,
    ) -> SolveOutcome:
        """Convenience wrapper: build the request inline."""
        return self.solve(
            SolveRequest(formula=formula, time_limit=time_limit, **kwargs)
        )

    def _timed(
        self,
        request: SolveRequest,
        runner: Callable[[SolveRequest], SolveOutcome],
    ) -> SolveOutcome:
        """Run ``runner(request)`` and stamp the outcome's wall time."""
        start = time.perf_counter()
        outcome = runner(request)
        outcome.wall_seconds = time.perf_counter() - start
        return outcome

    def __repr__(self) -> str:
        return "<Engine %s: %s>" % (self.name, self.capabilities.description)
