"""The seven built-in engines behind the uniform contract.

Four eager encodings (``sd`` / ``eij`` / ``hybrid`` / ``static``) run the
staged pipeline in :mod:`repro.engine.stages`; the lazy (CVC-style) and
SVC-style baselines and the brute-force oracle are wrapped so their
procedure-specific statistics flow through unchanged while gaining the
same stage-telemetry shape.
"""

from __future__ import annotations

from ..core.result import StageRecord
from ..core.status import Status
from ..solvers.brute import BruteForceLimitExceeded, brute_force_valid
from ..solvers.lazy import check_validity_lazy
from ..solvers.svclike import check_validity_svc
from .base import Engine, EngineCapabilities
from .contract import SolveOutcome, SolveRequest
from .stages import run_eager

__all__ = [
    "EagerEngine",
    "LazyEngine",
    "SvcEngine",
    "BruteEngine",
    "BUILTIN_ENGINES",
]

_EAGER_DESCRIPTIONS = {
    "sd": "eager small-domain (bit-vector) encoding",
    "eij": "eager per-constraint (difference-bound) encoding",
    "hybrid": "the paper's HYBRID encoding (SepCnt-thresholded SD/EIJ)",
    "static": "hybrid with the static per-class heuristic",
}


class EagerEngine(Engine):
    """One eager encoding method run through the staged pipeline."""

    def __init__(self, method: str) -> None:
        self.method = method
        self.name = method
        self.capabilities = EngineCapabilities(
            description=_EAGER_DESCRIPTIONS[method],
            complete=True,
            countermodels=True,
            time_limit=True,
            conflict_limit=True,
            preprocessing=True,
        )

    def solve(self, request: SolveRequest) -> SolveOutcome:
        return run_eager(request, method=self.method)


class LazyEngine(Engine):
    """The CVC-style lazy abstraction-refinement baseline."""

    name = "lazy"
    capabilities = EngineCapabilities(
        description="lazy SAT + theory refinement (CVC baseline)",
        complete=True,
        countermodels=True,
        time_limit=True,
    )

    def solve(self, request: SolveRequest) -> SolveOutcome:
        def run(req: SolveRequest) -> SolveOutcome:
            result = check_validity_lazy(
                req.formula,
                max_iterations=req.options.get("max_iterations"),
                time_limit=req.time_limit,
                want_countermodel=req.want_countermodel,
                incremental=req.options.get("incremental", True),
            )
            outcome = SolveOutcome.from_decision_result(self.name, result)
            stats = result.stats
            stats.stages = [
                StageRecord(
                    "encode",
                    stats.encode_seconds,
                    {
                        "dag_suf": stats.dag_size_suf,
                        "dag_sep": stats.dag_size_sep,
                        "vars": stats.cnf_vars,
                        "clauses": stats.cnf_clauses,
                    },
                ),
                StageRecord(
                    "refine",
                    stats.sat_seconds,
                    {
                        "iterations": stats.iterations,
                        "theory_checks": stats.theory_checks,
                        "conflict_clauses": stats.conflict_clauses_added,
                    },
                ),
            ]
            return outcome

        return self._timed(request, run)


class SvcEngine(Engine):
    """The SVC-style structural case-splitting baseline."""

    name = "svc"
    capabilities = EngineCapabilities(
        description="structural case splitting over ground atoms (SVC)",
        complete=True,
        countermodels=True,
        time_limit=True,
    )

    def solve(self, request: SolveRequest) -> SolveOutcome:
        def run(req: SolveRequest) -> SolveOutcome:
            result = check_validity_svc(
                req.formula,
                time_limit=req.time_limit,
                max_splits=req.options.get("max_splits"),
                want_countermodel=req.want_countermodel,
            )
            outcome = SolveOutcome.from_decision_result(self.name, result)
            stats = result.stats
            stats.stages = [
                StageRecord(
                    "flatten",
                    stats.encode_seconds,
                    {
                        "dag_suf": stats.dag_size_suf,
                        "dag_sep": stats.dag_size_sep,
                    },
                ),
                StageRecord(
                    "split",
                    stats.sat_seconds,
                    {
                        "splits": stats.splits,
                        "theory_checks": stats.theory_checks,
                        "pruned": stats.pruned_branches,
                    },
                ),
            ]
            return outcome

        return self._timed(request, run)


class BruteEngine(Engine):
    """The enumeration oracle over the small-model domain.

    Complete only below its enumeration budget (``options["limit"]``,
    default 2,000,000 interpretations); beyond that it answers UNKNOWN
    immediately instead of consuming time, which makes it a cheap
    portfolio member on tiny formulas and a no-op on large ones.
    """

    name = "brute"
    capabilities = EngineCapabilities(
        description="small-model enumeration against the reference semantics",
        complete=False,
        bounded=True,
        countermodels=False,
        time_limit=False,
    )

    DEFAULT_LIMIT = 2_000_000

    def solve(self, request: SolveRequest) -> SolveOutcome:
        def run(req: SolveRequest) -> SolveOutcome:
            limit = req.options.get("limit", self.DEFAULT_LIMIT)
            try:
                valid = brute_force_valid(req.formula, limit=limit)
            except BruteForceLimitExceeded as exc:
                outcome = SolveOutcome(
                    engine=self.name,
                    status=Status.UNKNOWN,
                    detail=str(exc),
                )
            else:
                outcome = SolveOutcome(
                    engine=self.name,
                    status=Status.VALID if valid else Status.INVALID,
                )
            outcome.stats.method = "BRUTE"
            outcome.stats.stages = [
                StageRecord("enumerate", counters={"limit": limit})
            ]
            return outcome

        outcome = self._timed(request, run)
        outcome.stats.stages[0].seconds = outcome.wall_seconds
        outcome.stats.sat_seconds = outcome.wall_seconds
        return outcome


#: Construction order doubles as the default portfolio priority: the
#: paper's HYBRID first, then the other eager encodings, the baselines,
#: and the bounded oracle last.
BUILTIN_ENGINES = (
    lambda: EagerEngine("hybrid"),
    lambda: EagerEngine("static"),
    lambda: EagerEngine("eij"),
    lambda: EagerEngine("sd"),
    LazyEngine,
    SvcEngine,
    BruteEngine,
)
