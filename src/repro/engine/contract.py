"""The shared request/outcome contract every engine speaks.

One :class:`SolveRequest` in, one :class:`SolveOutcome` out — regardless
of whether the engine is the eager pipeline, a baseline, the brute-force
oracle, or the parallel portfolio.  The outcome subsumes the historical
per-procedure result types (:class:`~repro.core.result.DecisionResult`,
the fuzz oracle's ``MethodOutcome``, ``LazyStats``/``SvcStats``): it
carries the status, the countermodel, the full statistics object (which
may be a subclass with procedure-specific counters), and the uniform
per-stage telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.result import DecisionResult, DecisionStats, StageRecord
from ..core.status import Status
from ..encodings.hybrid import DEFAULT_SEP_THOLD
from ..logic.semantics import Interpretation
from ..logic.terms import Formula

__all__ = ["SolveRequest", "SolveOutcome"]


@dataclass
class SolveRequest:
    """One validity query plus every knob an engine may honour.

    Engines ignore knobs they have no use for (the brute-force oracle has
    no ``sep_thold``); engine-specific extras travel in ``options`` (the
    lazy engine's ``max_iterations``, SVC's ``max_splits``, brute's
    enumeration ``limit``, the portfolio's ``engines`` subset).
    """

    formula: Formula
    want_countermodel: bool = True
    time_limit: Optional[float] = None
    conflict_limit: Optional[int] = None
    sep_thold: int = DEFAULT_SEP_THOLD
    trans_budget: Optional[int] = None
    sd_ranges: str = "uniform"
    #: Run the SatELite-style CNF simplifier between CNF generation and
    #: the SAT search (eager engines only; ``repro check --no-preprocess``
    #: is the escape hatch).
    preprocess: bool = True
    options: Dict[str, Any] = field(default_factory=dict)

    def replace_formula(self, formula: Formula) -> "SolveRequest":
        return SolveRequest(
            formula=formula,
            want_countermodel=self.want_countermodel,
            time_limit=self.time_limit,
            conflict_limit=self.conflict_limit,
            sep_thold=self.sep_thold,
            trans_budget=self.trans_budget,
            sd_ranges=self.sd_ranges,
            preprocess=self.preprocess,
            options=dict(self.options),
        )


@dataclass
class SolveOutcome:
    """What every engine returns.

    ``engine`` is the registry name that produced the outcome; for the
    portfolio it is ``"portfolio"`` and ``winner`` names the member whose
    verdict was adopted.  ``stats`` may be a :class:`DecisionStats`
    subclass carrying procedure-specific counters; ``stats.stages`` holds
    the uniform per-stage telemetry.
    """

    engine: str
    status: Status
    stats: DecisionStats = field(default_factory=DecisionStats)
    counterexample: Optional[Interpretation] = None
    detail: str = ""
    wall_seconds: float = 0.0
    winner: Optional[str] = None

    @property
    def valid(self) -> Optional[bool]:
        """True / False when decided, ``None`` otherwise."""
        if self.status == Status.VALID:
            return True
        if self.status == Status.INVALID:
            return False
        return None

    @property
    def decided(self) -> bool:
        return self.valid is not None

    @property
    def stages(self) -> List[StageRecord]:
        return self.stats.stages

    def to_decision_result(self) -> DecisionResult:
        """Downcast to the historical result type (drops engine/winner)."""
        status = self.status
        if status is Status.ERROR:
            status = Status.UNKNOWN
        return DecisionResult(
            status=status,
            stats=self.stats,
            counterexample=self.counterexample,
            detail=self.detail,
        )

    @classmethod
    def from_decision_result(
        cls,
        engine: str,
        result: DecisionResult,
        wall_seconds: float = 0.0,
    ) -> "SolveOutcome":
        return cls(
            engine=engine,
            status=Status(result.status),
            stats=result.stats,
            counterexample=result.counterexample,
            detail=result.detail,
            wall_seconds=wall_seconds,
        )
