"""The parallel portfolio driver: race engines, first decided verdict wins.

The paper's HYBRID exists because neither SD nor EIJ is robust across
workloads; the portfolio applies the same argument across whole
procedures.  Members run in separate processes (the CDCL search is pure
Python and CPU-bound, so threads would serialize on the GIL); the first
``VALID``/``INVALID`` verdict is adopted and every still-running member
is terminated.  Ties — two members decided within the same poll tick —
are broken by registry priority order, which makes the winning engine
deterministic whenever completion order is (and is also what the
sequential fallback and the batch API use).

``solve_batch`` decides many formulas with a worker pool; pool workers
are daemonic (they cannot fork grandchildren), so each item runs the
sequential portfolio in-process.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.status import Status
from ..logic.printer import to_sexpr
from ..logic.terms import Formula
from .base import Engine, EngineCapabilities
from .contract import SolveOutcome, SolveRequest

__all__ = [
    "PortfolioEngine",
    "solve_portfolio",
    "solve_batch",
    "default_members",
]

#: How long a cancelled member may take to die before escalating to kill.
_TERMINATE_GRACE = 2.0

#: Poll granularity while waiting for results with no deadline.
_POLL_SECONDS = 0.05


def default_members(
    exclude: Sequence[str] = ("portfolio", "cached", "cube"),
) -> List[str]:
    """Every registered engine except the meta-engines.

    The portfolio itself and the ``cached`` wrapper are excluded: racing
    the race is circular, and a cache member in a race adds nothing but
    a second canonicalization of the same formula.  ``cube`` is excluded
    because it is the *escalation* level — ``solve_batch`` re-runs
    undecided formulas through cube-and-conquer after the race — and a
    race member that forks its own worker fleet would oversubscribe the
    machine for every easy formula.
    """
    from . import registry

    return [name for name in registry.list_engines() if name not in exclude]


def _request_payload(request: SolveRequest) -> Dict[str, Any]:
    """A picklable, process-independent image of ``request``.

    The formula travels as its s-expression text and is re-parsed in the
    worker, which re-establishes hash-consing in that process regardless
    of the multiprocessing start method.
    """
    options = {
        key: value
        for key, value in request.options.items()
        if key not in ("engines", "parallel", "deadline", "wait_all")
    }
    return {
        "formula": to_sexpr(request.formula),
        "want_countermodel": request.want_countermodel,
        "time_limit": request.time_limit,
        "conflict_limit": request.conflict_limit,
        "sep_thold": request.sep_thold,
        "trans_budget": request.trans_budget,
        "sd_ranges": request.sd_ranges,
        "preprocess": request.preprocess,
        "options": options,
    }


def _request_from_payload(payload: Dict[str, Any]) -> SolveRequest:
    from ..logic.parser import parse_formula

    return SolveRequest(
        formula=parse_formula(payload["formula"]),
        want_countermodel=payload["want_countermodel"],
        time_limit=payload["time_limit"],
        conflict_limit=payload["conflict_limit"],
        sep_thold=payload["sep_thold"],
        trans_budget=payload["trans_budget"],
        sd_ranges=payload["sd_ranges"],
        preprocess=payload.get("preprocess", True),
        options=dict(payload["options"]),
    )


def _member_worker(name: str, payload: Dict[str, Any], out_queue: Any) -> None:
    """Run one member engine in a child process; always reports back."""
    from . import registry

    try:
        outcome = registry.get(name).solve(_request_from_payload(payload))
    except Exception as exc:  # a member crash must not kill the race
        outcome = SolveOutcome(
            engine=name,
            status=Status.ERROR,
            detail="%s: %s" % (type(exc).__name__, exc),
        )
    out_queue.put((name, outcome))


def _mp_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def _pick_winner(
    decided: Dict[str, SolveOutcome], members: Sequence[str]
) -> Tuple[str, SolveOutcome]:
    """Deterministic tie-break: lowest member-priority index wins."""
    name = min(decided, key=lambda n: members.index(n))
    return name, decided[name]


def _portfolio_outcome(
    winner_name: Optional[str],
    winner: Optional[SolveOutcome],
    members: Sequence[str],
    finished: Dict[str, SolveOutcome],
    cancelled: Sequence[str],
    started: float,
) -> SolveOutcome:
    wall = time.perf_counter() - started
    from ..core.result import StageRecord

    def race_record() -> StageRecord:
        # Built at each publish site (the publish-early contract,
        # RE305): a record created up front and attached later is lost
        # if summarization raises in between.
        return StageRecord(
            "race",
            wall,
            {
                "members": len(members),
                "finished": len(finished),
                "cancelled": len(cancelled),
            },
        )

    if winner is None:
        # Nothing decided: adopt the highest-priority finished outcome
        # (keeps TRANSLATION_LIMIT vs UNKNOWN distinctions) or report
        # a bare timeout.
        summary = ", ".join(
            "%s=%s" % (name, finished[name].status)
            for name in members
            if name in finished
        )
        if finished:
            name, best = _pick_winner(dict(finished), members)
            status = best.status
            if status is Status.ERROR:
                status = Status.UNKNOWN
            best.stats.stages = list(best.stats.stages) + [race_record()]
            return SolveOutcome(
                engine="portfolio",
                status=status,
                stats=best.stats,
                detail="no engine decided (%s)" % summary,
                wall_seconds=wall,
            )
        undecided = SolveOutcome(
            engine="portfolio",
            status=Status.UNKNOWN,
            detail="deadline reached before any engine finished",
            wall_seconds=wall,
        )
        undecided.stats.stages = [race_record()]
        return undecided
    outcome = SolveOutcome(
        engine="portfolio",
        status=winner.status,
        stats=winner.stats,
        counterexample=winner.counterexample,
        detail=winner.detail,
        wall_seconds=wall,
        winner=winner_name,
    )
    if cancelled:
        extra = "cancelled: %s" % ", ".join(cancelled)
        outcome.detail = (
            "%s; %s" % (outcome.detail, extra) if outcome.detail else extra
        )
    # The race itself is a stage: telemetry must show how many members
    # ran, finished, and were cancelled (tested by the loser-cancellation
    # test; do not drop these counters).
    outcome.stats.stages = list(outcome.stats.stages) + [race_record()]
    return outcome


def _solve_sequential(
    request: SolveRequest,
    members: Sequence[str],
    deadline: Optional[float] = None,
) -> SolveOutcome:
    """In-process fallback: priority order, stop at the first verdict."""
    from . import registry

    started = time.perf_counter()
    finished: Dict[str, SolveOutcome] = {}
    if deadline is None:
        deadline = request.time_limit
    cutoff = started + deadline if deadline is not None else None
    for name in members:
        if cutoff is not None and time.perf_counter() >= cutoff:
            break
        try:
            outcome = registry.get(name).solve(request)
        except Exception as exc:
            outcome = SolveOutcome(
                engine=name,
                status=Status.ERROR,
                detail="%s: %s" % (type(exc).__name__, exc),
            )
        finished[name] = outcome
        if outcome.decided:
            return _portfolio_outcome(
                name, outcome, members, finished, [], started
            )
    return _portfolio_outcome(None, None, members, finished, [], started)


def solve_portfolio(
    request: SolveRequest,
    engines: Optional[Sequence[str]] = None,
    parallel: bool = True,
    deadline: Optional[float] = None,
    wait_all: bool = False,
) -> SolveOutcome:
    """Race ``engines`` on ``request``; first decided verdict wins.

    ``deadline`` (seconds, default ``request.time_limit``) bounds the
    whole race; members additionally receive ``request.time_limit`` as
    their own budget.  With ``parallel=False`` the members run in-process
    in priority order instead (deterministic, multiprocessing-free).
    With ``wait_all=True`` the race waits for every member (or the
    deadline) and then applies the priority tie-break — fully
    deterministic regardless of completion order, at the cost of the
    slowest member's runtime.
    """
    members = list(engines) if engines is not None else default_members()
    if not members:
        raise ValueError("portfolio needs at least one member engine")
    if deadline is None:
        deadline = request.time_limit
    if not parallel:
        return _solve_sequential(request, members, deadline=deadline)

    ctx = _mp_context()
    results = ctx.Queue()
    payload = _request_payload(request)
    started = time.perf_counter()
    procs: Dict[str, multiprocessing.Process] = {}
    for name in members:
        proc = ctx.Process(
            target=_member_worker,
            args=(name, payload, results),
            name="portfolio-%s" % name,
            daemon=True,
        )
        proc.start()
        procs[name] = proc

    finished: Dict[str, SolveOutcome] = {}
    decided: Dict[str, SolveOutcome] = {}
    try:
        while len(finished) < len(members):
            if deadline is not None:
                remaining = deadline - (time.perf_counter() - started)
                if remaining <= 0:
                    break
                timeout = min(remaining, _POLL_SECONDS * 4)
            else:
                timeout = _POLL_SECONDS * 4
            try:
                name, outcome = results.get(timeout=timeout)
            except queue_mod.Empty:
                # A member that died without reporting (OOM-kill, signal)
                # must not hang the race forever.
                for name, proc in procs.items():
                    if name not in finished and not proc.is_alive():
                        finished[name] = SolveOutcome(
                            engine=name,
                            status=Status.ERROR,
                            detail="worker exited without a result "
                            "(exitcode %s)" % proc.exitcode,
                        )
                continue
            finished[name] = outcome
            if outcome.decided:
                decided[name] = outcome
                if wait_all:
                    continue
                # Drain same-tick arrivals so the priority tie-break sees
                # every verdict that is already available.
                while True:
                    try:
                        other_name, other = results.get_nowait()
                    except queue_mod.Empty:
                        break
                    finished[other_name] = other
                    if other.decided:
                        decided[other_name] = other
                break
    finally:
        cancelled = _cancel_losers(procs, finished)

    if decided:
        winner_name, winner = _pick_winner(decided, members)
        return _portfolio_outcome(
            winner_name, winner, members, finished, cancelled, started
        )
    return _portfolio_outcome(
        None, None, members, finished, cancelled, started
    )


def _cancel_losers(
    procs: Dict[str, multiprocessing.Process],
    finished: Dict[str, SolveOutcome],
) -> List[str]:
    """Terminate members that are still running; return their names."""
    cancelled = []
    for name, proc in procs.items():
        if proc.is_alive():
            proc.terminate()
            if name not in finished:
                cancelled.append(name)
    for proc in procs.values():
        proc.join(timeout=_TERMINATE_GRACE)
        if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            proc.kill()
            proc.join(timeout=_TERMINATE_GRACE)
    return cancelled


# ---------------------------------------------------------------------------
# Batch API
# ---------------------------------------------------------------------------


def _cube_escalate(
    formulas: Sequence[Formula],
    outcomes: List[SolveOutcome],
    request_kwargs: Dict[str, Any],
) -> None:
    """Third scheduling level: cube-and-conquer for undecided formulas.

    ``solve_batch`` schedules work at three grains — dedupe across
    formulas, the portfolio race across engines, and (here) cubes
    *within* a formula: anything the race left undecided is re-run
    through the ``cube`` engine from the parent process, where the
    conductor may fork real workers.  The conflict limit is dropped on
    escalation (it is what usually defeated the race members); the
    wall-clock budget still applies.
    """
    from . import registry

    engine = registry.get("cube")
    for idx, outcome in enumerate(outcomes):
        if outcome.decided:
            continue
        kwargs = dict(request_kwargs)
        kwargs["conflict_limit"] = None
        try:
            escalated = engine.solve(
                SolveRequest(formula=formulas[idx], **kwargs)
            )
        except Exception as exc:  # escalation must never lose a verdict
            outcome.detail = (
                "%s; cube escalation failed: %s" % (outcome.detail, exc)
                if outcome.detail
                else "cube escalation failed: %s" % exc
            )
            continue
        if escalated.decided:
            escalated.detail = (
                "cube escalation after undecided portfolio"
                if not escalated.detail
                else escalated.detail
            )
            outcomes[idx] = escalated


def _batch_worker(item: Tuple[Dict[str, Any], List[str]]) -> SolveOutcome:
    payload, members = item
    return _solve_sequential(_request_from_payload(payload), members)


def _solve_batch_raw(
    formulas: Sequence[Formula],
    members: List[str],
    jobs: Optional[int],
    request_kwargs: Dict[str, Any],
) -> List[SolveOutcome]:
    """The pool itself: one sequential portfolio per formula, input order."""
    items = [
        (
            _request_payload(SolveRequest(formula=f, **request_kwargs)),
            members,
        )
        for f in formulas
    ]
    if not items:
        return []
    if jobs is None:
        jobs = min(len(items), multiprocessing.cpu_count())
    if jobs <= 1 or len(items) == 1:
        return [_batch_worker(item) for item in items]
    ctx = _mp_context()
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(_batch_worker, items)


def solve_batch(
    formulas: Sequence[Formula],
    engines: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    dedupe: bool = True,
    cache: Optional[Any] = None,
    cube_fallback: bool = True,
    **request_kwargs: Any,
) -> List[SolveOutcome]:
    """Decide many formulas with a pool of portfolio workers.

    Each formula is decided by the *sequential* portfolio inside one pool
    worker (pool children are daemonic and cannot fork the parallel
    race); parallelism comes from deciding ``jobs`` formulas at once.
    Results keep the input order.

    With ``cube_fallback`` (the default) formulas the portfolio leaves
    undecided are escalated to the ``cube`` engine — the third
    scheduling level: dedupe across formulas, race across engines,
    cube-and-conquer within a formula (see :func:`_cube_escalate`).

    With ``dedupe`` (the default) the batch is first partitioned into
    alpha-isomorphism classes via :func:`repro.logic.canonical.canonicalize`:
    each class is solved once on its canonical representative, the verdict
    is fanned out to every member, and countermodels are lifted back
    through each member's renaming map.  Fanned-out outcomes carry
    ``stats.cache.dedupes = 1``.  ``cache`` (a
    :class:`repro.service.ResultCache`) additionally consults/updates the
    result cache per class, so repeated batches skip the solve entirely.
    """
    members = list(engines) if engines is not None else default_members()
    if not members:
        raise ValueError("portfolio needs at least one member engine")
    formulas = list(formulas)
    if not formulas:
        return []
    escalate = cube_fallback and "cube" not in members
    if not dedupe and cache is None:
        outcomes = _solve_batch_raw(formulas, members, jobs, request_kwargs)
        if escalate:
            _cube_escalate(formulas, outcomes, request_kwargs)
        return outcomes

    from ..core.result import CacheStats, DecisionStats
    from ..logic.canonical import canonicalize, lift_interpretation
    from ..service.cache import CacheEntry, config_fingerprint

    # Hash-consing makes repeated formulas *identical* objects, so an
    # identity memo gives one canonicalization per distinct formula —
    # intra-batch dedupe hits skip the (linear-size) renaming walk.
    memo: Dict[Formula, Any] = {}
    forms = []
    for f in formulas:
        form = memo.get(f)
        if form is None:
            form = canonicalize(f)
            memo[f] = form
        forms.append(form)
    order: List[str] = []
    classes: Dict[str, List[int]] = {}
    for idx, form in enumerate(forms):
        if form.key not in classes:
            classes[form.key] = []
            order.append(form.key)
        classes[form.key].append(idx)

    want_model = request_kwargs.get("want_countermodel", True)
    fingerprint = None
    if cache is not None:
        probe = SolveRequest(formula=formulas[0], **request_kwargs)
        fingerprint = config_fingerprint(
            "batch:%s" % ",".join(members), probe
        )

    # Canonical-space outcome per class: from the cache when possible,
    # otherwise solved on the canonical representative.
    canonical_outcomes: Dict[str, SolveOutcome] = {}
    to_solve: List[str] = []
    for key in order:
        if cache is not None:
            entry, tier = cache.lookup(
                key, fingerprint, want_countermodel=want_model
            )
            if entry is not None:
                stats = DecisionStats(method="cache")
                stats.cache = CacheStats(
                    hits_memory=1 if tier == "memory" else 0,
                    hits_disk=1 if tier == "disk" else 0,
                )
                canonical_outcomes[key] = SolveOutcome(
                    engine="portfolio",
                    status=Status(entry.status),
                    stats=stats,
                    counterexample=entry.countermodel,
                    detail="cache hit (%s tier, solved by %s)"
                    % (tier, entry.engine),
                    winner=entry.engine or None,
                )
                continue
        to_solve.append(key)

    canonical_formulas = [forms[classes[key][0]].formula for key in to_solve]
    solved = _solve_batch_raw(
        canonical_formulas, members, jobs, request_kwargs
    )
    if escalate:
        # Escalate before cache-store/fan-out so a cube verdict is cached
        # and distributed to every isomorphic duplicate.
        _cube_escalate(canonical_formulas, solved, request_kwargs)
    for key, outcome in zip(to_solve, solved):
        if outcome.stats.cache is None:
            outcome.stats.cache = CacheStats()
        outcome.stats.cache.misses += 1 if cache is not None else 0
        if cache is not None and outcome.status in (
            Status.VALID,
            Status.INVALID,
        ):
            if cache.store(
                key,
                fingerprint,
                CacheEntry(
                    status=str(outcome.status),
                    countermodel=outcome.counterexample,
                    engine=outcome.winner or outcome.engine,
                ),
            ):
                outcome.stats.cache.stores += 1
        canonical_outcomes[key] = outcome

    results: List[Optional[SolveOutcome]] = [None] * len(formulas)
    for key in order:
        indices = classes[key]
        canon = canonical_outcomes[key]
        canonical_model = canon.counterexample
        for position, idx in enumerate(indices):
            lifted = (
                lift_interpretation(canonical_model, forms[idx])
                if canonical_model is not None
                else None
            )
            if position == 0:
                canon.counterexample = lifted
                results[idx] = canon
                continue
            stats = DecisionStats(method=canon.stats.method)
            stats.cache = CacheStats(dedupes=1)
            if cache is not None:
                # note_dedupes takes the cache's lock; mutating
                # cache.stats directly here would race the serve workers.
                cache.note_dedupes()
            results[idx] = SolveOutcome(
                engine=canon.engine,
                status=canon.status,
                stats=stats,
                counterexample=lifted,
                detail="deduped within batch (isomorphic to item %d)"
                % indices[0],
                winner=canon.winner,
            )
    return [outcome for outcome in results if outcome is not None]


class PortfolioEngine(Engine):
    """The portfolio as a registry engine of its own.

    ``request.options`` knobs: ``engines`` (member subset, priority
    order), ``parallel`` (default True), ``deadline`` (seconds),
    ``wait_all`` (wait for every member before tie-breaking).
    """

    name = "portfolio"
    capabilities = EngineCapabilities(
        description="process-parallel race of all engines, first verdict wins",
        complete=True,
        countermodels=True,
        time_limit=True,
    )

    def solve(self, request: SolveRequest) -> SolveOutcome:
        return solve_portfolio(
            request,
            engines=request.options.get("engines"),
            parallel=request.options.get("parallel", True),
            deadline=request.options.get("deadline"),
            wait_all=request.options.get("wait_all", False),
        )
