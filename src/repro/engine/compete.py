"""SMT-COMP-style evaluation runner behind ``repro compete``.

Sweeps one or more benchmark directories of SMT-LIB 2 scripts through
registry engines (any method, including ``portfolio``, ``cube`` and
``cached``) with a per-instance wall-clock budget, checks every verdict
against the instance's ``(set-info :status ...)`` annotation, and scores
the sweep the way SMT-COMP does:

* per-instance verdict (``sat`` / ``unsat`` / ``unknown`` / ``timeout``
  / ``error``) and wall time;
* solved / mismatch counts, aggregated globally and per family (a
  family is the instance's directory);
* the PAR-2 score: solved instances contribute their wall time,
  unsolved ones twice the budget.

The report is a plain-JSON artifact (``BENCH_PR9.json`` by default from
the CLI) so CI can upload it and ``tools/bench_gate.py`` can compare the
solved counts and PAR-2 against the committed baseline.

Correctness framing: a *mismatch* — a decided verdict that contradicts
the instance's ``:status`` — is a soundness bug in either the engine or
the annotation and always fails the sweep.  ``error`` covers both
malformed scripts and out-of-fragment constructs
(:class:`~repro.logic.smtlib.UnsupportedLogicError`); external corpora
legitimately contain those, so errors only fail under
``fail_on_error=True`` (the self-hosted smoke corpus runs that way).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.status import Status
from ..logic.smtlib import (
    SmtLibError,
    SmtScript,
    UnsupportedLogicError,
    parse_smtlib,
)
from ..logic.terms import Formula, Not
from . import registry
from .contract import SolveRequest

__all__ = [
    "CompeteConfig",
    "InstanceRun",
    "discover_instances",
    "run_compete",
    "format_table",
    "write_report",
]

DEFAULT_TIMEOUT = 10.0

#: Verdicts that count as solved (and into the PAR-2 numerator).
_SOLVED = ("sat", "unsat")


@dataclass
class CompeteConfig:
    """One sweep: roots, engine methods, and the per-instance budget."""

    roots: List[str]
    methods: List[str] = field(default_factory=lambda: ["hybrid"])
    timeout: float = DEFAULT_TIMEOUT
    sep_thold: Optional[int] = None
    fail_on_error: bool = False


@dataclass
class InstanceRun:
    """One (instance, method) result row."""

    name: str
    family: str
    expected: Optional[str]
    verdict: str  # sat | unsat | unknown | timeout | error
    wall_seconds: float
    detail: str = ""

    @property
    def solved(self) -> bool:
        return self.verdict in _SOLVED

    @property
    def mismatch(self) -> bool:
        """A decided verdict contradicting a decided ``:status``."""
        return (
            self.expected in _SOLVED
            and self.solved
            and self.verdict != self.expected
        )


def discover_instances(roots: List[str]) -> List[Tuple[str, str, str]]:
    """``(label, family, path)`` for every ``.smt2`` under ``roots``.

    Labels are root-relative (prefixed with the root's basename when
    several roots are swept, so two roots can't collide); the family is
    the instance's containing directory — the unit the per-family table
    aggregates over.
    """
    out: List[Tuple[str, str, str]] = []
    multiple = len(roots) > 1
    for root in roots:
        if os.path.isfile(root):
            base = os.path.basename(root)
            family = os.path.basename(os.path.dirname(root)) or "."
            out.append((base, family, root))
            continue
        if not os.path.isdir(root):
            raise FileNotFoundError(
                "benchmark root %r is neither a file nor a directory" % root
            )
        rootname = os.path.basename(os.path.normpath(root))
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".smt2"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root)
                label = os.path.join(rootname, rel) if multiple else rel
                family = os.path.dirname(rel) or rootname
                out.append((label, family, path))
    out.sort()
    return out


def _load_script(path: str) -> SmtScript:
    with open(path) as fp:
        return parse_smtlib(fp.read())


def _solve_instance(
    method: str,
    formula: Formula,
    timeout: float,
    sep_thold: Optional[int],
) -> Tuple[str, float, str]:
    """``(verdict, wall_seconds, detail)`` for one engine run."""
    request_kwargs: Dict[str, Any] = dict(
        formula=formula, time_limit=timeout
    )
    if sep_thold is not None:
        request_kwargs["sep_thold"] = sep_thold
    started = time.perf_counter()
    try:
        outcome = registry.get(method).solve(SolveRequest(**request_kwargs))
    except Exception as exc:  # an engine crash is a result, not an abort
        wall = time.perf_counter() - started
        return "error", wall, "%s: %s" % (type(exc).__name__, exc)
    wall = time.perf_counter() - started
    if outcome.status == Status.VALID:
        return "unsat", wall, ""
    if outcome.status == Status.INVALID:
        return "sat", wall, ""
    if outcome.status == Status.ERROR:
        return "error", wall, outcome.detail
    # Undecided: attribute to the budget when the wall clock (or the
    # engine's own detail string) says the budget is what stopped it.
    if wall >= 0.9 * timeout or "time" in outcome.detail.lower():
        return "timeout", wall, outcome.detail
    return "unknown", wall, outcome.detail


def _score(rows: List[InstanceRun], timeout: float) -> Dict[str, Any]:
    solved = [r for r in rows if r.solved]
    score: Dict[str, Any] = {
        "instances": len(rows),
        "solved": len(solved),
        "sat": sum(1 for r in rows if r.verdict == "sat"),
        "unsat": sum(1 for r in rows if r.verdict == "unsat"),
        "unknown": sum(1 for r in rows if r.verdict == "unknown"),
        "timeout": sum(1 for r in rows if r.verdict == "timeout"),
        "error": sum(1 for r in rows if r.verdict == "error"),
        "mismatches": sum(1 for r in rows if r.mismatch),
        "wall_seconds": round(sum(r.wall_seconds for r in rows), 6),
        "par2": round(
            sum(r.wall_seconds for r in solved)
            + 2.0 * timeout * (len(rows) - len(solved)),
            6,
        ),
    }
    return score


def run_compete(config: CompeteConfig) -> Dict[str, Any]:
    """Run the sweep; returns the JSON-ready report."""
    instances = discover_instances(config.roots)
    parsed: Dict[str, Tuple[Optional[SmtScript], str]] = {}
    for label, _family, path in instances:
        try:
            parsed[label] = (_load_script(path), "")
        except UnsupportedLogicError as exc:
            parsed[label] = (None, "unsupported: %s" % exc)
        except SmtLibError as exc:
            parsed[label] = (None, "parse error: %s" % exc)

    methods_report: Dict[str, Any] = {}
    mismatches_total = 0
    for method in config.methods:
        rows: List[InstanceRun] = []
        for label, family, _path in instances:
            script, parse_detail = parsed[label]
            if script is None:
                rows.append(
                    InstanceRun(
                        name=label,
                        family=family,
                        expected=None,
                        verdict="error",
                        wall_seconds=0.0,
                        detail=parse_detail,
                    )
                )
                continue
            verdict, wall, detail = _solve_instance(
                method,
                Not(script.conjunction()),
                config.timeout,
                config.sep_thold,
            )
            rows.append(
                InstanceRun(
                    name=label,
                    family=family,
                    expected=script.expected_status,
                    verdict=verdict,
                    wall_seconds=round(wall, 6),
                    detail=detail,
                )
            )
        families: Dict[str, Any] = {}
        for row in rows:
            families.setdefault(row.family, []).append(row)
        method_report: Dict[str, Any] = {
            "instances": {
                row.name: {
                    "family": row.family,
                    "expected": row.expected,
                    "verdict": row.verdict,
                    "wall_seconds": row.wall_seconds,
                    "mismatch": row.mismatch,
                    "detail": row.detail,
                }
                for row in rows
            },
            "score": _score(rows, config.timeout),
            "families": {
                family: _score(family_rows, config.timeout)
                for family, family_rows in sorted(families.items())
            },
        }
        mismatches_total += method_report["score"]["mismatches"]
        methods_report[method] = method_report

    errors_total = max(
        (report["score"]["error"] for report in methods_report.values()),
        default=0,
    )
    return {
        "meta": {
            "generated_by": "repro compete",
            "roots": list(config.roots),
            "methods": list(config.methods),
            "timeout_seconds": config.timeout,
            "instance_count": len(instances),
            "scoring": "par2",
        },
        "methods": methods_report,
        "mismatches_total": mismatches_total,
        "errors_total": errors_total,
        "ok": mismatches_total == 0
        and (not config.fail_on_error or errors_total == 0),
    }


def format_table(report: Dict[str, Any]) -> str:
    """A human-readable scoring table for the terminal."""
    lines: List[str] = []
    meta = report["meta"]
    lines.append(
        "compete: %d instance(s), timeout %.1fs, methods: %s"
        % (
            meta["instance_count"],
            meta["timeout_seconds"],
            ", ".join(meta["methods"]),
        )
    )
    header = (
        "%-10s %6s %5s %5s %7s %7s %5s %8s %9s"
        % ("method", "solved", "sat", "unsat", "unknown", "timeout",
           "error", "mismatch", "PAR-2")
    )
    lines.append(header)
    lines.append("-" * len(header))
    for method, section in report["methods"].items():
        score = section["score"]
        lines.append(
            "%-10s %6d %5d %5d %7d %7d %5d %8d %9.2f"
            % (
                method,
                score["solved"],
                score["sat"],
                score["unsat"],
                score["unknown"],
                score["timeout"],
                score["error"],
                score["mismatches"],
                score["par2"],
            )
        )
        for family, fscore in section["families"].items():
            lines.append(
                "  %-12s %d/%d solved, %d mismatch(es), PAR-2 %.2f"
                % (
                    family,
                    fscore["solved"],
                    fscore["instances"],
                    fscore["mismatches"],
                    fscore["par2"],
                )
            )
    for method, section in report["methods"].items():
        for name, row in section["instances"].items():
            if row["mismatch"]:
                lines.append(
                    "MISMATCH %s [%s]: expected %s, got %s"
                    % (name, method, row["expected"], row["verdict"])
                )
            elif row["verdict"] == "error":
                lines.append(
                    "ERROR    %s [%s]: %s" % (name, method, row["detail"])
                )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
