"""SMT-LIB 2 front end for the SUF fragment (QF_UF / QF_IDL / QF_UFIDL).

The decision procedures in this package work on SUF — equality, ``<``,
uninterpreted functions, ±constant offsets, ITE.  That fragment is exactly
the intersection of the SMT-LIB logics ``QF_UF`` and ``QF_IDL`` (plus their
union ``QF_UFIDL``), so standard benchmark scripts in those logics can be
run directly:

* ``declare-fun`` / ``declare-const`` for ``Int``- and ``Bool``-sorted
  symbols (functions over ``Int``), ``define-fun`` macros (expanded at
  application sites, parameters shadow globals);
* ``assert`` with ``and or not => = distinct ite let < <= > >=`` plus
  ``(! t :named n)`` annotations; ``let`` bindings are parallel and
  shadow outer bindings and globals, per the standard;
* integer-offset arithmetic: ``(+ t k)``, ``(- t k)``, and difference
  atoms ``(op (- a b) k)``; bare integer literals are interpreted relative
  to a designated zero constant, the standard IDL reduction;
* ``set-info :status`` is captured as :attr:`SmtScript.expected_status`
  (the convention SMT-COMP benchmarks use), ``get-model`` sets
  :attr:`SmtScript.get_model_requested`;
* ``check-sat`` — note SMT-LIB asks for *satisfiability* of the asserted
  conjunction, so it maps to the validity check of its negation.

Anything outside the fragment (multiplication, non-constant sums, arrays,
quantifiers, non-``Int`` sorts, incremental ``push``/``pop``) raises
:class:`UnsupportedLogicError`; malformed input raises
:class:`SmtLibError`.  Both carry the 1-based ``line``/``column`` of the
offending token and prefix the message with it.

The printer (:func:`to_smtlib`, :func:`to_smtlib_script`) and the reader
share one set of symbol lexical rules — :data:`RESERVED_WORDS`,
:func:`reads_as_numeral`, :func:`needs_quoting` — so every formula the
printer emits reads back to the same formula (see the round-trip
property tests in ``tests/test_smtlib_read.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .terms import (
    And,
    Node,
    BoolVar,
    Eq,
    FALSE,
    Formula,
    FuncApp,
    Iff,
    Implies,
    Ite,
    Lt,
    Not,
    Offset,
    Or,
    PredApp,
    TRUE,
    Term,
    Var,
)
from . import builders as b
from . import lexicon

__all__ = [
    "SmtLibError",
    "UnsupportedLogicError",
    "SmtScript",
    "DefinedFun",
    "parse_smtlib",
    "check_sat_smtlib",
    "to_smtlib",
    "to_smtlib_script",
    "RESERVED_WORDS",
    "needs_quoting",
    "reads_as_numeral",
]

#: Designated origin for interpreting bare integer literals (IDL shift).
ZERO_NAME = "$smt_zero"

SUPPORTED_LOGICS = ("QF_UF", "QF_IDL", "QF_UFIDL")

#: The three values ``(set-info :status ...)`` may carry (SMT-LIB 2.6).
STATUS_VALUES = ("sat", "unsat", "unknown")


class SmtLibError(ValueError):
    """Raised on syntax errors or constructs outside the SUF fragment.

    ``line``/``column`` are 1-based positions of the offending token when
    known; the rendered message is prefixed with them.
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> None:
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = "line %d, column %d: %s" % (line, column, message)
        super().__init__(message)


class UnsupportedLogicError(SmtLibError):
    """A well-formed construct that falls outside QF_UF/QF_IDL/QF_UFIDL.

    Distinguished from plain :class:`SmtLibError` so callers (the
    ``repro compete`` runner, the fuzzer's corpus loader) can separate
    "not our fragment" from "not SMT-LIB".
    """


# ---------------------------------------------------------------------------
# Shared symbol lexical rules (printer and reader agree on these)
# ---------------------------------------------------------------------------

#: Words a bare (unquoted) symbol must not spell: the SMT-LIB 2.6
#: reserved words, the command names, and every operator head or literal
#: the reader special-cases.  The printer ``|...|``-quotes them; the
#: reader rejects them as declaration names unless quoted.
RESERVED_WORDS = frozenset(
    [
        # SMT-LIB 2.6 reserved words
        "BINARY", "DECIMAL", "HEXADECIMAL", "NUMERAL", "STRING",
        "_", "!", "as", "let", "exists", "forall", "match", "par",
        # command names (reserved in scripts)
        "assert", "check-sat", "check-sat-assuming", "declare-const",
        "declare-datatype", "declare-datatypes", "declare-fun",
        "declare-sort", "define-fun", "define-fun-rec", "define-sort",
        "echo", "exit", "get-assertions", "get-assignment", "get-info",
        "get-model", "get-option", "get-proof", "get-unsat-assumptions",
        "get-unsat-core", "get-value", "pop", "push", "reset",
        "reset-assertions", "set-info", "set-logic", "set-option",
        # operator heads and literals the reader interprets
        "true", "false", "and", "or", "not", "=>", "xor", "=",
        "distinct", "ite", "<", "<=", ">", ">=", "+", "-", "*",
        # historical sexpr-syntax operators quoted for compatibility
        "succ", "pred",
    ]
)

#: Characters a simple (unquoted) SMT-LIB symbol may contain.
_SIMPLE_CHARS = lexicon.SIMPLE_SYMBOL_CHARS

#: The reader lexes ``5``, ``-0``, ``+3`` as integer literals (signed
#: spellings survive printing ``Offset`` constants), so such names must
#: be ``|quoted|``.
reads_as_numeral = lexicon.reads_as_numeral


def needs_quoting(name: str) -> bool:
    """True when ``name`` must be ``|...|``-quoted to read back as itself."""
    return lexicon.symbol_needs_quoting(name, RESERVED_WORDS)


def _smt_symbol(name: str) -> str:
    """Render a symbol, ``|...|``-quoting it when it needs it."""
    try:
        return lexicon.render_symbol(name, RESERVED_WORDS)
    except ValueError:
        raise SmtLibError("symbol %r is not expressible in SMT-LIB" % name)


# ---------------------------------------------------------------------------
# Lexer: text -> position-carrying tokens
# ---------------------------------------------------------------------------


class _Atom(str):
    """One atomic token, carrying its classification and position.

    ``kind`` is one of ``symbol``, ``quoted`` (a ``|...|`` symbol; always
    a name, never an integer literal, even when its spelling looks
    numeric, e.g. ``|0|``), ``numeral``, ``decimal``, ``string``, or
    ``keyword`` (``:named`` and friends).
    """

    kind: str
    line: int
    column: int

    def __new__(cls, text: str, kind: str, line: int, column: int) -> "_Atom":
        atom = super().__new__(cls, text)
        atom.kind = kind
        atom.line = line
        atom.column = column
        return atom


class _SList(list):
    """A parenthesized s-expression, carrying its ``(``'s position."""

    line: int = 0
    column: int = 0


SExpr = Union[_Atom, _SList]

_PUNCT = "()"


def _classify(text: str) -> str:
    if text.startswith(":"):
        return "keyword"
    if reads_as_numeral(text):
        return "numeral"
    head = text.lstrip("+-")
    if head and head.replace(".", "", 1).isdigit() and "." in head:
        return "decimal"
    return "symbol"


def _tokenize(text: str) -> List[_Atom]:
    tokens: List[_Atom] = []
    line, col = 1, 1
    i, n = 0, len(text)

    def advance(ch: str) -> None:
        nonlocal line, col
        if ch == "\n":
            line += 1
            col = 1
        else:
            col += 1

    while i < n:
        ch = text[i]
        if ch == ";":
            while i < n and text[i] != "\n":
                advance(text[i])
                i += 1
            continue
        if ch.isspace():
            advance(ch)
            i += 1
            continue
        start_line, start_col = line, col
        if ch in _PUNCT:
            tokens.append(_Atom(ch, "punct", start_line, start_col))
            advance(ch)
            i += 1
            continue
        if ch == "|":  # quoted symbol; may span lines
            advance(ch)
            i += 1
            buf: List[str] = []
            while i < n and text[i] != "|":
                if text[i] == "\\":
                    raise SmtLibError(
                        "backslash is not allowed in a quoted symbol",
                        line, col,
                    )
                buf.append(text[i])
                advance(text[i])
                i += 1
            if i >= n:
                raise SmtLibError(
                    "unterminated quoted symbol", start_line, start_col
                )
            advance("|")
            i += 1
            tokens.append(
                _Atom("".join(buf), "quoted", start_line, start_col)
            )
            continue
        if ch == '"':  # string literal; "" escapes a quote
            advance(ch)
            i += 1
            buf = []
            while i < n:
                if text[i] == '"':
                    if i + 1 < n and text[i + 1] == '"':
                        buf.append('"')
                        advance('"')
                        advance('"')
                        i += 2
                        continue
                    break
                buf.append(text[i])
                advance(text[i])
                i += 1
            if i >= n:
                raise SmtLibError(
                    "unterminated string literal", start_line, start_col
                )
            advance('"')
            i += 1
            tokens.append(
                _Atom("".join(buf), "string", start_line, start_col)
            )
            continue
        buf = []
        while i < n and not (
            text[i].isspace() or text[i] in _PUNCT or text[i] in ';|"'
        ):
            buf.append(text[i])
            advance(text[i])
            i += 1
        word = "".join(buf)
        tokens.append(_Atom(word, _classify(word), start_line, start_col))
    return tokens


def _read_all(tokens: List[_Atom]) -> List[SExpr]:
    out: List[SExpr] = []
    pos = 0

    def read(pos: int) -> Tuple[SExpr, int]:
        tok = tokens[pos]
        if tok.kind == "punct" and tok == "(":
            items = _SList()
            items.line, items.column = tok.line, tok.column
            pos += 1
            while pos < len(tokens) and not (
                tokens[pos].kind == "punct"
                and tokens[pos] == ")"
            ):
                item, pos = read(pos)
                items.append(item)
            if pos >= len(tokens):
                raise SmtLibError(
                    "missing closing parenthesis for '(' here",
                    tok.line, tok.column,
                )
            return items, pos + 1
        if tok.kind == "punct":
            raise SmtLibError("unexpected ')'", tok.line, tok.column)
        return tok, pos + 1

    while pos < len(tokens):
        sexpr, pos = read(pos)
        out.append(sexpr)
    return out


def _pos(sx: object) -> Tuple[Optional[int], Optional[int]]:
    line = getattr(sx, "line", None)
    column = getattr(sx, "column", None)
    return line, column


def _err(message: str, at: object = None) -> SmtLibError:
    line, column = _pos(at)
    return SmtLibError(message, line, column)


def _unsupported(message: str, at: object = None) -> UnsupportedLogicError:
    line, column = _pos(at)
    return UnsupportedLogicError(message, line, column)


def _int_literal(sx: SExpr) -> Optional[int]:
    """The integer value of a literal s-expression, else ``None``.

    Covers bare (possibly sign-prefixed) numerals and the standard
    ``(- 5)`` negative-literal application.  ``|quoted|`` symbols are
    never literals even when their spelling is numeric.
    """
    if isinstance(sx, _Atom):
        if sx.kind == "numeral":
            return int(sx)
        return None
    if (
        isinstance(sx, list)
        and len(sx) == 2
        and isinstance(sx[0], _Atom)
        and sx[0].kind == "symbol"
        and str(sx[0]) == "-"
    ):
        inner = _int_literal(sx[1])
        if inner is not None:
            return -inner
    return None


# ---------------------------------------------------------------------------
# Script model
# ---------------------------------------------------------------------------


@dataclass
class DefinedFun:
    """One ``define-fun`` macro: expanded at every application site."""

    name: str
    params: List[Tuple[str, str]]  # (name, sort) pairs, sorts Int|Bool
    ret: str
    body: SExpr = field(default_factory=lambda: _Atom("true", "symbol", 0, 0))


@dataclass
class SmtScript:
    """A parsed SMT-LIB script over the SUF fragment."""

    logic: Optional[str] = None
    assertions: List[Formula] = field(default_factory=list)
    int_consts: Dict[str, Var] = field(default_factory=dict)
    bool_consts: Dict[str, BoolVar] = field(default_factory=dict)
    func_sorts: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    defined_funs: Dict[str, DefinedFun] = field(default_factory=dict)
    named: Dict[str, Node] = field(default_factory=dict)
    expected_status: Optional[str] = None
    check_sat_requested: bool = False
    get_model_requested: bool = False
    uses_zero: bool = False

    def conjunction(self) -> Formula:
        return And(*self.assertions)

    def check_sat(self, method: str = "hybrid", **kw: Any) -> str:
        """SMT-LIB semantics: satisfiability of the asserted conjunction.

        Returns ``"sat"``, ``"unsat"`` or ``"unknown"``.
        """
        from ..core.decision import check_validity

        result = check_validity(
            Not(self.conjunction()), method=method, **kw
        )
        if result.valid is True:
            return "unsat"
        if result.valid is False:
            return "sat"
        return "unknown"


# ---------------------------------------------------------------------------
# Parser: s-expressions -> SmtScript
# ---------------------------------------------------------------------------

#: Recognizable heads that are definitely SMT-LIB but definitely not SUF.
_OUT_OF_FRAGMENT_OPS = frozenset(
    [
        "*", "div", "mod", "abs", "rem", "divisible", "to_real", "to_int",
        "select", "store", "concat", "bvadd", "bvand", "str.++",
        "forall", "exists", "match", "_", "as",
    ]
)

#: Commands acknowledged and ignored (they don't affect the assertion set).
_IGNORED_COMMANDS = frozenset(
    [
        "set-option", "get-info", "get-option", "get-value",
        "get-assertions", "get-assignment", "get-proof",
        "get-unsat-core", "get-unsat-assumptions", "echo", "exit",
        "reset-assertions",
    ]
)

_MAX_EXPANSION_DEPTH = 64


class _Parser:
    def __init__(self) -> None:
        self.script = SmtScript()
        self._expansion_depth = 0

    # -- declarations -------------------------------------------------------

    def _symbol_name(self, sx: SExpr, what: str) -> str:
        """A declaration-position symbol, validating reservation rules."""
        if not isinstance(sx, _Atom) or sx.kind not in ("symbol", "quoted"):
            raise _err("%s must be a symbol, got %r" % (what, _spell(sx)), sx)
        if sx.kind == "symbol" and str(sx) in RESERVED_WORDS:
            raise _err(
                "%s %r is a reserved word (write |%s| to use it as a "
                "name)" % (what, str(sx), str(sx)),
                sx,
            )
        return str(sx)

    def declare(self, sx: SExpr, name: str, arg_sorts: List[SExpr],
                ret: SExpr) -> None:
        script = self.script
        if (
            name in script.int_consts
            or name in script.bool_consts
            or name in script.func_sorts
            or name in script.defined_funs
        ):
            raise _err("symbol %r declared twice" % name, sx)
        for sort in arg_sorts:
            if not (isinstance(sort, _Atom) and str(sort) == "Int"):
                raise _unsupported(
                    "argument sort %s of %r is outside the fragment "
                    "(only Int-sorted arguments are supported)"
                    % (_spell(sort), name),
                    sort,
                )
        if not (isinstance(ret, _Atom) and str(ret) in ("Int", "Bool")):
            raise _unsupported(
                "return sort %s is outside the fragment (Int or Bool)"
                % _spell(ret),
                ret,
            )
        ret_name = str(ret)
        if not arg_sorts:
            if ret_name == "Int":
                script.int_consts[name] = Var(name)
            else:
                script.bool_consts[name] = BoolVar(name)
        else:
            script.func_sorts[name] = (len(arg_sorts), ret_name)

    # -- terms ---------------------------------------------------------------

    def zero(self) -> Var:
        self.script.uses_zero = True
        return Var(ZERO_NAME)

    def term(self, sx: SExpr, env: Dict[str, object]) -> Term:
        value = self.value(sx, env)
        if not isinstance(value, Term):
            raise _err(
                "expected an Int term, got a Bool: %s" % _spell(sx), sx
            )
        return value

    def formula(self, sx: SExpr, env: Dict[str, object]) -> Formula:
        value = self.value(sx, env)
        if not isinstance(value, Formula):
            raise _err(
                "expected a Bool term, got an Int: %s" % _spell(sx), sx
            )
        return value

    def value(self, sx: SExpr, env: Dict[str, object]) -> Any:
        script = self.script
        lit = _int_literal(sx)
        if lit is not None:
            return Offset(self.zero(), lit) if lit else self.zero()
        if isinstance(sx, _Atom):
            if sx.kind == "decimal":
                raise _unsupported(
                    "decimal literal %s is outside the fragment (Int "
                    "arithmetic only)" % str(sx),
                    sx,
                )
            if sx.kind in ("string", "keyword"):
                raise _err(
                    "unexpected %s %r in a term position"
                    % (sx.kind, str(sx)),
                    sx,
                )
            name = str(sx)
            if name in env:
                return env[name]
            if sx.kind == "symbol":
                if name == "true":
                    return TRUE
                if name == "false":
                    return FALSE
            if name in script.int_consts:
                return script.int_consts[name]
            if name in script.bool_consts:
                return script.bool_consts[name]
            if name in script.defined_funs:
                return self._expand(sx, script.defined_funs[name], [], env)
            if name in script.func_sorts:
                raise _err(
                    "%r is a %d-ary function symbol used without "
                    "arguments" % (name, script.func_sorts[name][0]),
                    sx,
                )
            raise _err("undeclared symbol %r" % name, sx)
        if not sx:
            raise _err("empty application ()", sx)
        head = sx[0]
        if not isinstance(head, _Atom) or head.kind not in (
            "symbol", "quoted"
        ):
            raise _err(
                "application head must be a symbol, got %s" % _spell(head),
                head,
            )
        name = str(head)
        args = list(sx[1:])

        if head.kind == "symbol":
            if name == "!":
                return self._annotation(sx, env)
            if name == "let":
                return self._let(sx, env)
            if name in ("and", "or"):
                parts = [self.formula(a, env) for a in args]
                return And(*parts) if name == "and" else Or(*parts)
            if name == "not":
                self._arity(sx, 1)
                return Not(self.formula(args[0], env))
            if name == "=>":
                if len(args) < 2:
                    raise _err("=> needs at least two arguments", sx)
                # Right-associative chain.
                result = self.formula(args[-1], env)
                for a in reversed(args[:-1]):
                    result = Implies(self.formula(a, env), result)
                return result
            if name == "xor":
                self._arity(sx, 2)
                return Not(
                    Iff(
                        self.formula(args[0], env),
                        self.formula(args[1], env),
                    )
                )
            if name == "=":
                values = [self.value(a, env) for a in args]
                return self._chain_equal(sx, values)
            if name == "distinct":
                terms = [self.term(a, env) for a in args]
                return b.distinct(terms)
            if name in ("<", "<=", ">", ">="):
                if len(args) != 2:
                    raise _err("%s expects two arguments" % name, sx)
                lhs = self._difference_operand(args[0], env)
                rhs = self._difference_operand(args[1], env)
                return self._compare(name, lhs, rhs)
            if name == "ite":
                self._arity(sx, 3)
                cond = self.formula(args[0], env)
                then_v = self.value(args[1], env)
                else_v = self.value(args[2], env)
                if isinstance(then_v, Term) and isinstance(else_v, Term):
                    return Ite(cond, then_v, else_v)
                if isinstance(then_v, Formula) and isinstance(
                    else_v, Formula
                ):
                    return Or(And(cond, then_v), And(Not(cond), else_v))
                raise _err("ite branches must share a sort", sx)
            if name == "+":
                return self._sum(sx, args, env)
            if name == "-":
                return self._minus(sx, args, env)
        if name in script.func_sorts:
            arity, ret = script.func_sorts[name]
            if len(args) != arity:
                raise _err(
                    "%r expects %d argument(s), got %d"
                    % (name, arity, len(args)),
                    sx,
                )
            terms = [self.term(a, env) for a in args]
            if ret == "Int":
                return FuncApp(name, terms)
            return PredApp(name, terms)
        if name in script.defined_funs:
            return self._expand(sx, script.defined_funs[name], args, env)
        if name in _OUT_OF_FRAGMENT_OPS:
            raise _unsupported(
                "operator %r is outside the SUF fragment "
                "(QF_UF / QF_IDL / QF_UFIDL subset)" % name,
                head,
            )
        raise _err("undeclared symbol or operator %r" % name, head)

    def _let(self, sx: _SList, env: Dict[str, object]) -> Any:
        args = sx[1:]
        if len(args) != 2 or not isinstance(args[0], list):
            raise _err(
                "malformed let: expected (let ((name value)...) body)", sx
            )
        # SMT-LIB let is parallel: every binding value is evaluated in
        # the *outer* environment; the body sees the new bindings, which
        # shadow outer bindings and global declarations.
        new_env = dict(env)
        for binding in args[0]:
            if (
                not isinstance(binding, list)
                or len(binding) != 2
                or not isinstance(binding[0], _Atom)
                or binding[0].kind not in ("symbol", "quoted")
            ):
                raise _err(
                    "malformed let binding: expected (name value)",
                    binding if isinstance(binding, (list, _Atom)) else sx,
                )
            new_env[str(binding[0])] = self.value(binding[1], env)
        return self.value(args[1], new_env)

    def _annotation(self, sx: _SList, env: Dict[str, object]) -> Any:
        """``(! expr attr...)``: the value of ``expr``; record ``:named``."""
        if len(sx) < 3:
            raise _err(
                "malformed annotation: expected (! term :attr ...)", sx
            )
        value = self.value(sx[1], env)
        i = 2
        while i < len(sx):
            attr = sx[i]
            if not isinstance(attr, _Atom) or attr.kind != "keyword":
                raise _err(
                    "annotation attribute must be a :keyword, got %s"
                    % _spell(attr),
                    attr if isinstance(attr, (list, _Atom)) else sx,
                )
            has_value = (
                i + 1 < len(sx)
                and not (
                    isinstance(sx[i + 1], _Atom)
                    and sx[i + 1].kind == "keyword"
                )
            )
            if str(attr) == ":named":
                if not has_value or not isinstance(sx[i + 1], _Atom):
                    raise _err(":named needs a symbol argument", attr)
                label = self._symbol_name(sx[i + 1], ":named label")
                if label in self.script.named:
                    raise _err(
                        ":named label %r is already in use" % label, sx[i + 1]
                    )
                self.script.named[label] = value
            i += 2 if has_value else 1
        return value

    def _expand(
        self,
        sx: SExpr,
        defined: DefinedFun,
        args: List[SExpr],
        env: Dict[str, object],
    ) -> Any:
        """Apply a ``define-fun`` macro: evaluate its body with the
        parameters bound to the (caller-environment) argument values.

        The body sees *only* the parameters plus global declarations —
        not the caller's ``let`` bindings — which is exactly the
        standard's closed-form macro semantics."""
        if len(args) != len(defined.params):
            raise _err(
                "%r expects %d argument(s), got %d"
                % (defined.name, len(defined.params), len(args)),
                sx,
            )
        if self._expansion_depth >= _MAX_EXPANSION_DEPTH:
            raise _err(
                "define-fun expansion exceeds depth %d (recursive "
                "definition?)" % _MAX_EXPANSION_DEPTH,
                sx,
            )
        body_env: Dict[str, object] = {}
        for (param, sort), arg in zip(defined.params, args):
            value = self.value(arg, env)
            if sort == "Int" and not isinstance(value, Term):
                raise _err(
                    "argument for Int parameter %r of %r is a Bool"
                    % (param, defined.name),
                    arg if isinstance(arg, (list, _Atom)) else sx,
                )
            if sort == "Bool" and not isinstance(value, Formula):
                raise _err(
                    "argument for Bool parameter %r of %r is an Int"
                    % (param, defined.name),
                    arg if isinstance(arg, (list, _Atom)) else sx,
                )
            body_env[param] = value
        self._expansion_depth += 1
        try:
            result = self.value(defined.body, body_env)
        finally:
            self._expansion_depth -= 1
        want = Term if defined.ret == "Int" else Formula
        if not isinstance(result, want):
            raise _err(
                "body of %r does not match its declared %s return sort"
                % (defined.name, defined.ret),
                sx,
            )
        return result

    def _arity(self, sx: _SList, n: int) -> None:
        if len(sx) - 1 != n:
            raise _err(
                "%s expects %d argument(s), got %d"
                % (str(sx[0]), n, len(sx) - 1),
                sx,
            )

    def _chain_equal(self, sx: SExpr, values: Sequence[Any]) -> Formula:
        if len(values) < 2:
            raise _err("= needs at least two arguments", sx)
        parts: List[Formula] = []
        for lhs, rhs in zip(values, values[1:]):
            if isinstance(lhs, Term) and isinstance(rhs, Term):
                parts.append(Eq(lhs, rhs))
            elif isinstance(lhs, Formula) and isinstance(rhs, Formula):
                parts.append(Iff(lhs, rhs))
            else:
                raise _err("= arguments must share a sort", sx)
        return And(*parts)

    def _compare(self, op: str, lhs: Term, rhs: Term) -> Formula:
        if op == "<":
            return Lt(lhs, rhs)
        if op == "<=":
            return b.le(lhs, rhs)
        if op == ">":
            return Lt(rhs, lhs)
        return b.ge(lhs, rhs)

    def _sum(
        self, sx: SExpr, args: List[SExpr], env: Dict[str, object]
    ) -> Term:
        """``(+ ...)`` where at most one operand is a non-literal term."""
        total = 0
        base: Optional[Term] = None
        for a in args:
            lit = _int_literal(a)
            if lit is not None:
                total += lit
                continue
            value = self.term(a, env)
            if base is not None:
                raise _unsupported(
                    "sums of two non-constant terms are outside the "
                    "difference-logic fragment",
                    sx,
                )
            base = value
        if base is None:
            return Offset(self.zero(), total) if total else self.zero()
        return Offset(base, total)

    def _minus(
        self, sx: SExpr, args: List[SExpr], env: Dict[str, object]
    ) -> Term:
        if len(args) == 1:
            lit = _int_literal(args[0])
            if lit is not None:
                return Offset(self.zero(), -lit) if lit else self.zero()
            raise _unsupported(
                "unary minus of a non-constant term is outside the "
                "fragment",
                sx,
            )
        if len(args) != 2:
            raise _err("- expects one or two arguments", sx)
        lit = _int_literal(args[1])
        if lit is not None:
            return Offset(self.term(args[0], env), -lit)
        # (- a b): allowed only where a difference is comparable, which
        # _difference_operand handles; as a bare term it is out of scope.
        raise _unsupported(
            "(- a b) with non-constant b is only supported directly under "
            "a comparison",
            sx,
        )

    def _difference_operand(
        self, sx: SExpr, env: Dict[str, object]
    ) -> Term:
        """Operand of a comparison; rejects general ``(- a b)`` with a
        rewrite hint (difference atoms must keep one side constant)."""
        if (
            isinstance(sx, list)
            and len(sx) == 3
            and isinstance(sx[0], _Atom)
            and sx[0].kind == "symbol"
            and str(sx[0]) == "-"
            and _int_literal(sx[2]) is None
            and _int_literal(sx[1]) is None
        ):
            raise _unsupported(
                "general term differences are outside the fragment; "
                "rewrite (op (- a b) k) as (op a (+ b k))",
                sx,
            )
        return self.term(sx, env)

    # -- commands ------------------------------------------------------------

    def command(self, sx: SExpr) -> None:
        script = self.script
        if (
            not isinstance(sx, list)
            or not sx
            or not isinstance(sx[0], _Atom)
            or sx[0].kind != "symbol"
        ):
            raise _err("malformed command: %s" % _spell(sx), sx)
        head = str(sx[0])
        if head == "set-logic":
            if len(sx) != 2 or not isinstance(sx[1], _Atom):
                raise _err("set-logic expects one logic name", sx)
            if str(sx[1]) not in SUPPORTED_LOGICS:
                raise _unsupported(
                    "unsupported logic %r (supported: %s)"
                    % (str(sx[1]), ", ".join(SUPPORTED_LOGICS)),
                    sx[1],
                )
            script.logic = str(sx[1])
        elif head == "set-info":
            self._set_info(sx)
        elif head in _IGNORED_COMMANDS:
            return
        elif head == "get-model":
            script.get_model_requested = True
        elif head == "declare-fun":
            if len(sx) != 4 or not isinstance(sx[2], list):
                raise _err(
                    "malformed declare-fun: expected "
                    "(declare-fun name (sorts...) sort)",
                    sx,
                )
            name = self._symbol_name(sx[1], "declared name")
            self.declare(sx, name, list(sx[2]), sx[3])
        elif head == "declare-const":
            if len(sx) != 3:
                raise _err(
                    "malformed declare-const: expected "
                    "(declare-const name sort)",
                    sx,
                )
            name = self._symbol_name(sx[1], "declared name")
            self.declare(sx, name, [], sx[2])
        elif head == "define-fun":
            self._define_fun(sx)
        elif head == "assert":
            if len(sx) != 2:
                raise _err("assert expects one argument", sx)
            script.assertions.append(self.formula(sx[1], {}))
        elif head == "check-sat":
            script.check_sat_requested = True
        elif head in ("push", "pop", "check-sat-assuming", "reset"):
            raise _unsupported(
                "incremental command %r is not supported by the batch "
                "reader (use the engine session API instead)" % head,
                sx,
            )
        elif head in ("declare-sort", "define-sort", "declare-datatype",
                      "declare-datatypes", "define-fun-rec"):
            raise _unsupported(
                "command %r is outside the fragment (Int/Bool sorts "
                "only)" % head,
                sx,
            )
        else:
            raise _err("unsupported command %r" % head, sx)

    def _set_info(self, sx: _SList) -> None:
        if len(sx) < 2 or not isinstance(sx[1], _Atom) or (
            sx[1].kind != "keyword"
        ):
            raise _err(
                "malformed set-info: expected (set-info :attr value)", sx
            )
        if str(sx[1]) == ":status":
            if len(sx) != 3 or not isinstance(sx[2], _Atom):
                raise _err(":status needs one value", sx)
            status = str(sx[2])
            if status not in STATUS_VALUES:
                raise _err(
                    "invalid :status %r (expected sat, unsat or unknown)"
                    % status,
                    sx[2],
                )
            self.script.expected_status = status

    def _define_fun(self, sx: _SList) -> None:
        if len(sx) != 5 or not isinstance(sx[2], list):
            raise _err(
                "malformed define-fun: expected "
                "(define-fun name ((param sort)...) sort body)",
                sx,
            )
        name = self._symbol_name(sx[1], "defined name")
        script = self.script
        if (
            name in script.int_consts
            or name in script.bool_consts
            or name in script.func_sorts
            or name in script.defined_funs
        ):
            raise _err("symbol %r declared twice" % name, sx)
        params: List[Tuple[str, str]] = []
        seen = set()
        for binding in sx[2]:
            if (
                not isinstance(binding, list)
                or len(binding) != 2
                or not isinstance(binding[0], _Atom)
            ):
                raise _err(
                    "malformed define-fun parameter: expected (name sort)",
                    binding if isinstance(binding, (list, _Atom)) else sx,
                )
            pname = self._symbol_name(binding[0], "parameter name")
            if pname in seen:
                raise _err(
                    "duplicate parameter %r" % pname, binding[0]
                )
            seen.add(pname)
            if not (
                isinstance(binding[1], _Atom)
                and str(binding[1]) in ("Int", "Bool")
            ):
                raise _unsupported(
                    "parameter sort %s is outside the fragment "
                    "(Int or Bool)" % _spell(binding[1]),
                    binding[1],
                )
            params.append((pname, str(binding[1])))
        if not (
            isinstance(sx[3], _Atom) and str(sx[3]) in ("Int", "Bool")
        ):
            raise _unsupported(
                "return sort %s is outside the fragment (Int or Bool)"
                % _spell(sx[3]),
                sx[3],
            )
        defined = DefinedFun(
            name=name, params=params, ret=str(sx[3]), body=sx[4]
        )
        # Trial-expand once with placeholder parameters so malformed or
        # out-of-fragment bodies fail here, at the definition site, even
        # when the macro is never applied.
        placeholders: Dict[str, object] = {
            pname: (Var(".%s" % pname) if sort == "Int"
                    else BoolVar(".%s" % pname))
            for pname, sort in params
        }
        self._expansion_depth += 1
        try:
            trial = self.value(defined.body, placeholders)
        finally:
            self._expansion_depth -= 1
        want = Term if defined.ret == "Int" else Formula
        if not isinstance(trial, want):
            raise _err(
                "body of %r does not match its declared %s return sort"
                % (name, defined.ret),
                sx[4] if isinstance(sx[4], (list, _Atom)) else sx,
            )
        script.defined_funs[name] = defined


def _spell(sx: object) -> str:
    """A short human-readable rendering of an s-expression for errors."""
    if isinstance(sx, _Atom):
        if sx.kind == "quoted":
            return "|%s|" % str(sx)
        if sx.kind == "string":
            return '"%s"' % str(sx)
        return str(sx)
    if isinstance(sx, list):
        inner = " ".join(_spell(item) for item in sx[:4])
        if len(sx) > 4:
            inner += " ..."
        return "(%s)" % inner
    return repr(sx)


def parse_smtlib(text: str) -> SmtScript:
    """Parse an SMT-LIB script into an :class:`SmtScript`."""
    parser = _Parser()
    for sexpr in _read_all(_tokenize(text)):
        parser.command(sexpr)
    return parser.script


def check_sat_smtlib(text: str, method: str = "hybrid", **kw: Any) -> str:
    """One-shot: parse a script and answer its ``check-sat``."""
    return parse_smtlib(text).check_sat(method=method, **kw)


# ---------------------------------------------------------------------------
# Printing (inverse direction: SUF formula -> SMT-LIB 2 script)
# ---------------------------------------------------------------------------


def to_smtlib(root: Node) -> str:
    """Render a term or formula as an SMT-LIB 2 expression."""
    from .traversal import postorder

    memo: Dict[object, str] = {}
    for node in postorder(root):
        memo[node] = _render_smt(node, memo)
    return memo[root]


def _render_smt(node: Node, memo: Dict[object, str]) -> str:
    if node is TRUE:
        return "true"
    if node is FALSE:
        return "false"
    if isinstance(node, (Var, BoolVar)):
        return _smt_symbol(node.name)
    if isinstance(node, Offset):
        return "(+ %s %d)" % (memo[node.base], node.k)
    if isinstance(node, (FuncApp, PredApp)):
        return "(%s %s)" % (
            _smt_symbol(node.symbol),
            " ".join(memo[a] for a in node.args),
        )
    if isinstance(node, Ite):
        return "(ite %s %s %s)" % (
            memo[node.cond],
            memo[node.then],
            memo[node.els],
        )
    if isinstance(node, Not):
        return "(not %s)" % memo[node.arg]
    if isinstance(node, And):
        return "(and %s)" % " ".join(memo[a] for a in node.args)
    if isinstance(node, Or):
        return "(or %s)" % " ".join(memo[a] for a in node.args)
    if isinstance(node, Implies):
        return "(=> %s %s)" % (memo[node.lhs], memo[node.rhs])
    if isinstance(node, (Iff, Eq)):
        return "(= %s %s)" % (memo[node.lhs], memo[node.rhs])
    if isinstance(node, Lt):
        return "(< %s %s)" % (memo[node.lhs], memo[node.rhs])
    raise SmtLibError("cannot render %r as SMT-LIB" % (type(node),))


def to_smtlib_script(
    formula: Formula,
    negate: bool = True,
    logic: Optional[str] = None,
    comments: Optional[List[str]] = None,
    status: Optional[str] = None,
) -> str:
    """A complete SMT-LIB 2 script for ``formula``.

    With ``negate=True`` (the default) the script asserts the *negation*,
    so ``check-sat`` answers ``unsat`` exactly when ``formula`` is valid —
    the convention the ``repro check`` CLI and external solvers share.
    ``status`` (``"sat"``/``"unsat"``/``"unknown"``) emits the standard
    ``(set-info :status ...)`` annotation that benchmark corpora carry
    and ``repro compete`` scores against.  Round-trips through
    :func:`parse_smtlib`.
    """
    from .traversal import collect_bool_vars, collect_vars, iter_dag

    func_arities: Dict[str, int] = {}
    pred_arities: Dict[str, int] = {}
    has_offsets = False
    has_lt = False
    for node in iter_dag(formula):
        if isinstance(node, FuncApp):
            func_arities[node.symbol] = len(node.args)
        elif isinstance(node, PredApp):
            pred_arities[node.symbol] = len(node.args)
        elif isinstance(node, Offset):
            has_offsets = True
        elif isinstance(node, Lt):
            has_lt = True

    if logic is None:
        has_apps = bool(func_arities or pred_arities)
        if has_offsets or has_lt:
            logic = "QF_UFIDL" if has_apps else "QF_IDL"
        else:
            logic = "QF_UF"

    if status is not None and status not in STATUS_VALUES:
        raise SmtLibError(
            "invalid :status %r (expected sat, unsat or unknown)" % status
        )

    lines: List[str] = []
    for comment in comments or ():
        for part in comment.splitlines():
            lines.append("; %s" % part)
    lines.append("(set-logic %s)" % logic)
    if status is not None:
        lines.append("(set-info :status %s)" % status)
    for var in collect_vars(formula):
        lines.append("(declare-fun %s () Int)" % _smt_symbol(var.name))
    for bvar in collect_bool_vars(formula):
        lines.append("(declare-fun %s () Bool)" % _smt_symbol(bvar.name))
    for symbol in sorted(func_arities):
        lines.append(
            "(declare-fun %s (%s) Int)"
            % (_smt_symbol(symbol), " ".join(["Int"] * func_arities[symbol]))
        )
    for symbol in sorted(pred_arities):
        lines.append(
            "(declare-fun %s (%s) Bool)"
            % (_smt_symbol(symbol), " ".join(["Int"] * pred_arities[symbol]))
        )
    body = Not(formula) if negate else formula
    lines.append("(assert %s)" % to_smtlib(body))
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
